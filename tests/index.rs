//! Indexed-vs-walked equivalence on hostile trees.
//!
//! The index layer promises *identical* answers to the walking
//! evaluators on every tree and every query; these tests push on the
//! shapes where the interval encoding and the word-packed postings have
//! the least slack — deep chains (interval nesting at maximum depth),
//! wide fans (one giant child range), collision-heavy values (few, huge
//! value groups), and node counts straddling the 64-bit word boundaries
//! of `NodeSet`.

use proptest::prelude::*;

use twq::exec::Pool;
use twq::index::{
    build_indexes, compile_exists, fo_select_routed, select_indexed, CostModel, Force, TreeIndex,
};
use twq::logic::fo::build as fb;
use twq::logic::{ExistsFormula, Var};
use twq::rw::{run_query_indexed, IndexedEvaluator, RewriteCtx};
use twq::tree::generate::{
    chain_tree, comb_tree, perfect_tree, random_tree, star_tree, TreeGenConfig,
};
use twq::tree::{Label, NodeSet, Tree, Vocab};
use twq::xpath::{eval_from, random_xpath, XPath, XPathGenConfig};

fn hostile_cfg(vocab: &mut Vocab, nodes: usize, collisions: Option<usize>) -> TreeGenConfig {
    let mut cfg = TreeGenConfig::example32(vocab, nodes, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let b = vocab.attr("b");
    let pool = (10..18).map(|i| vocab.val_int(i)).collect();
    cfg.attributes.push((b, pool));
    cfg.collision_pool = collisions;
    cfg
}

fn xcfg(cfg: &TreeGenConfig) -> XPathGenConfig {
    XPathGenConfig {
        symbols: cfg.symbols.clone(),
        attrs: cfg.attributes.iter().map(|(a, _)| *a).collect(),
        values: cfg.attributes.iter().flat_map(|(_, p)| p.clone()).collect(),
        max_depth: 4,
    }
}

/// Every context node, indexed vs walked, exact set equality.
fn assert_index_twins(tree: &Tree, path: &XPath) {
    let idx = TreeIndex::build(tree);
    for u in tree.node_ids() {
        assert_eq!(
            select_indexed(tree, &idx, path, u),
            eval_from(tree, path, u),
            "context {u:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random queries over collision-heavy random trees: the worst case
    /// for value postings (few groups, each nearly whole-tree).
    #[test]
    fn indexed_matches_walked_on_collision_heavy_trees(
        tree_seed in 0u64..400,
        path_seed in 0u64..400,
        nodes in 2usize..80,
        collisions in 1usize..3,
    ) {
        let mut vocab = Vocab::new();
        let cfg = hostile_cfg(&mut vocab, nodes, Some(collisions));
        let t = random_tree(&cfg, tree_seed);
        let p = random_xpath(&xcfg(&cfg), path_seed);
        assert_index_twins(&t, &p);
    }

    /// The cost-based planner is transparent under every override.
    #[test]
    fn planner_is_transparent_under_every_force(
        tree_seed in 0u64..200,
        path_seed in 0u64..200,
        nodes in 2usize..60,
    ) {
        let mut vocab = Vocab::new();
        let cfg = hostile_cfg(&mut vocab, nodes, Some(2));
        let t = random_tree(&cfg, tree_seed);
        let p = random_xpath(&xcfg(&cfg), path_seed);
        let idx = TreeIndex::build(&t);
        let ctx = RewriteCtx::unconstrained();
        let model = CostModel::default();
        let want = eval_from(&t, &p, t.root());
        for force in [Force::Auto, Force::Index, Force::Walk] {
            let (got, plan) = run_query_indexed(&t, &idx, &p, &ctx, &model, force);
            prop_assert_eq!(&got, &want, "force {:?} via {:?}", force, plan.evaluator);
            if plan.evaluator != IndexedEvaluator::EmptyShortCircuit {
                match force {
                    Force::Index => prop_assert_eq!(plan.evaluator, IndexedEvaluator::Indexed),
                    Force::Walk => prop_assert_eq!(plan.evaluator, IndexedEvaluator::Walking),
                    Force::Auto => {}
                }
            }
        }
    }

    /// FO(∃*) routing: in-fragment formulas take the index, everything
    /// agrees with the backtracking selector from every context node.
    #[test]
    fn fo_routing_agrees_with_backtracking(
        tree_seed in 0u64..200,
        nodes in 2usize..50,
    ) {
        let mut vocab = Vocab::new();
        let cfg = hostile_cfg(&mut vocab, nodes, Some(2));
        let t = random_tree(&cfg, tree_seed);
        let idx = TreeIndex::build(&t);
        let (x, y) = (Var(0), Var(1));
        let s0 = cfg.symbols[0];
        let (a, b) = (cfg.attributes[0].0, cfg.attributes[1].0);
        let in_fragment = ExistsFormula::new(
            x,
            y,
            vec![],
            fb::and(vec![
                fb::desc(x, y),
                fb::or(vec![
                    fb::lab(Label::Sym(s0), y),
                    fb::val_eq(a, y, b, y),
                ]),
            ]),
        )
        .unwrap();
        prop_assert!(compile_exists(&in_fragment).is_some());
        let out_of_fragment = ExistsFormula::new(x, y, vec![], fb::succ(x, y)).unwrap();
        prop_assert!(compile_exists(&out_of_fragment).is_none());
        for phi in [&in_fragment, &out_of_fragment] {
            for u in t.node_ids() {
                let (got, _) = fo_select_routed(&t, &idx, phi, u);
                prop_assert_eq!(got, phi.select(&t, u), "context {:?}", u);
            }
        }
    }
}

/// Shaped trees at the extremes: depth, width, balance.
#[test]
fn shaped_trees_agree_on_axis_heavy_queries() {
    let mut vocab = Vocab::new();
    let s = vocab.sym("s");
    let t0 = vocab.sym("t");
    let trees = [
        chain_tree(s, 200),
        comb_tree(s, 120),
        star_tree(s, 300),
        perfect_tree(s, 3, 5),
    ];
    let queries = [
        twq::xpath::ast::xb::from_desc(twq::xpath::ast::xb::name(s)),
        twq::xpath::ast::xb::from_desc(twq::xpath::ast::xb::name(t0)),
        twq::xpath::ast::xb::filter(
            twq::xpath::ast::xb::from_desc(twq::xpath::ast::xb::wild()),
            twq::xpath::ast::xb::name(s),
        ),
        twq::xpath::ast::xb::from_root(twq::xpath::ast::xb::desc(
            twq::xpath::ast::xb::wild(),
            twq::xpath::ast::xb::name(s),
        )),
    ];
    for t in &trees {
        for q in &queries {
            assert_index_twins(t, q);
        }
    }
}

/// Node counts straddling the `NodeSet` word boundaries: postings and
/// insert_range must be exact at 63/64/65 and 127/128/129 bits.
#[test]
fn word_boundary_sizes_are_exact() {
    let mut vocab = Vocab::new();
    let s = vocab.sym("s");
    let q_all = twq::xpath::ast::xb::from_desc(twq::xpath::ast::xb::wild());
    let q_s = twq::xpath::ast::xb::from_desc(twq::xpath::ast::xb::name(s));
    for n in [63usize, 64, 65, 127, 128, 129] {
        // Chain (deepest) and star (widest) at exactly n nodes.
        for t in [chain_tree(s, n - 1), star_tree(s, n - 1)] {
            assert_eq!(t.len(), n, "generator size contract");
            let idx = TreeIndex::build(&t);
            // Whole-tree postings: every node is an s-node.
            let posting = idx.label_posting(s).expect("all nodes labelled s");
            assert_eq!(posting.len(), n);
            // Empty postings: a symbol that never occurs.
            let ghost = vocab.sym("ghost");
            assert!(idx.label_posting(ghost).is_none());
            assert_index_twins(&t, &q_all);
            assert_index_twins(&t, &q_s);
        }
    }
}

/// Batch index builds across a pool are identical to serial builds.
#[test]
fn batch_builds_are_deterministic() {
    let mut vocab = Vocab::new();
    let cfg = hostile_cfg(&mut vocab, 150, Some(2));
    let trees: Vec<Tree> = (0..6).map(|seed| random_tree(&cfg, seed)).collect();
    let q = random_xpath(&xcfg(&cfg), 7);
    let serial: Vec<NodeSet> = trees
        .iter()
        .map(|t| select_indexed(t, &TreeIndex::build(t), &q, t.root()))
        .collect();
    for workers in [1, 4] {
        let built = build_indexes(&trees, &Pool::new(workers));
        let batch: Vec<NodeSet> = trees
            .iter()
            .zip(&built)
            .map(|(t, idx)| select_indexed(t, idx, &q, t.root()))
            .collect();
        assert_eq!(batch, serial, "workers={workers}");
    }
}
