//! Integration tests for the static analyzer (`twq-analyze`): the
//! prune-equivalence proptest harness, class-inference agreement with
//! `classify()`/`check_class()` across every bundled program, the seeded
//! ill-formed zoo, and the diagnostic allowlist for the roster.

use proptest::prelude::*;

use twq::analyze::{analyze, analyze_for_class, infer, lint_zoo, prune, run_checked, Severity};
use twq::automata::{examples, run_on_tree, Action, Dir, Limits, TwClass, TwProgram};
use twq::automata::{State, TwProgramBuilder};
use twq::guard::TwqError;
use twq::logic::store::sbuild::*;
use twq::logic::RegId;
use twq::protocol::at_most_k_values_program;
use twq::sim::{compile_logspace, compile_pspace, delta_count_mod3};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{DelimTree, Label, Value, Vocab};
use twq::xpath::{random_xpath, xpath_to_program, SelectionTest, XPathGenConfig};
use twq::xtm::machines;

/// Rebuild `prog` with seed-dependent junk that provably cannot change
/// the accepted language: a pair of unreachable states with rules among
/// themselves, and rules with unsatisfiable guards on existing dispatch
/// keys (they never fire and never overlap).
fn junkify(prog: &TwProgram, seed: u64) -> TwProgram {
    let n = prog.state_count();
    let mut b = TwProgramBuilder::new();
    let states: Vec<State> = (0..n)
        .map(|q| b.state(prog.state_name(State(q as u16))))
        .collect();
    let m = |q: State| states[q.0 as usize];
    b.initial(m(prog.initial()));
    b.final_state(m(prog.final_state()));
    let init = prog.initial_store();
    for (i, &arity) in prog.reg_arities().iter().enumerate() {
        b.register(arity, init.get(RegId(i as u8)).clone());
    }
    for r in prog.rules() {
        let action = match &r.action {
            Action::Move(q, d) => Action::Move(m(*q), *d),
            Action::Update(q, psi, reg) => Action::Update(m(*q), psi.clone(), *reg),
            Action::Atp(q, phi, p, reg) => Action::Atp(m(*q), phi.clone(), m(*p), *reg),
        };
        b.rule(r.label, m(r.state), r.guard.clone(), action);
    }
    // Unreachable junk: two states walking in a circle, plus a
    // guaranteed-rejecting leg, depending on the seed.
    let ja = b.state("junk_a");
    let jb = b.state("junk_b");
    b.rule_true(Label::DelimRoot, ja, Action::Move(jb, Dir::Down));
    b.rule_true(Label::DelimRoot, jb, Action::Move(ja, Dir::Up));
    if seed % 2 == 0 {
        b.rule_true(
            Label::DelimLeaf,
            ja,
            Action::Move(m(prog.final_state()), Dir::Stay),
        );
    }
    // Never-firing junk on real dispatch keys: an unsatisfiable guard on
    // up to three existing (label, state) pairs.
    let g = eq(cst(Value(900)), cst(Value(901)));
    let picks = 1 + (seed % 3) as usize;
    for r in prog.rules().iter().take(picks) {
        b.rule(
            r.label,
            m(r.state),
            g.clone(),
            Action::Move(m(prog.final_state()), Dir::Stay),
        );
    }
    b.build()
        .expect("junkified programs keep the builder invariants")
}

/// The bundled program roster, as `twq lint` sees it.
fn roster(vocab: &mut Vocab) -> Vec<(String, TwProgram)> {
    let base = TreeGenConfig::example32(vocab, 1, &[1]);
    let a = vocab.attr_opt("a").unwrap();
    let id = vocab.attr("id");
    let machine = machines::leaf_count_even(&base.symbols);
    vec![
        ("example_32".into(), examples::example_32(vocab).program),
        (
            "traversal".into(),
            examples::traversal_program(&base.symbols),
        ),
        (
            "even_leaves".into(),
            examples::even_leaves_program(&base.symbols),
        ),
        (
            "all_leaves_equal".into(),
            examples::all_leaves_equal_program(&base.symbols, a),
        ),
        (
            "parent_child_match".into(),
            examples::parent_child_match_program(&base.symbols, a),
        ),
        (
            "distinct_values>=4".into(),
            examples::distinct_values_at_least(&base.symbols, a, 4),
        ),
        (
            "at_most_4_values".into(),
            at_most_k_values_program(base.symbols[0], a, 4),
        ),
        (
            "delta_count_mod3".into(),
            delta_count_mod3(
                Label::Sym(base.symbols[0]),
                Label::Sym(base.symbols[1]),
                vocab,
            ),
        ),
        (
            "logspace(leaf_count_even)".into(),
            compile_logspace(&machine, &base.symbols, id, vocab)
                .unwrap()
                .program,
        ),
        (
            "pspace(leaf_count_even)".into(),
            compile_pspace(&machine, &base.symbols, id, vocab)
                .unwrap()
                .program,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heart of the prune contract: for XPath-compiled acceptors with
    /// seeded junk mixed in, `prune()` removes at least the junk and the
    /// pruned program accepts exactly the same trees as both the junked
    /// and the original program.
    #[test]
    fn prune_preserves_the_accepted_language(
        tree_seed in 0u64..500,
        path_seed in 0u64..500,
        junk_seed in 0u64..50,
        nodes in 2usize..18,
    ) {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let a = vocab.attr_opt("a").unwrap();
        let one = vocab.val_int_opt(1).unwrap();
        let id = vocab.attr("id");
        let xcfg = XPathGenConfig {
            symbols: cfg.symbols.clone(),
            attrs: vec![a],
            values: vec![one],
            max_depth: 3,
        };
        let path = random_xpath(&xcfg, path_seed);
        let orig = xpath_to_program(&path, &cfg.symbols, id, SelectionTest::NonEmpty);
        let junked = junkify(&orig, junk_seed);
        let pruned = prune(&junked);
        // All the injected junk goes: at least 2 junk states and the
        // junk rules (2 circle rules + optional leg + unsat rules).
        prop_assert!(pruned.removed_states.len() >= 2, "{:?}", pruned.removed_states);
        prop_assert!(pruned.removed_rules.len() >= 3, "{:?}", pruned.removed_rules);
        for s in 0..3u64 {
            let mut t = random_tree(&cfg, tree_seed.wrapping_add(s));
            t.assign_unique_ids(id, &mut vocab);
            let a0 = run_on_tree(&orig, &t, Limits::default()).accepted();
            let a1 = run_on_tree(&junked, &t, Limits::default()).accepted();
            let a2 = run_on_tree(&pruned.program, &t, Limits::default()).accepted();
            prop_assert_eq!(a0, a1, "junk changed the language (tree {})", s);
            prop_assert_eq!(a1, a2, "prune changed the language (tree {})", s);
        }
    }

    /// Pruning is idempotent: a pruned program prunes to itself.
    #[test]
    fn prune_is_idempotent(path_seed in 0u64..500, junk_seed in 0u64..50) {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, 4, &[1]);
        let a = vocab.attr_opt("a").unwrap();
        let one = vocab.val_int_opt(1).unwrap();
        let id = vocab.attr("id");
        let xcfg = XPathGenConfig {
            symbols: cfg.symbols.clone(),
            attrs: vec![a],
            values: vec![one],
            max_depth: 3,
        };
        let path = random_xpath(&xcfg, path_seed);
        let orig = xpath_to_program(&path, &cfg.symbols, id, SelectionTest::NonEmpty);
        let once = prune(&junkify(&orig, junk_seed));
        let twice = prune(&once.program);
        prop_assert!(!twice.changed(), "second prune removed more: {twice:?}");
    }
}

/// Class inference agrees with `classify()` on every bundled program,
/// and `fits` agrees with `check_class()` against every target class.
#[test]
fn inference_agrees_with_classify_and_check_class() {
    let mut vocab = Vocab::new();
    for (name, prog) in roster(&mut vocab) {
        let inf = infer(&prog);
        assert_eq!(inf.class, prog.classify(), "{name}");
        for target in [TwClass::Tw, TwClass::TwL, TwClass::TwR, TwClass::TwRL] {
            assert_eq!(
                inf.fits(target),
                prog.check_class(target).is_ok(),
                "{name} against {target}"
            );
        }
    }
}

/// Satellite of the `is_single_value_update` audit: a register update
/// written over a non-canonical variable name classifies exactly like
/// its x₀ spelling, and the analyzer's inference agrees.
#[test]
fn single_value_updates_classify_identically_across_variable_names() {
    for var in [0u16, 1, 3] {
        let mut vocab = Vocab::new();
        let sigma = vocab.sym("sigma");
        let a = vocab.attr("a");
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let r = b.unary_register();
        b.rule_true(
            Label::Sym(sigma),
            q0,
            Action::Update(qf, eq(v(var), attr(a)), r),
        );
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        let prog = b.build().unwrap();
        assert_eq!(prog.classify(), TwClass::Tw, "x{var}");
        assert_eq!(infer(&prog).class, TwClass::Tw, "x{var}");
    }
}

/// Every zoo entry triggers the diagnostic code it was built to trigger.
#[test]
fn the_zoo_is_fully_covered() {
    let mut vocab = Vocab::new();
    let entries = lint_zoo(&mut vocab);
    assert!(entries.len() >= 9);
    for entry in entries {
        let analysis = analyze_for_class(&entry.program, Some(entry.against));
        let codes: Vec<_> = analysis.diagnostics.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&entry.expect_code),
            "zoo entry `{}` expected {}, got {codes:?}",
            entry.name,
            entry.expect_code
        );
    }
}

/// The roster lints clean up to an explicit allowlist: every remaining
/// finding is either advisory (Info) or a known, documented consequence
/// of generated code. Anything else is a regression.
#[test]
fn roster_diagnostics_are_fixed_or_allowlisted() {
    // Machine-generated walkers (Theorem 7.1 compilers) manufacture
    // explicit reject-sink states (DS001/DS002) and if/else guard pairs
    // the exclusivity prover cannot fold (OV002, advisory anyway).
    let allow: &[(&str, &[&str])] = &[
        ("logspace(leaf_count_even)", &["DS001", "DS002", "OV002"]),
        ("pspace(leaf_count_even)", &["DS001", "DS002", "OV002"]),
    ];
    let mut vocab = Vocab::new();
    for (name, prog) in roster(&mut vocab) {
        let allowed: &[&str] = allow
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, codes)| *codes)
            .unwrap_or(&[]);
        for d in analyze(&prog).diagnostics {
            if d.severity == Severity::Info {
                continue;
            }
            assert!(
                allowed.contains(&d.code),
                "{name}: unexpected {}",
                d.render(&prog)
            );
        }
    }
}

/// The analyzer gates evaluators: a program beyond the class the caller
/// pays for is rejected statically with `TwqError::Invalid`.
#[test]
fn evaluators_reject_misclassed_programs_statically() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    let cfg = TreeGenConfig::example32(&mut vocab, 8, &[1]);
    let t = random_tree(&cfg, 1);
    let dt = DelimTree::build(&t);
    for weak in [TwClass::Tw, TwClass::TwL, TwClass::TwR] {
        let res = run_checked(&ex.program, &dt, Limits::default(), weak);
        assert!(
            matches!(res, Err(TwqError::Invalid { .. })),
            "tw^{{r,l}} program accepted at {weak}: {res:?}"
        );
    }
    let ok = run_checked(&ex.program, &dt, Limits::default(), TwClass::TwRL).unwrap();
    assert_eq!(
        ok.accepted(),
        examples::oracle_example_32(&t, ex.delta, ex.attr)
    );
}
