//! End-to-end checks for the `twq-fuzz` differential-fuzzing stack.
//!
//! The crate's own unit tests cover each module; these integration tests
//! exercise the public workflow the `fuzz` binary drives: a seeded
//! campaign over every case kind, the self-test path (plant a bug, catch
//! it, minimize it, replay it from a JSONL line), and the determinism
//! contract that `--jobs` never changes a campaign's outcome.

use twq::exec::Pool;
use twq::fuzz::{
    case_seed, gen_program_case, minimize, parse_jsonl, render_jsonl, replay, run_campaign,
    FuzzConfig, InjectedBug, Repro, Universe,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A healthy stack yields a clean campaign across all four case kinds.
#[test]
fn seeded_campaign_is_clean() {
    let uni = Universe::standard();
    let cfg = FuzzConfig {
        seed: 1,
        cases: 200,
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg, &uni, &Pool::new(2));
    assert!(report.clean(), "discrepancies: {:#?}", report.failures);
    assert_eq!(report.total(), 200);
    assert!(
        report.counts.iter().all(|&c| c > 0),
        "every kind should appear at the default mix: {:?}",
        report.counts
    );
}

/// Campaign outcomes are a pure function of `(seed, cases)` — the outer
/// pool width only changes wall-clock time.
#[test]
fn campaign_is_jobs_invariant() {
    let uni = Universe::standard();
    let cfg = FuzzConfig {
        seed: 3,
        cases: 80,
        ..FuzzConfig::default()
    };
    let serial = run_campaign(&cfg, &uni, &Pool::serial());
    let wide = run_campaign(&cfg, &uni, &Pool::new(4));
    assert_eq!(serial.counts, wide.counts);
    assert_eq!(serial.failures.len(), wide.failures.len());
}

/// The self-test loop: plant `RoutedFlip`, catch it, shrink the repro
/// within the advertised bounds, round-trip it through JSONL, and replay
/// it as still-failing.
#[test]
fn planted_bug_is_caught_minimized_and_replayable() {
    let uni = Universe::standard();
    let cfg = FuzzConfig {
        seed: 7,
        cases: 120,
        inject: Some(InjectedBug::RoutedFlip),
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg, &uni, &Pool::new(2));
    assert!(!report.clean(), "planted routed-flip not caught");
    let repro = report
        .failures
        .iter()
        .find_map(|f| f.repro.as_ref())
        .expect("a program-shaped failure with a repro");
    assert!(
        repro.case.program.state_count() <= 8,
        "minimized program too large: {} states",
        repro.case.program.state_count()
    );
    assert!(
        repro.case.tree.len() <= 16,
        "minimized tree too large: {} nodes",
        repro.case.tree.len()
    );

    // JSONL batch round-trip, then replay: the repro must still fail.
    let jsonl = render_jsonl(std::slice::from_ref(repro));
    let back = parse_jsonl(&jsonl).expect("rendered repros parse back");
    assert_eq!(back.len(), 1);
    let pool = Pool::new(2);
    assert_eq!(replay(&back, &pool), vec![0]);

    // Without the injected bug the same case is healthy again.
    let healthy = Repro {
        inject: None,
        ..back[0].clone()
    };
    assert!(replay(std::slice::from_ref(&healthy), &pool).is_empty());
}

/// Minimization is a fixpoint: shrinking an already-minimal case again
/// changes nothing, and shrinking never grows a healthy-run measure.
#[test]
fn minimization_is_idempotent() {
    let uni = Universe::standard();
    let pool = Pool::new(2);
    let mut rng = StdRng::seed_from_u64(case_seed(7, 11));
    let case = gen_program_case(&mut rng, &uni);
    let once = minimize(&case, &pool, Some(InjectedBug::RoutedFlip));
    let twice = minimize(&once, &pool, Some(InjectedBug::RoutedFlip));
    assert!(twice.tree.len() <= once.tree.len());
    assert!(twice.program.state_count() <= once.program.state_count());
    assert!(twice.program.rules().len() <= once.program.rules().len());
}

/// Corrupt JSONL is rejected at decode time, not silently replayed.
#[test]
fn corrupt_repro_lines_are_rejected() {
    assert!(parse_jsonl("this is not json\n").is_err());
    assert!(parse_jsonl("{\"vocab\":{}}\n").is_err());
}
