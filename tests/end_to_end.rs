//! Cross-crate integration: XPath-compiled selectors driving `atp`
//! look-ahead inside tree-walking programs — the XSLT pipeline the paper
//! abstracts (patterns select, templates walk).

use twq::automata::{Action, Dir, Limits, TwProgramBuilder};
use twq::logic::store::sbuild::*;
use twq::logic::{SFormula, Var};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{DelimTree, Label, Vocab};
use twq::xpath::{compile, parse_xpath};

/// Build a `tw^{r,l}` program whose look-ahead selector is a *compiled
/// XPath expression*: accept iff some node selected by `query` (from the
/// root of the original tree) carries attribute `a = target`.
fn xpath_driven_program(
    query: &str,
    vocab: &mut Vocab,
    target: twq::tree::Value,
) -> twq::automata::TwProgram {
    let a = vocab.attr("a");
    let path = parse_xpath(query, vocab).expect("valid query");
    let phi = compile(&path);
    let syms: Vec<_> = vocab.syms().collect();
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    let chk = b.state("chk");
    let q_sel = b.state("q_sel");
    let q_f = b.state("qF");
    b.initial(q0).final_state(q_f);
    let x1 = b.unary_register();
    // Walk ▽ → ⊳ → original root, then atp with the compiled selector;
    // each selected node contributes its a-value, and acceptance is gated
    // on `target` being among them.
    b.rule_true(Label::DelimRoot, q0, Action::Move(q1, Dir::Down));
    b.rule_true(Label::DelimOpen, q1, Action::Move(q2, Dir::Right));
    for &s in &syms {
        b.rule_true(Label::Sym(s), q2, Action::Atp(chk, phi.clone(), q_sel, x1));
        b.rule_true(
            Label::Sym(s),
            q_sel,
            Action::Update(q_f, eq(v(0), attr(a)), x1),
        );
        b.rule(
            Label::Sym(s),
            chk,
            rel(x1, [cst(target)]),
            Action::Move(q_f, Dir::Stay),
        );
    }
    b.build().expect("well-formed")
}

#[test]
fn xpath_selector_feeds_atp() {
    let mut vocab = Vocab::new();
    let t = twq::tree::parse_tree(
        "sigma[a=0](delta[a=1](sigma[a=2]),sigma[a=3](delta[a=4]))",
        &mut vocab,
    )
    .unwrap();
    let two = vocab.val_int(2);
    let five = vocab.val_int(5);

    // //delta//sigma: σ-descendants of δ-descendants — the node with a=2.
    let hit = xpath_driven_program("//delta//sigma", &mut vocab, two);
    let report = twq::automata::run_on_tree(&hit, &t, Limits::default());
    assert!(report.accepted(), "{:?}", report.halt);

    // Same query, value 5 never occurs → the guard never fires → reject.
    let miss = xpath_driven_program("//delta//sigma", &mut vocab, five);
    let report = twq::automata::run_on_tree(&miss, &t, Limits::default());
    assert!(!report.accepted());
}

/// Selection via the compiled formula must match selection computed by the
/// XPath reference evaluator even when run through the `atp` machinery on
/// *delimited* trees' originals.
#[test]
fn compiled_selector_agrees_with_reference_on_random_docs() {
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 30, &[1, 2, 3]);
    for (qi, query) in [
        "sigma/delta",
        "//delta[sigma]",
        "sigma//sigma[@a=1] | delta",
    ]
    .iter()
    .enumerate()
    {
        let path = parse_xpath(query, &mut vocab).unwrap();
        let phi = compile(&path);
        for seed in 0..5 {
            let t = random_tree(&cfg, seed);
            for u in t.node_ids() {
                let direct = twq::xpath::eval_from(&t, &path, u);
                let logical = phi.select(&t, u);
                assert_eq!(direct, logical, "query #{qi} seed {seed} node {u}");
            }
        }
    }
}

/// The engine and graph evaluator agree for a program whose guard is a
/// nontrivial FO sentence over the store.
#[test]
fn engine_and_graph_agree_with_store_guards() {
    let mut vocab = Vocab::new();
    let ex = twq::automata::examples::example_32(&mut vocab);
    let mixed = TreeGenConfig::example32(&mut vocab, 25, &[1, 2]);
    for seed in 0..10 {
        let t = random_tree(&mixed, seed);
        let dt = DelimTree::build(&t);
        let a = twq::automata::run(&ex.program, &dt, Limits::default());
        let b = twq::automata::run_graph(&ex.program, &dt, Limits::default());
        assert_eq!(a.accepted(), b.accepted(), "seed {seed}");
    }
}

/// Guards can express "the register holds exactly the set of values
/// {1, 2}" — cross-checking store-FO evaluation against the engine.
#[test]
fn exact_set_guard() {
    let mut vocab = Vocab::new();
    let t = twq::tree::parse_tree("s[a=9](s[a=1],s[a=2])", &mut vocab).unwrap();
    let one = vocab.val_int(1);
    let two = vocab.val_int(2);
    let s_sym = Label::Sym(vocab.sym_opt("s").unwrap());
    let a = vocab.attr_opt("a").unwrap();

    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q_leaf = b.state("q_leaf");
    let q_f = b.state("qF");
    b.initial(q0).final_state(q_f);
    let x1 = b.unary_register();
    b.rule_true(
        Label::DelimRoot,
        q0,
        Action::Atp(
            q1,
            twq::logic::exists::selectors::delim_leaf_descendants(),
            q_leaf,
            x1,
        ),
    );
    b.rule_true(s_sym, q_leaf, Action::Update(q_f, eq(v(0), attr(a)), x1));
    // X1 = {1, 2} exactly: both present, nothing else.
    let exact = and([
        rel(x1, [cst(one)]),
        rel(x1, [cst(two)]),
        SFormula::Forall(
            Var(0),
            Box::new(implies(
                rel(x1, [v(0)]),
                or([eq(v(0), cst(one)), eq(v(0), cst(two))]),
            )),
        ),
    ]);
    b.rule(Label::DelimRoot, q1, exact, Action::Move(q_f, Dir::Stay));
    let p = b.build().unwrap();
    let report = twq::automata::run_on_tree(&p, &t, Limits::default());
    assert!(report.accepted(), "{:?}", report.halt);
}
