//! The `twq-rw` obligation suite: per-rule proptest equivalence (every
//! shipped rewrite rule must preserve the binary relation on random
//! trees), normal-form idempotence and confluence-on-samples, the
//! containment/emptiness checkers against brute-force evaluation on
//! bounded random trees, and empirical validation of streamability
//! certificates with a `MemGauge` on the active set.

use proptest::prelude::*;

use twq::guard::{GaugeKind, MemGauge};
use twq::logic::fo::build as fb;
use twq::logic::{eval_sentence, select};
use twq::rw::{
    apply_rule_deep, contains, eval_sentence_rewritten, fo_select_rewritten, normalize,
    normalize_formula, normalize_seeded, provably_empty, rewrite, rule, stream_select_gauged,
    Certificate, RewriteCtx, CATALOG,
};
use twq::tree::generate::{chain_tree, random_tree, TreeGenConfig};
use twq::tree::{Tree, Vocab};
use twq::xpath::{
    ast::xb, compile, eval_from, eval_pairs, random_xpath_shaped, XPathGenConfig, XPathShape,
};

/// The shared fixture: the Example 3.2 `{σ, δ}` vocabulary, a tree
/// generator over it, and an XPath generator speaking the same names.
fn setup() -> (Vocab, TreeGenConfig, XPathGenConfig) {
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 12, &[1, 2]);
    let a = vocab.attr_opt("a").unwrap();
    let one = vocab.val_int_opt(1).unwrap();
    let xcfg = XPathGenConfig {
        symbols: cfg.symbols.clone(),
        attrs: vec![a],
        values: vec![one],
        max_depth: 3,
    };
    (vocab, cfg, xcfg)
}

/// Like [`setup`], but the *query* alphabet carries an extra `ghost`
/// symbol that trees (and the rewrite context) never speak — the fuel for
/// alphabet-based emptiness pruning.
fn setup_ghost() -> (Vocab, TreeGenConfig, XPathGenConfig, RewriteCtx) {
    let (mut vocab, cfg, mut xcfg) = setup();
    let ghost = vocab.sym("ghost");
    xcfg.symbols.push(ghost);
    let ctx = RewriteCtx::unconstrained().with_alphabet(cfg.symbols.iter().copied());
    (vocab, cfg, xcfg, ctx)
}

fn tree_for(cfg: &TreeGenConfig, seed: u64, nodes: usize) -> Tree {
    let mut c = cfg.clone();
    c.nodes = nodes.max(1);
    random_tree(&c, seed)
}

/// Each rule's equivalence obligation: wherever the rule matches, the
/// rewritten query selects exactly the same binary relation as the
/// original, on (at least) 4 random trees per sampled query — 64 cases ×
/// 4 trees ≥ 256 tree evaluations per rule.
macro_rules! rule_obligation {
    ($test:ident, $name:literal, $shape:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $test(path_seed in 0u64..1_000_000, tree_seed in 0u64..1_000_000) {
                let (_vocab, cfg, xcfg) = setup();
                let r = rule($name).expect("rule is in the catalog");
                let ctx = RewriteCtx::unconstrained();
                let p = random_xpath_shaped(&xcfg, path_seed, $shape);
                if let Some(q) = apply_rule_deep(r, &p, &ctx) {
                    for k in 0..4u64 {
                        let nodes = 2 + ((tree_seed + k) % 14) as usize;
                        let t = tree_for(&cfg, tree_seed.wrapping_add(k), nodes);
                        prop_assert_eq!(
                            eval_pairs(&t, &p),
                            eval_pairs(&t, &q),
                            "rule {} changed semantics (path seed {}, tree seed {})",
                            $name, path_seed, tree_seed
                        );
                    }
                }
            }
        }
    };
}

rule_obligation!(rw_union_canon_equiv, "union-canon", XPathShape::UnionHeavy);
rule_obligation!(rw_filter_true_equiv, "filter-true", XPathShape::FilterHeavy);
rule_obligation!(
    rw_filter_canon_equiv,
    "filter-canon",
    XPathShape::FilterHeavy
);
rule_obligation!(
    rw_filter_pushdown_equiv,
    "filter-pushdown",
    XPathShape::FilterHeavy
);
rule_obligation!(rw_wild_fuse_equiv, "wild-fuse", XPathShape::Uniform);
rule_obligation!(rw_step_assoc_equiv, "step-assoc", XPathShape::Uniform);
rule_obligation!(rw_axis_fuse_equiv, "axis-fuse", XPathShape::Uniform);
rule_obligation!(rw_root_canon_equiv, "root-canon", XPathShape::Uniform);
rule_obligation!(
    rw_union_subsume_equiv,
    "union-subsume",
    XPathShape::UnionHeavy
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `empty-prune` obligation needs a context with assumptions:
    /// queries speak `{σ, δ, ghost}` but trees and the declared alphabet
    /// only `{σ, δ}`, so `ghost` branches are provably empty — and
    /// deleting them must not change the relation on conforming trees.
    #[test]
    fn rw_empty_prune_equiv(path_seed in 0u64..1_000_000, tree_seed in 0u64..1_000_000) {
        let (_vocab, cfg, xcfg, ctx) = setup_ghost();
        let r = rule("empty-prune").expect("rule is in the catalog");
        let p = random_xpath_shaped(&xcfg, path_seed, XPathShape::UnionHeavy);
        if let Some(q) = apply_rule_deep(r, &p, &ctx) {
            for k in 0..4u64 {
                let nodes = 2 + ((tree_seed + k) % 14) as usize;
                let t = tree_for(&cfg, tree_seed.wrapping_add(k), nodes);
                prop_assert_eq!(eval_pairs(&t, &p), eval_pairs(&t, &q));
            }
        }
    }

    /// The full engine: the normal form is equivalent to the input, and a
    /// provably-empty verdict means the relation really is empty.
    #[test]
    fn normal_form_is_equivalent(
        path_seed in 0u64..1_000_000,
        tree_seed in 0u64..1_000_000,
        shape_roll in 0u32..3,
    ) {
        let (_vocab, cfg, xcfg) = setup();
        let shape = [XPathShape::Uniform, XPathShape::UnionHeavy, XPathShape::FilterHeavy]
            [shape_roll as usize];
        let p = random_xpath_shaped(&xcfg, path_seed, shape);
        let n = normalize(&p);
        for k in 0..4u64 {
            let nodes = 2 + ((tree_seed + k) % 14) as usize;
            let t = tree_for(&cfg, tree_seed.wrapping_add(k), nodes);
            let direct = eval_pairs(&t, &p);
            prop_assert_eq!(&direct, &eval_pairs(&t, &n));
            if rewrite(&p).provably_empty {
                prop_assert!(direct.is_empty(), "provably-empty query selected pairs");
            }
        }
    }

    /// Normalization is idempotent, and (on samples) confluent: shuffling
    /// the rule application order reaches the same normal form.
    #[test]
    fn normalization_idempotent_and_confluent(
        path_seed in 0u64..1_000_000,
        shape_roll in 0u32..3,
    ) {
        let (_vocab, _cfg, xcfg) = setup();
        let shape = [XPathShape::Uniform, XPathShape::UnionHeavy, XPathShape::FilterHeavy]
            [shape_roll as usize];
        let p = random_xpath_shaped(&xcfg, path_seed, shape);
        let ctx = RewriteCtx::unconstrained();
        let n = normalize(&p);
        prop_assert_eq!(&normalize(&n), &n, "normal form not a fixpoint");
        for order_seed in [1u64, 7, 1729] {
            prop_assert_eq!(
                &normalize_seeded(&p, &ctx, order_seed),
                &n,
                "rule order {} reached a different normal form",
                order_seed
            );
        }
    }

    /// Containment is sound: whenever the checker says `p ⊑ q`, brute
    /// force on bounded random trees finds the relation of `p` inside the
    /// relation of `q`.
    #[test]
    fn containment_is_sound(
        p_seed in 0u64..1_000_000,
        q_seed in 0u64..1_000_000,
        tree_seed in 0u64..1_000_000,
    ) {
        let (_vocab, cfg, xcfg) = setup();
        let p = random_xpath_shaped(&xcfg, p_seed, XPathShape::Uniform);
        let q = random_xpath_shaped(&xcfg, q_seed, XPathShape::UnionHeavy);
        // Exercise both orientations plus guaranteed-positive instances.
        let claims = [
            (p.clone(), q.clone(), contains(&p, &q)),
            (q.clone(), p.clone(), contains(&q, &p)),
            (p.clone(), xb::union(p.clone(), q.clone()), true),
        ];
        prop_assert!(contains(&p, &xb::union(p.clone(), q.clone())), "p ⊑ p | q must hold");
        for (lo, hi, claimed) in claims {
            if !claimed {
                continue; // the checker is incomplete by design; only soundness is testable
            }
            for k in 0..6u64 {
                let nodes = 2 + ((tree_seed + k) % 12) as usize;
                let t = tree_for(&cfg, tree_seed.wrapping_add(k), nodes);
                let (lp, hp) = (eval_pairs(&t, &lo), eval_pairs(&t, &hi));
                prop_assert!(
                    lp.is_subset(&hp),
                    "claimed containment refuted on tree seed {}",
                    tree_seed.wrapping_add(k)
                );
            }
        }
    }

    /// Emptiness is sound under alphabet + depth assumptions: a
    /// provably-empty verdict means no conforming tree yields a pair.
    #[test]
    fn emptiness_is_sound(
        path_seed in 0u64..1_000_000,
        tree_seed in 0u64..1_000_000,
        shape_roll in 0u32..3,
    ) {
        let (_vocab, cfg, xcfg, ctx) = setup_ghost();
        let max_depth = 3usize;
        let ctx = ctx.with_max_depth(max_depth);
        let shape = [XPathShape::Uniform, XPathShape::UnionHeavy, XPathShape::FilterHeavy]
            [shape_roll as usize];
        let p = random_xpath_shaped(&xcfg, path_seed, shape);
        if provably_empty(&p, &ctx) {
            for k in 0..8u64 {
                let nodes = 2 + ((tree_seed + k) % 12) as usize;
                let t = tree_for(&cfg, tree_seed.wrapping_add(k), nodes);
                if t.node_ids().map(|u| t.depth(u)).max().unwrap_or(0) > max_depth {
                    continue; // not a conforming tree
                }
                prop_assert!(
                    eval_pairs(&t, &p).is_empty(),
                    "provably-empty query selected pairs on a conforming tree"
                );
            }
        }
    }

    /// FO normalization preserves both sentence truth and per-context
    /// selection, and is idempotent.
    #[test]
    fn fo_normal_form_is_equivalent(path_seed in 0u64..1_000_000, tree_seed in 0u64..1_000_000) {
        let (_vocab, cfg, xcfg) = setup();
        let phi = compile(&random_xpath_shaped(&xcfg, path_seed, XPathShape::FilterHeavy));
        // Keep the naive O(n^q) evaluator affordable.
        prop_assume!(phi.quantified().len() <= 4);
        let formula = phi.to_formula();
        let sentence = fb::exists(phi.x(), fb::exists(phi.y(), formula.clone()));
        prop_assert_eq!(&normalize_formula(&normalize_formula(&sentence)),
                        &normalize_formula(&sentence));
        let t = tree_for(&cfg, tree_seed, 2 + (tree_seed % 6) as usize);
        prop_assert_eq!(
            eval_sentence(&t, &sentence).unwrap(),
            eval_sentence_rewritten(&t, &sentence).unwrap()
        );
        for u in t.node_ids() {
            prop_assert_eq!(
                select(&t, &formula, phi.x(), u, phi.y()).unwrap(),
                fo_select_rewritten(&t, &formula, phi.x(), u, phi.y()).unwrap()
            );
        }
    }
}

/// Every rule in the catalog actually fires somewhere on the shaped
/// corpus — the per-rule obligations above are not vacuously true.
#[test]
fn every_rule_fires_on_the_shaped_corpus() {
    let (_vocab, _cfg, xcfg) = setup();
    let (_gv, _gcfg, gxcfg, gctx) = setup_ghost();
    let shapes = [
        XPathShape::Uniform,
        XPathShape::UnionHeavy,
        XPathShape::FilterHeavy,
    ];
    for r in CATALOG {
        let (cfg_ref, ctx) = if r.name == "empty-prune" {
            (&gxcfg, gctx.clone())
        } else {
            (&xcfg, RewriteCtx::unconstrained())
        };
        let mut fired = 0usize;
        'seeds: for seed in 0..2_000u64 {
            for shape in shapes {
                let p = random_xpath_shaped(cfg_ref, seed, shape);
                if apply_rule_deep(r, &p, &ctx).is_some() {
                    fired += 1;
                    if fired >= 5 {
                        break 'seeds;
                    }
                }
            }
        }
        assert!(
            fired >= 5,
            "rule {} fired only {fired} time(s) in 2000 seeds — obligation is vacuous",
            r.name
        );
    }
}

/// Streamability certificates hold empirically: on deep chains and random
/// trees, the one-pass evaluator reproduces `eval_from(root)` while a
/// `MemGauge` capped at `max_depth_state` never trips — the active set
/// stays within the certified per-level bound no matter the tree size.
#[test]
fn streamability_certificates_hold_under_memgauge() {
    let (_vocab, cfg, xcfg) = setup();
    let mut certified = 0usize;
    for path_seed in 0..160u64 {
        let shape = [
            XPathShape::Uniform,
            XPathShape::UnionHeavy,
            XPathShape::FilterHeavy,
        ][(path_seed % 3) as usize];
        let p = random_xpath_shaped(&xcfg, path_seed, shape);
        let rw = rewrite(&p);
        let Certificate::Streamable { max_depth_state } = rw.certificate else {
            continue;
        };
        certified += 1;
        let mut trees = vec![
            chain_tree(cfg.symbols[0], 64),
            tree_for(&cfg, path_seed, 40),
            tree_for(&cfg, path_seed.wrapping_add(1), 7),
        ];
        for t in trees.drain(..) {
            let mut gauge = MemGauge::unlimited().with_limit(GaugeKind::Relation, max_depth_state);
            let streamed = stream_select_gauged(&t, &rw.output, &mut gauge)
                .expect("certified query exceeded its own max_depth_state")
                .expect("certified query must be streamable");
            let (got, stats) = streamed;
            let want = eval_from(&t, &p, t.root());
            assert_eq!(got, want, "stream pass diverged (path seed {path_seed})");
            assert!(stats.max_active <= max_depth_state);
            assert!(gauge.high_water(GaugeKind::Relation) <= max_depth_state);
        }
    }
    assert!(
        certified >= 40,
        "only {certified}/160 sampled queries certified streamable — corpus too weak"
    );
}

/// The certificate-vs-evaluator contract from the other side: a
/// `NotStreamable` witness never stops the relational twins from agreeing
/// (spot check that `rewrite` + naive evaluation round-trips for every
/// certificate variant).
#[test]
fn certificates_partition_the_corpus() {
    let (_vocab, cfg, xcfg, ctx) = setup_ghost();
    let (mut empty, mut stream, mut relational) = (0usize, 0usize, 0usize);
    for seed in 0..300u64 {
        let shape = [
            XPathShape::Uniform,
            XPathShape::UnionHeavy,
            XPathShape::FilterHeavy,
        ][(seed % 3) as usize];
        let p = random_xpath_shaped(&xcfg, seed, shape);
        let rw = twq::rw::rewrite_in(&p, &ctx);
        let t = tree_for(&cfg, seed, 9);
        match rw.certificate {
            Certificate::Empty => {
                empty += 1;
                assert!(eval_pairs(&t, &p).is_empty(), "seed {seed}");
            }
            Certificate::Streamable { .. } => stream += 1,
            Certificate::NotStreamable { ref witness } => {
                relational += 1;
                assert!(!witness.is_empty());
            }
        }
        assert_eq!(
            eval_pairs(&t, &p),
            eval_pairs(&t, &rw.output),
            "seed {seed}"
        );
    }
    assert!(empty > 0, "no Empty certificates in 300 seeds");
    assert!(stream > 0, "no Streamable certificates in 300 seeds");
    assert!(relational > 0, "no NotStreamable certificates in 300 seeds");
}
