//! Property-based tests for the `twq-prof` observability layer:
//! histogram algebra, quantile accuracy, pool-telemetry determinism
//! across worker counts, registry snapshot round-trips, and flame/guard
//! profile determinism.

use proptest::prelude::*;

use twq::automata::{examples, run_batch_governed, run_batch_profiled, Limits};
use twq::exec::Pool;
use twq::guard::ResourceGuard;
use twq::obs::{EventSink, FlameProfiler, Histogram, MetricsCollector, Registry, Snapshot};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{Tree, Vocab};

/// A deterministic value stream (splitmix64) — the vendored proptest
/// shim has no collection strategies, so sample vectors derive from a
/// seed. Mixing wide and narrow ranges exercises many log2 buckets.
fn values(seed: u64, len: usize) -> Vec<u64> {
    let mut s = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|i| match i % 3 {
            0 => next() % 50,
            1 => next() % 100_000,
            _ => next() % (u64::MAX / 2),
        })
        .collect()
}

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

/// The log2 bucket a value falls in — the resolution [`Histogram`]
/// quantiles are allowed to be off by.
fn bucket_of(v: u64) -> u32 {
    u64::BITS - v.leading_zeros()
}

/// A small batch of example-3.2 trees for the pool-determinism tests.
fn batch(seed: u64, n: usize) -> (Vocab, Vec<Tree>) {
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 24, &[1, 2]);
    let trees = (0..n).map(|i| random_tree(&cfg, seed + i as u64)).collect();
    (vocab, trees)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Histogram merge is commutative: a+b and b+a agree exactly.
    #[test]
    fn hist_merge_commutes(sa in 0u64..1_000, sb in 0u64..1_000, la in 0usize..60, lb in 0usize..60) {
        let (a, b) = (values(sa, la), values(sb, lb));
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    /// Histogram merge is associative: (a+b)+c = a+(b+c), and both equal
    /// the histogram of the concatenated samples.
    #[test]
    fn hist_merge_is_associative(sa in 0u64..1_000, sb in 0u64..1_000, sc in 0u64..1_000, len in 0usize..50) {
        let (a, b, c) = (values(sa, len), values(sb, len / 2 + 1), values(sc, len / 3 + 2));
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right = hb.clone();
        right.merge(&hc);
        let mut right_total = ha.clone();
        right_total.merge(&right);
        prop_assert_eq!(&left, &right_total);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist_of(&all));
    }

    /// Quantile estimates land within one log2 bucket of the exact
    /// order statistic, and q=0 / q=1 are exactly min / max.
    #[test]
    fn quantiles_are_bucket_accurate(seed in 0u64..1_000, len in 1usize..80, qm in 0u64..=1_000) {
        let vals = values(seed, len);
        let q = qm as f64 / 1_000.0;
        let h = hist_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.quantile(0.0), Some(sorted[0]));
        prop_assert_eq!(h.quantile(1.0), Some(*sorted.last().unwrap()));
        let est = h.quantile(q).unwrap();
        let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        let exact = sorted[rank - 1];
        prop_assert!(
            bucket_of(est).abs_diff(bucket_of(exact)) <= 1,
            "q={q} est={est} exact={exact}"
        );
    }

    /// Registry snapshots survive the JSONL round trip exactly, both
    /// cumulative and delta.
    #[test]
    fn registry_snapshot_round_trips_as_jsonl(seed in 0u64..1_000, n in 0usize..40) {
        let vals = values(seed, n);
        let mut reg = Registry::new();
        for (i, &v) in vals.iter().enumerate() {
            match i % 4 {
                // Realistic magnitudes: the JSON layer stores integers as
                // i64, so astronomically large sums (> i64::MAX) would
                // degrade to floats and fail the exact round trip.
                0 => reg.counter_add(&format!("pool/c{}", v % 5), v % 1_000_000),
                1 => reg.gauge_set(&format!("g{}", v % 3), (v % 1_000) as i64 - 500),
                _ => reg.hist_record("latency/E1", v % 100_000_000_000),
            }
        }
        for snap in [reg.snapshot(), reg.delta_snapshot()] {
            let line = snap.to_jsonl();
            prop_assert!(!line.contains('\n'), "JSONL must be one line: {}", line);
            let parsed = twq::obs::Json::parse(&line).expect("snapshot renders valid JSON");
            let back = Snapshot::from_json(&parsed).expect("snapshot parses back");
            prop_assert_eq!(&back, &snap);
        }
    }

    /// Merged pool telemetry is worker-count independent in its totals:
    /// a 4-worker batch accounts for exactly the same tasks and run
    /// results as the serial batch, and the merged metrics agree exactly.
    #[test]
    fn pool_telemetry_totals_match_across_worker_counts(seed in 0u64..200) {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let (_, trees) = batch(seed, 7);
        let (r1, m1, p1) = run_batch_profiled(&ex.program, &trees, Limits::default(), &Pool::new(1));
        let (r4, m4, p4) = run_batch_profiled(&ex.program, &trees, Limits::default(), &Pool::new(4));
        prop_assert_eq!(r1.len(), r4.len());
        for (a, b) in r1.iter().zip(&r4) {
            prop_assert_eq!(a.accepted(), b.accepted());
            prop_assert_eq!(a.steps, b.steps);
        }
        prop_assert_eq!(m1.steps, m4.steps);
        prop_assert_eq!(m1.halt, m4.halt);
        let (t1, t4) = (p1.stats.totals(), p4.stats.totals());
        prop_assert_eq!(t1.tasks, trees.len() as u64);
        prop_assert_eq!(t4.tasks, trees.len() as u64);
        prop_assert_eq!(p1.latencies_ns.len(), trees.len());
        prop_assert_eq!(p4.latencies_ns.len(), trees.len());
        // Serial execution neither steals nor spins.
        prop_assert_eq!(t1.steals, 0);
        prop_assert_eq!(t1.idle_spins, 0);
    }

    /// Guard statistics from a governed batch are deterministic and
    /// worker-count independent: same trips, same fuel, any pool.
    #[test]
    fn guard_stats_are_worker_count_independent(seed in 0u64..200, budget in 1u64..400) {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let (_, trees) = batch(seed, 6);
        let make = || ResourceGuard::unlimited().with_budget(budget);
        let (r1, g1) = run_batch_governed(&ex.program, &trees, Limits::default(), &Pool::new(1), make);
        let (r4, g4) = run_batch_governed(&ex.program, &trees, Limits::default(), &Pool::new(4), make);
        prop_assert_eq!(&g1, &g4);
        prop_assert_eq!(g1.budget_trips, r1.iter().filter(|r| r.is_err()).count() as u64);
        for (a, b) in r1.iter().zip(&r4) {
            prop_assert_eq!(a.is_ok(), b.is_ok());
        }
    }

    /// The flame profiler is deterministic: profiling the same run twice
    /// yields byte-identical collapsed stacks, and its total weight
    /// covers at least one sample per interpreter step.
    #[test]
    fn flame_profile_is_deterministic(seed in 0u64..200) {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let cfg = TreeGenConfig::example32(&mut vocab, 30, &[1, 2]);
        let t = random_tree(&cfg, seed);
        let dt = twq::tree::DelimTree::build(&t);
        let collapse = || {
            let mut flame = FlameProfiler::new();
            let mut mc = MetricsCollector::with_sink(&mut flame);
            twq::automata::run_with(&ex.program, &dt, Limits::default(), &mut mc);
            let m = mc.into_metrics();
            (flame.collapsed(), flame.total_weight(), m.steps)
        };
        let (c1, w1, steps) = collapse();
        let (c2, w2, _) = collapse();
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(w1, w2);
        prop_assert!(w1 >= steps, "every step is sampled: {} < {}", w1, steps);
        prop_assert!(!c1.is_empty());
    }
}

/// Non-proptest sanity check: a tee'd profiler and ring buffer see the
/// same stream, so the post-mortem tail is consistent with the profile.
#[test]
fn tee_profile_and_ring_agree_on_event_count() {
    use twq::obs::{Event, RingBufferSink, TeeSink};
    let mut flame = FlameProfiler::new();
    let mut ring = RingBufferSink::new(4);
    {
        let mut tee = TeeSink::new(&mut flame, &mut ring);
        for i in 0..10u64 {
            tee.emit(&Event::Step {
                depth: 0,
                node: i,
                state: 0,
            });
        }
    }
    assert_eq!(flame.total_weight(), 10);
    assert_eq!(ring.len(), 4);
    assert_eq!(ring.dropped(), 6);
}
