//! Property tests for the causal trace layer (`twq-obs::trace`):
//! worker-independent causal IDs, witness provenance that re-satisfies
//! the formulas it claims to witness, and a reflexive diff.

use proptest::prelude::*;

use twq::automata::{examples, trace_batch, trace_run, Limits};
use twq::exec::Pool;
use twq::logic::eval::{eval, Assignment};
use twq::logic::fo::build as fob;
use twq::logic::{trace_sentence, Formula, Var};
use twq::obs::{diff, Span, SpanKind, Trace, Verdict};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{DelimTree, Label, NodeId, Tree, Vocab};

/// Follow the chain of successful ∃ spans: each true existential span
/// carries its winning witness, and the successful candidate's recursion
/// is its last quantifier child (the evaluator short-circuits there).
fn winning_valuation(span: &Span, out: &mut Vec<(Var, NodeId)>) {
    let SpanKind::Quant { exists: true, var } = span.kind else {
        return;
    };
    if span.verdict != Some(Verdict::Bool(true)) {
        return;
    }
    let w = span.witness.expect("a true ∃ span records its witness");
    out.push((Var(var as u16), NodeId(w as u32)));
    if let Some(child) = span
        .children
        .iter()
        .rev()
        .find(|c| matches!(c.kind, SpanKind::Quant { .. }))
    {
        winning_valuation(child, out);
    }
}

/// A random ∃-prefix sentence over `k` variables whose matrix is a
/// conjunction of label and leaf atoms, returned with the matrix.
fn exists_prefix_sentence(k: u16, bits: u64, sigma: Label, delta: Label) -> (Formula, Formula) {
    let mut parts = Vec::new();
    for i in 0..k {
        let x = fob::var(i);
        let l = if bits >> (2 * i) & 1 == 0 {
            sigma
        } else {
            delta
        };
        parts.push(fob::lab(l, x));
        if bits >> (2 * i + 1) & 1 == 0 {
            parts.push(fob::not(fob::leaf(x)));
        }
    }
    let matrix = fob::and(parts);
    let mut sentence = matrix.clone();
    for i in (0..k).rev() {
        sentence = fob::exists(fob::var(i), sentence);
    }
    (sentence, matrix)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Causal IDs are worker-independent: recording is single-threaded
    /// per run and the batch merge is positional, so `--jobs 1` and
    /// `--jobs 4` produce byte-identical traces.
    #[test]
    fn batch_traces_are_worker_independent(seed in 0u64..500, nodes in 1usize..30) {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let trees: Vec<Tree> = (0..5).map(|i| random_tree(&cfg, seed + i)).collect();
        let (r1, t1) = trace_batch(&ex.program, &trees, Limits::default(), &Pool::new(1));
        let (r4, t4) = trace_batch(&ex.program, &trees, Limits::default(), &Pool::new(4));
        prop_assert_eq!(
            r1.iter().map(|r| r.accepted()).collect::<Vec<_>>(),
            r4.iter().map(|r| r.accepted()).collect::<Vec<_>>()
        );
        prop_assert_eq!(t1.to_json_line(), t4.to_json_line());
    }

    /// Witness provenance is honest: binding every reported ∃ witness
    /// along the successful path re-satisfies the quantifier-free matrix.
    #[test]
    fn fo_witnesses_resatisfy_their_matrix(
        seed in 0u64..500,
        nodes in 1usize..20,
        k in 1u16..4,
        bits in 0u64..64,
    ) {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1]);
        let t = random_tree(&cfg, seed);
        let sigma = Label::Sym(cfg.symbols[0]);
        let delta = Label::Sym(*cfg.symbols.last().unwrap());
        let (sentence, matrix) = exists_prefix_sentence(k, bits, sigma, delta);
        let (verdict, trace) = trace_sentence(&t, &sentence);
        prop_assume!(verdict == Ok(true));
        let outer = trace
            .root
            .children
            .iter()
            .find(|c| matches!(c.kind, SpanKind::Quant { .. }))
            .expect("a true ∃-prefix sentence records its outer quantifier");
        let mut val = Vec::new();
        winning_valuation(outer, &mut val);
        prop_assert_eq!(val.len(), k as usize, "one witness per prefix variable");
        let mut asg = Assignment::with_capacity(Some(Var(k - 1)));
        for (v, u) in &val {
            asg.set(*v, *u);
        }
        prop_assert_eq!(eval(&t, &matrix, &mut asg), Ok(true));
    }

    /// `diff` is reflexive-empty: a trace never diverges from itself,
    /// nor from its JSON round trip.
    #[test]
    fn diff_of_a_trace_with_itself_is_empty(seed in 0u64..500, nodes in 1usize..30) {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let dt = DelimTree::build(&random_tree(&cfg, seed));
        let (_, trace) = trace_run(&ex.program, &dt, Limits::default());
        prop_assert_eq!(diff(&trace, &trace), None);
        let back = Trace::from_json_line(&trace.to_json_line()).unwrap();
        prop_assert_eq!(diff(&trace, &back), None);
    }
}
