//! Integration tests for the `twq-obs` instrumentation seam: collectors
//! must not change run semantics, metrics must describe the run the
//! engine actually performed, and sinks must capture usable traces.

use twq::automata::{
    examples, run_on_tree, run_on_tree_with, Action, Dir, Halt, Limits, TwProgram, TwProgramBuilder,
};
use twq::obs::{Event, HaltKind, Json, JsonlSink, MetricsCollector, RingBufferSink};
use twq::tree::{parse_tree, Label, Tree, Vocab};

const ACCEPTED: &str = "sigma[a=0](delta[a=0](sigma[a=1],sigma[a=1]),sigma[a=2])";
const REJECTED: &str = "sigma[a=0](delta[a=0](sigma[a=1],sigma[a=2]),sigma[a=2])";

/// Instrumentation must be an observer: the `NullCollector` run (the
/// public entry point) and the `MetricsCollector` run of Example 3.2 end
/// the same way with the same step totals, on both verdicts.
#[test]
fn collectors_agree_on_example_32() {
    for (text, expect) in [(ACCEPTED, true), (REJECTED, false)] {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let t = parse_tree(text, &mut vocab).unwrap();
        let plain = run_on_tree(&ex.program, &t, Limits::default());
        let mut mc = MetricsCollector::new();
        let measured = run_on_tree_with(&ex.program, &t, Limits::default(), &mut mc);
        let m = mc.into_metrics();
        assert_eq!(plain.accepted(), expect, "verdict on {text}");
        assert_eq!(plain.halt, measured.halt);
        assert_eq!(plain.steps, measured.steps);
        assert_eq!(m.steps, plain.steps);
        assert_eq!(m.halt, Some(plain.halt.kind()));
        assert_eq!(m.halt.unwrap().accepted(), expect);
    }
}

/// The acceptance-criteria metrics for an Example 3.2 run: per-state step
/// counts that add up, the `atp` nesting the example is known to reach,
/// and the store high-water mark the engine itself reports.
#[test]
fn example_32_metrics_describe_the_run() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    let t = parse_tree(ACCEPTED, &mut vocab).unwrap();
    let mut mc = MetricsCollector::new();
    let report = run_on_tree_with(&ex.program, &t, Limits::default(), &mut mc);
    let m = mc.into_metrics();
    assert_eq!(m.steps_per_state.iter().sum::<u64>(), m.steps);
    assert!(
        m.steps_per_state.iter().filter(|&&s| s > 0).count() >= 3,
        "the example walks through q0, q_sel, and q_leaf at least"
    );
    assert_eq!(
        m.top_states(16).iter().map(|&(_, s)| s).sum::<u64>(),
        m.steps
    );
    // Main chain (depth 0) → atp(φ₁) subcomputations at δ-nodes (depth 1)
    // → atp(φ₂) leaf-collection chains (depth 2).
    assert_eq!(m.max_atp_depth, 2);
    assert_eq!(m.atp_calls, report.atp_calls);
    assert_eq!(m.subcomputations, report.subcomputations);
    assert_eq!(m.max_store_tuples, report.max_store_tuples);
    assert!(
        m.max_store_tuples > 0,
        "φ₂ stores the collected leaf values"
    );
    assert!(m.cycle_inserts > 0);
}

/// A JSONL event sink attached to a real run emits one parseable record
/// per event, with exactly one `step` record per engine transition.
#[test]
fn jsonl_sink_round_trips_a_real_run() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    let t = parse_tree(ACCEPTED, &mut vocab).unwrap();
    let mut sink = JsonlSink::new();
    let mut mc = MetricsCollector::with_sink(&mut sink);
    let report = run_on_tree_with(&ex.program, &t, Limits::default(), &mut mc);
    let steps = mc.metrics.steps;
    drop(mc);
    assert!(report.accepted());
    let mut step_events = 0u64;
    for line in sink.lines() {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e:?}"));
        if j.get("ev").and_then(Json::as_str) == Some("step") {
            step_events += 1;
        }
    }
    assert!(steps > 0);
    assert_eq!(step_events, steps);
}

/// A walker that marches down the spine (hopping right over each `⊳`
/// delimiter) and has no rule for the `△` it lands on under the leaf —
/// a guaranteed mid-tree `Stuck` after several steps.
fn stuck_walker(vocab: &mut Vocab) -> (TwProgram, Tree) {
    let s = vocab.sym("sigma");
    let t = parse_tree("sigma(sigma(sigma))", vocab).unwrap();
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q_f = b.state("qF");
    b.initial(q0).final_state(q_f);
    b.rule_true(Label::DelimRoot, q0, Action::Move(q0, Dir::Down));
    b.rule_true(Label::DelimOpen, q0, Action::Move(q0, Dir::Right));
    b.rule_true(Label::Sym(s), q0, Action::Move(q0, Dir::Down));
    (b.build().unwrap(), t)
}

/// The ring-buffer flight recorder holds the final moments of a `Stuck`
/// run: the last retained event is the failing chain's exit, even after
/// earlier events have been evicted.
#[test]
fn ring_buffer_post_mortem_captures_the_stuck_tail() {
    let mut vocab = Vocab::new();
    let (prog, t) = stuck_walker(&mut vocab);
    let mut ring = RingBufferSink::new(3);
    let mut mc = MetricsCollector::with_sink(&mut ring);
    let report = run_on_tree_with(&prog, &t, Limits::default(), &mut mc);
    assert_eq!(report.halt, Halt::Stuck);
    assert!(report.steps >= 2, "walks the spine before sticking");
    assert_eq!(mc.metrics.halt, Some(HaltKind::Stuck));
    drop(mc);
    assert!(ring.dropped() > 0, "the run outgrew the 3-event window");
    let last = ring.events().last().expect("events retained");
    assert_eq!(
        *last,
        Event::ChainExit {
            depth: 0,
            halt: HaltKind::Stuck
        }
    );
    assert!(ring.post_mortem().contains("< chain: stuck"));
}
