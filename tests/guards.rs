//! Integration tests for `twq-guard` across the evaluators: exact fuel
//! boundaries, depth limits, memory gauges, and chaos runs under
//! deterministic fault injection.
//!
//! The boundary contracts under test (see `twq_guard::res`):
//!
//! * a budget of `n` admits exactly `n` fuel charges, the `n+1`-th trips;
//! * a depth limit of `d` admits nesting depth `d`, entering `d+1` trips;
//! * a memory gauge admits `observed == limit`, `observed > limit` trips.
//!
//! Each test first measures a run with an unlimited (but metering) guard,
//! then replays it at the measured high-water mark (must pass) and one
//! below (must trip with the matching `TripReason`).

use std::time::{Duration, Instant};

use proptest::prelude::*;

use twq::automata::{examples, run_on_tree, run_on_tree_guarded, Limits};
use twq::guard::{DepthKind, FaultPlan, GaugeKind, ResourceGuard, TripReason, TwqError};
use twq::logic::eval_sentence_guarded;
use twq::protocol::{at_most_k_values_program, run_protocol_guarded, Markers};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{DelimTree, Value, Vocab};
use twq::xtm::machine::XtmLimits;
use twq::xtm::{machines, run_alternating_guarded, run_xtm_guarded};

/// The trip behind a guarded failure, with the invariant that guarded
/// evaluators never return any other error on these healthy workloads.
fn reason(e: &TwqError) -> &TripReason {
    &e.guard()
        .expect("healthy workload: only guard trips expected")
        .reason
}

#[test]
fn engine_budget_boundary_is_exact() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    let cfg = TreeGenConfig::example32(&mut vocab, 40, &[1, 2]);
    let t = random_tree(&cfg, 7);

    let mut meter = ResourceGuard::unlimited();
    let baseline = run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut meter)
        .expect("unlimited guard never trips");
    let fuel = meter.fuel_spent();
    assert!(fuel > 0, "the run must charge fuel");
    assert_eq!(baseline.steps, fuel, "one fuel unit per engine step");

    // Exactly enough fuel: passes.
    let mut exact = ResourceGuard::unlimited().with_budget(fuel);
    let replay = run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut exact)
        .expect("exact budget admits the run");
    assert_eq!(replay.accepted(), baseline.accepted());

    // One unit short: trips with the budget reason and a partial report.
    let mut short = ResourceGuard::unlimited().with_budget(fuel - 1);
    let err = run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut short)
        .expect_err("budget fuel-1 must trip");
    assert!(matches!(reason(&err), TripReason::Budget { limit } if *limit == fuel - 1));
    assert!(err.is_limit());
    // The partial covers all admitted fuel; the tripping step may already
    // be counted, so it can read one past the budget but never more.
    let partial = &err.guard().unwrap().partial;
    assert!(partial.fuel_spent >= fuel - 1 && partial.fuel_spent <= fuel);
}

#[test]
fn engine_atp_depth_boundary_is_exact() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    let cfg = TreeGenConfig::example32(&mut vocab, 40, &[1, 2]);
    let t = random_tree(&cfg, 7);

    let mut meter = ResourceGuard::unlimited();
    run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut meter)
        .expect("unlimited guard never trips");
    let depth = meter.depth_high_water(DepthKind::Atp);
    assert!(depth >= 1, "Example 3.2 uses atp look-ahead");

    let mut at = ResourceGuard::unlimited().with_depth_limit(DepthKind::Atp, depth);
    run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut at)
        .expect("the measured depth admits the run");

    let mut below = ResourceGuard::unlimited().with_depth_limit(DepthKind::Atp, depth - 1);
    let err = run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut below)
        .expect_err("depth-1 must trip");
    assert!(matches!(
        reason(&err),
        TripReason::Depth { kind: DepthKind::Atp, limit } if *limit == depth - 1
    ));
}

#[test]
fn fo_quantifier_depth_boundary_is_exact() {
    use twq::logic::fo::build as fb;
    let mut vocab = Vocab::new();
    let t = twq::tree::parse_tree("a(b,c(d))", &mut vocab).unwrap();
    // ∃x ∃y E(x, y): quantifier depth exactly 2.
    let phi = fb::exists(
        fb::var(0),
        fb::exists(fb::var(1), fb::edge(fb::var(0), fb::var(1))),
    );

    let mut at = ResourceGuard::unlimited().with_depth_limit(DepthKind::Quantifier, 2);
    assert_eq!(
        eval_sentence_guarded(&t, &phi, &mut at).expect("depth 2 admits the sentence"),
        true
    );

    let mut below = ResourceGuard::unlimited().with_depth_limit(DepthKind::Quantifier, 1);
    let err = eval_sentence_guarded(&t, &phi, &mut below).expect_err("depth 1 must trip");
    assert!(matches!(
        reason(&err),
        TripReason::Depth {
            kind: DepthKind::Quantifier,
            limit: 1
        }
    ));
}

#[test]
fn xtm_tape_gauge_boundary_is_exact() {
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 24, &[1]);
    let m = machines::leaf_count_even(&cfg.symbols);
    let t = random_tree(&cfg, 5);
    let dt = DelimTree::build(&t);

    let mut meter = ResourceGuard::unlimited();
    let baseline = run_xtm_guarded(&m, &dt, XtmLimits::default(), &mut meter)
        .expect("unlimited guard never trips");
    let cells = meter.gauge_high_water(GaugeKind::TapeCells);
    assert!(cells >= 1, "the counter machine writes its tape");
    assert_eq!(baseline.space, cells, "gauge tracks the space meter");

    let mut at = ResourceGuard::unlimited().with_mem_limit(GaugeKind::TapeCells, cells);
    run_xtm_guarded(&m, &dt, XtmLimits::default(), &mut at)
        .expect("the measured tape size admits the run");

    let mut below = ResourceGuard::unlimited().with_mem_limit(GaugeKind::TapeCells, cells - 1);
    let err = run_xtm_guarded(&m, &dt, XtmLimits::default(), &mut below)
        .expect_err("one cell less must trip");
    assert!(matches!(
        reason(&err),
        TripReason::Mem {
            kind: GaugeKind::TapeCells,
            ..
        }
    ));
}

/// A chaos guard: tight budget, hard deadline, and a seeded fault plan
/// injecting fuel exhaustion, deadline expiry, dropped transitions, and
/// store corruption.
fn chaos_guard(seed: u64) -> ResourceGuard {
    ResourceGuard::unlimited()
        .with_budget(50_000)
        .with_deadline(Duration::from_secs(5))
        .with_faults(FaultPlan::seeded(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under fault injection every evaluator halts promptly and returns
    /// either a report or a typed `TwqError` — never a panic, never a hang.
    #[test]
    fn chaos_evaluators_never_panic_and_halt((seed, nodes) in (0u64..500, 4usize..32)) {
        let start = Instant::now();
        let mut vocab = Vocab::new();

        // Direct engine (tw^{r,l} with atp).
        let ex = examples::example_32(&mut vocab);
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let t = random_tree(&cfg, seed);
        match run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut chaos_guard(seed)) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.guard().is_some(), "typed trip expected, got {e}"),
        }

        // xTM runner (tape + tree walking).
        let m = machines::leaf_count_even(&cfg.symbols);
        let dt = DelimTree::build(&t);
        match run_xtm_guarded(&m, &dt, XtmLimits::default(), &mut chaos_guard(seed ^ 1)) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.guard().is_some(), "typed trip expected, got {e}"),
        }

        // Alternating evaluator (game semantics).
        let alt = machines::alt_all_leaves_even_depth(&cfg.symbols);
        match run_alternating_guarded(&alt, &dt, XtmLimits::default(), &mut chaos_guard(seed ^ 2)) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.guard().is_some(), "typed trip expected, got {e}"),
        }

        prop_assert!(
            start.elapsed() < Duration::from_secs(60),
            "chaos case must halt promptly"
        );
    }

    /// The Lemma 4.5 protocol under fault injection: dialogue accounting
    /// stays sane (distinct ≤ total) on success, trips are typed on
    /// failure.
    #[test]
    fn chaos_protocol_accounting_stays_sane(seed in 0u64..200) {
        let mut vocab = Vocab::new();
        let markers = Markers::new(2, &mut vocab);
        let sym = vocab.sym("s");
        let attr = vocab.attr("a");
        let data: Vec<Value> = (100..104).map(|i| vocab.val_int(i)).collect();
        let prog = at_most_k_values_program(sym, attr, 3);
        let f = vec![data[0], data[(seed % 4) as usize]];
        let g = vec![data[((seed + 1) % 4) as usize]];
        match run_protocol_guarded(
            &prog, &f, &g, &markers, sym, attr, Limits::default(), &mut chaos_guard(seed),
        ) {
            Ok(p) => prop_assert!(p.distinct_messages as u64 <= p.messages),
            Err(e) => prop_assert!(e.guard().is_some(), "typed trip expected, got {e}"),
        }
    }
}

/// Injected faults are deterministic: two runs with the same seed make the
/// same decisions, so reports and errors agree run-to-run.
#[test]
fn fault_injection_is_deterministic() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    let cfg = TreeGenConfig::example32(&mut vocab, 30, &[1, 2]);
    let t = random_tree(&cfg, 3);
    let outcome = |seed: u64| {
        let mut g = ResourceGuard::unlimited().with_faults(FaultPlan::seeded(seed));
        match run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut g) {
            Ok(r) => format!("ok:{:?}:{}", r.halt, r.steps),
            Err(e) => format!("err:{e}"),
        }
    };
    for seed in [1u64, 17, 99] {
        assert_eq!(outcome(seed), outcome(seed), "seed {seed} must replay");
    }
    // And the ungoverned engine agrees with a quiet (all-zero-rate) plan.
    let mut quiet = ResourceGuard::unlimited().with_faults(FaultPlan::quiet(9));
    let guarded = run_on_tree_guarded(&ex.program, &t, Limits::default(), &mut quiet).unwrap();
    let plain = run_on_tree(&ex.program, &t, Limits::default());
    assert_eq!(guarded.accepted(), plain.accepted());
    assert_eq!(guarded.steps, plain.steps);
}
