//! Edge-case and failure-injection tests: resource limits, degenerate
//! inputs, and error paths that the per-module suites don't reach.

use twq::automata::twir::{Cond, Instr, Source, WalkerBuilder};
use twq::automata::{examples, run_on_tree, Action, Dir, Halt, Limits, TwProgramBuilder};
use twq::logic::exists::selectors;
use twq::logic::store::sbuild::*;
use twq::tree::{parse_tree, Label, Vocab};

/// `atp` self-recursion exhausts the nesting budget and reports it.
#[test]
fn atp_depth_limit_reported() {
    let mut vocab = Vocab::new();
    let t = parse_tree("a", &mut vocab).unwrap();
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let qf = b.state("qF");
    b.initial(q0).final_state(qf);
    let r = b.unary_register();
    // ▽ starts a subcomputation at itself in q0: infinite nesting.
    b.rule_true(
        Label::DelimRoot,
        q0,
        Action::Atp(qf, selectors::self_node(), q0, r),
    );
    let p = b.build().unwrap();
    let report = run_on_tree(
        &p,
        &t,
        Limits {
            max_steps: 10_000,
            max_atp_depth: 8,
            cycle_check_interval: 1,
        },
    );
    assert_eq!(report.halt, Halt::AtpDepthLimit);
}

/// Overlapping store guards that are satisfied simultaneously are a
/// runtime determinism violation, exactly per Definition 3.1's proviso.
#[test]
fn overlapping_guards_fault_at_runtime() {
    let mut vocab = Vocab::new();
    let one = vocab.val_int(1);
    let t = parse_tree("a", &mut vocab).unwrap();
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let qf = b.state("qF");
    b.initial(q0).final_state(qf);
    let r = b.register(1, twq::logic::Relation::singleton(one));
    // Both guards hold for X₁ = {1}.
    b.rule(
        Label::DelimRoot,
        q0,
        rel(r, [cst(one)]),
        Action::Move(qf, Dir::Stay),
    );
    b.rule(
        Label::DelimRoot,
        q0,
        SFormulaExists(r),
        Action::Move(qf, Dir::Down),
    );
    let p = b.build().unwrap();
    let report = run_on_tree(&p, &t, Limits::default());
    assert_eq!(report.halt, Halt::Nondeterministic);
}

#[allow(non_snake_case)]
fn SFormulaExists(r: twq::logic::RegId) -> twq::logic::SFormula {
    twq::logic::SFormula::Exists(twq::logic::Var(0), Box::new(rel(r, [v(0)])))
}

/// Sparse cycle sampling still catches cycles, just later.
#[test]
fn sparse_cycle_sampling_catches_cycles() {
    let mut vocab = Vocab::new();
    let t = parse_tree("a", &mut vocab).unwrap();
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let qf = b.state("qF");
    b.initial(q0).final_state(qf);
    b.rule_true(Label::DelimRoot, q0, Action::Move(q0, Dir::Down));
    b.rule_true(Label::DelimOpen, q0, Action::Move(q0, Dir::Up));
    let p = b.build().unwrap();
    let report = run_on_tree(
        &p,
        &t,
        Limits {
            max_steps: 1_000_000,
            max_atp_depth: 4,
            cycle_check_interval: 64,
        },
    );
    assert_eq!(report.halt, Halt::Cycle);
    // With detection off, the step budget is the only stop.
    let report_off = run_on_tree(
        &p,
        &t,
        Limits {
            max_steps: 5_000,
            max_atp_depth: 4,
            cycle_check_interval: 0,
        },
    );
    assert_eq!(report_off.halt, Halt::StepLimit);
}

/// Mixed label/store conditions in the walker IR partial-evaluate
/// correctly through `All` and `Any`.
#[test]
fn twir_mixed_conditions() {
    let mut vocab = Vocab::new();
    let t = parse_tree("s[a=1](s[a=2])", &mut vocab).unwrap();
    let syms = vec![vocab.sym_opt("s").unwrap()];
    let a = vocab.attr_opt("a").unwrap();
    let one = vocab.val_int_opt(1).unwrap();
    let mut w = WalkerBuilder::new(&syms);
    let r = w.register(None);
    let s_label = Label::Sym(syms[0]);
    let body = vec![
        Instr::Move(Dir::Down),  // ⊳
        Instr::Move(Dir::Right), // root
        Instr::Set(r, Source::Attr(a)),
        // All[label is s, register = 1] → accept; Any[...] fallback → fail.
        Instr::If(
            Cond::All(vec![
                Cond::LabelIs(s_label),
                Cond::RegEq(r, Source::Const(one)),
            ]),
            vec![Instr::Accept],
            vec![Instr::If(
                Cond::Any(vec![Cond::LabelIs(Label::DelimLeaf), Cond::RegEmpty(r)]),
                vec![Instr::Fail],
                vec![Instr::Fail],
            )],
        ),
    ];
    let p = w.compile(&body).unwrap();
    assert!(run_on_tree(&p, &t, Limits::default()).accepted());
}

/// Example 3.2 on a single-node tree (the degenerate boundary).
#[test]
fn example_32_single_node() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    // A lone σ: no δ at all → accept. A lone δ: no leaf-descendants → accept.
    for src in ["sigma[a=1]", "delta[a=1]"] {
        let t = parse_tree(src, &mut vocab).unwrap();
        let report = run_on_tree(&ex.program, &t, Limits::default());
        assert!(report.accepted(), "{src}: {:?}", report.halt);
    }
}

/// Deep chains neither overflow the engine nor the delimiter machinery.
#[test]
fn deep_chain_traversal() {
    let mut vocab = Vocab::new();
    let s = vocab.sym("sigma");
    let a = vocab.attr("a");
    let one = vocab.val_int(1);
    let t = twq::tree::generate::monadic_tree(s, a, &vec![one; 400]);
    let p = examples::traversal_program(&[s]);
    let report = run_on_tree(&p, &t, Limits::default());
    assert!(report.accepted());
    assert!(report.steps as usize >= 2 * t.len());
}

/// The graph evaluator respects its step budget.
#[test]
fn graph_evaluator_step_limit() {
    let mut vocab = Vocab::new();
    let ex = examples::example_32(&mut vocab);
    let cfg = twq::tree::generate::TreeGenConfig::example32(&mut vocab, 60, &[1]);
    let t = twq::tree::generate::random_tree(&cfg, 0);
    let dt = twq::tree::DelimTree::build(&t);
    let report = twq::automata::run_graph(
        &ex.program,
        &dt,
        Limits {
            max_steps: 5,
            max_atp_depth: 8,
            cycle_check_interval: 1,
        },
    );
    assert!(report.halt.is_limit(), "{:?}", report.halt);
}
