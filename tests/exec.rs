//! Serial ≡ parallel equivalence for the execution layer.
//!
//! The exec crate's contract is that fanning work across a pool changes
//! wall-clock only: batch runs, batch selections, and memoized/parallel
//! FO evaluation must produce results — and, under fuel exhaustion,
//! errors — identical to the plain serial evaluators, for every worker
//! count. Each property below pins one entry point against its serial
//! reference on randomized programs, formulas, and trees.

use proptest::prelude::*;

use twq::automata::{
    examples, run_batch, run_batch_guarded, run_on_tree, run_on_tree_guarded, Limits,
};
use twq::exec::Pool;
use twq::guard::ResourceGuard;
use twq::logic::eval::{select, select_guarded};
use twq::logic::fo::build::exists;
use twq::logic::{eval_sentence, eval_sentence_memo, eval_sentence_par, ExistsFormula};
use twq::logic::{select_batch, select_batch_guarded};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{NodeId, Tree, Vocab};
use twq::xpath::{compile, random_xpath, XPathGenConfig};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// A batch of random Example 3.2 documents sharing one vocabulary.
fn tree_batch(vocab: &mut Vocab, count: usize, nodes: usize, seed: u64) -> Vec<Tree> {
    let cfg = TreeGenConfig::example32(vocab, nodes, &[1, 2]);
    (0..count)
        .map(|i| {
            random_tree(
                &TreeGenConfig {
                    nodes: 1 + (nodes + i) % nodes.max(2),
                    ..cfg.clone()
                },
                seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

/// A random XPath-compiled binary formula, small enough for the naive
/// evaluator.
fn small_formula(vocab: &mut Vocab, path_seed: u64) -> Option<ExistsFormula> {
    let cfg = TreeGenConfig::example32(vocab, 4, &[1]);
    let a = vocab.attr_opt("a").unwrap();
    let one = vocab.val_int_opt(1).unwrap();
    let xcfg = XPathGenConfig {
        symbols: cfg.symbols,
        attrs: vec![a],
        values: vec![one],
        max_depth: 2,
    };
    let phi = compile(&random_xpath(&xcfg, path_seed));
    (phi.quantified().len() <= 4).then_some(phi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `run_batch` returns exactly what a serial `run_on_tree` loop
    /// returns, in input order, for every worker count.
    #[test]
    fn run_batch_equals_serial(
        seed in 0u64..10_000,
        count in 1usize..6,
        nodes in 1usize..20,
    ) {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let trees = tree_batch(&mut vocab, count, nodes, seed);
        let serial: Vec<_> = trees
            .iter()
            .map(|t| run_on_tree(&ex.program, t, Limits::default()))
            .collect();
        for workers in WORKER_COUNTS {
            let pool = Pool::new(workers);
            let batch = run_batch(&ex.program, &trees, Limits::default(), &pool);
            prop_assert_eq!(&batch, &serial, "workers={}", workers);
        }
    }

    /// Guarded batch runs reproduce the serial verdicts *and* the serial
    /// guard errors — a fuel budget that exhausts mid-batch trips the
    /// same items with the same reasons regardless of worker count.
    #[test]
    fn run_batch_guarded_trips_like_serial(
        seed in 0u64..10_000,
        count in 1usize..6,
        nodes in 1usize..20,
        fuel in 0u64..60,
    ) {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let trees = tree_batch(&mut vocab, count, nodes, seed);
        let make = || ResourceGuard::unlimited().with_budget(fuel);
        let serial: Vec<_> = trees
            .iter()
            .map(|t| {
                let mut g = make();
                run_on_tree_guarded(&ex.program, t, Limits::default(), &mut g)
            })
            .collect();
        for workers in WORKER_COUNTS {
            let pool = Pool::new(workers);
            let batch = run_batch_guarded(&ex.program, &trees, Limits::default(), &pool, make);
            prop_assert_eq!(batch.len(), serial.len());
            for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
                match (b, s) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "workers={} item {}", workers, i),
                    (Err(x), Err(y)) => prop_assert_eq!(
                        &x.guard().unwrap().reason,
                        &y.guard().unwrap().reason,
                        "workers={} item {}", workers, i
                    ),
                    _ => prop_assert!(
                        false,
                        "workers={} item {}: Ok/Err disagree with serial", workers, i
                    ),
                }
            }
        }
    }

    /// `select_batch` (memoized, pooled) agrees with a serial loop of the
    /// plain `select` over every context node.
    #[test]
    fn select_batch_equals_serial_select(
        tree_seed in 0u64..10_000,
        path_seed in 0u64..10_000,
        nodes in 2usize..10,
    ) {
        let mut vocab = Vocab::new();
        let Some(phi) = small_formula(&mut vocab, path_seed) else {
            return Ok(());
        };
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let t = random_tree(&cfg, tree_seed);
        let formula = phi.to_formula();
        let us: Vec<NodeId> = t.node_ids().collect();
        let serial: Vec<_> = us
            .iter()
            .map(|&u| select(&t, &formula, phi.x(), u, phi.y()).unwrap())
            .collect();
        for workers in WORKER_COUNTS {
            let pool = Pool::new(workers);
            let batch = select_batch(&t, &formula, phi.x(), &us, phi.y(), &pool).unwrap();
            prop_assert_eq!(&batch, &serial, "workers={}", workers);
        }
    }

    /// Guarded batch selection reproduces serial verdicts and serial trip
    /// reasons under a fuel budget that exhausts on some contexts.
    #[test]
    fn select_batch_guarded_trips_like_serial(
        tree_seed in 0u64..10_000,
        path_seed in 0u64..10_000,
        nodes in 2usize..10,
        fuel in 0u64..80,
    ) {
        let mut vocab = Vocab::new();
        let Some(phi) = small_formula(&mut vocab, path_seed) else {
            return Ok(());
        };
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let t = random_tree(&cfg, tree_seed);
        let formula = phi.to_formula();
        let us: Vec<NodeId> = t.node_ids().collect();
        let make = || ResourceGuard::unlimited().with_budget(fuel);
        let serial: Vec<_> = us
            .iter()
            .map(|&u| {
                let mut g = make();
                select_guarded(&t, &formula, phi.x(), u, phi.y(), &mut g)
            })
            .collect();
        for workers in WORKER_COUNTS {
            let pool = Pool::new(workers);
            let batch =
                select_batch_guarded(&t, &formula, phi.x(), &us, phi.y(), &pool, make);
            prop_assert_eq!(batch.len(), serial.len());
            for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
                match (b, s) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "workers={} node {}", workers, i),
                    (Err(x), Err(y)) => prop_assert_eq!(
                        &x.guard().unwrap().reason,
                        &y.guard().unwrap().reason,
                        "workers={} node {}", workers, i
                    ),
                    _ => prop_assert!(
                        false,
                        "workers={} node {}: Ok/Err disagree with serial", workers, i
                    ),
                }
            }
        }
    }

    /// Memoized and pool-parallel sentence evaluation agree with the
    /// naive evaluator on existentially closed random formulas.
    #[test]
    fn memo_and_par_sentences_equal_naive(
        tree_seed in 0u64..10_000,
        path_seed in 0u64..10_000,
        nodes in 2usize..10,
    ) {
        let mut vocab = Vocab::new();
        let Some(phi) = small_formula(&mut vocab, path_seed) else {
            return Ok(());
        };
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let t = random_tree(&cfg, tree_seed);
        let sentence = exists(phi.x(), exists(phi.y(), phi.to_formula()));
        let naive = eval_sentence(&t, &sentence).unwrap();
        prop_assert_eq!(eval_sentence_memo(&t, &sentence).unwrap(), naive);
        for workers in WORKER_COUNTS {
            let pool = Pool::new(workers);
            prop_assert_eq!(
                eval_sentence_par(&t, &sentence, &pool).unwrap(),
                naive,
                "workers={}", workers
            );
        }
    }
}
