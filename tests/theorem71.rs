//! Integration test for the Theorem 7.1 ladder: one logspace xTM run
//! (1) directly, (2) as a compiled `TW` pebble walker, (3) as a compiled
//! `tw^r` store program — all must accept the same trees; and the
//! resource meters must land in the theorem's regimes (no tape cells for
//! the walker, linear store for `tw^r`, logarithmic tape for the xTM).

use twq::automata::{run, run_graph, Limits, TwClass};
use twq::sim::{compile_logspace, compile_pspace};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{DelimTree, Vocab};
use twq::xtm::machine::{run_xtm, XtmLimits};
use twq::xtm::machines;

#[test]
fn the_full_ladder_agrees() {
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 7, &[1]);
    let id = vocab.attr("id");
    let machine = machines::leaf_count_even(&cfg.symbols);
    let pebbles = compile_logspace(&machine, &cfg.symbols, id, &mut vocab).unwrap();
    let store = compile_pspace(&machine, &cfg.symbols, id, &mut vocab).unwrap();
    assert_eq!(pebbles.program.classify(), TwClass::Tw);
    assert_eq!(store.program.classify(), TwClass::TwR);

    let (mut acc, mut rej) = (0, 0);
    for seed in 0..6 {
        let t = random_tree(&cfg, seed);
        let mut dt = DelimTree::build(&t);
        dt.assign_unique_ids(id, &mut vocab);

        let xr = run_xtm(&machine, &dt, XtmLimits::default());
        let pr = run(&pebbles.program, &dt, Limits::long_walk());
        let sr = run(&store.program, &dt, Limits::long_walk());

        assert!(!pr.halt.is_limit() && !sr.halt.is_limit());
        assert_eq!(xr.accepted(), pr.accepted(), "seed {seed} (Thm 7.1(1))");
        assert_eq!(xr.accepted(), sr.accepted(), "seed {seed} (Thm 7.1(3))");
        assert_eq!(xr.accepted(), machines::oracle_leaf_count_even(&t));

        // Resource regimes: xTM space logarithmic, pebble walker stores
        // only single IDs (max one tuple per register), tw^r store linear.
        let n = dt.tree().len();
        assert!(
            xr.space <= (n.ilog2() as usize) + 3,
            "xTM space {}",
            xr.space
        );
        assert!(pr.max_store_tuples <= pebbles.program.reg_count());
        assert!(sr.max_store_tuples <= 2 * n + 16);

        if xr.accepted() {
            acc += 1;
        } else {
            rej += 1;
        }
    }
    assert!(acc > 0 && rej > 0, "workload must be mixed: {acc}/{rej}");
}

#[test]
fn graph_evaluator_handles_compiled_walkers() {
    // The memoized evaluator (Theorem 7.1(2)'s upper-bound machinery)
    // agrees with the direct engine on a compiled pebble walker — a
    // deterministic chain without look-ahead, so distinct configurations
    // equal steps+1 at most.
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 5, &[1]);
    let id = vocab.attr("id");
    let machine = machines::leftmost_depth_even(&cfg.symbols);
    let pebbles = compile_logspace(&machine, &cfg.symbols, id, &mut vocab).unwrap();
    let t = random_tree(&cfg, 2);
    let mut dt = DelimTree::build(&t);
    dt.assign_unique_ids(id, &mut vocab);
    let direct = run(&pebbles.program, &dt, Limits::long_walk());
    let graph = run_graph(&pebbles.program, &dt, Limits::long_walk());
    assert_eq!(direct.accepted(), graph.accepted());
    assert!(graph.distinct_configs as u64 <= graph.steps + 1);
}

#[test]
fn alternation_is_the_bridge_to_ptime() {
    // Theorem 7.1(2) rests on ALOGSPACE = PTIME: the alternating machine
    // model must agree with a deterministic evaluation of the same
    // property (here: all leaves at even depth).
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 12, &[1]);
    let m = machines::alt_all_leaves_even_depth(&cfg.symbols);
    for seed in 0..12 {
        let t = random_tree(&cfg, seed);
        let dt = DelimTree::build(&t);
        let alt = twq::xtm::run_alternating(&m, &dt, XtmLimits::default());
        assert!(!alt.truncated);
        assert_eq!(
            alt.accepted,
            machines::oracle_all_leaves_even_depth(&t),
            "seed {seed}"
        );
    }
}

#[test]
fn proposition_72_round_trip() {
    // A = ∅: fold the store into states, run both on shared inputs.
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 18, &[]);
    let sigma = twq::tree::Label::Sym(cfg.symbols[0]);
    let delta = twq::tree::Label::Sym(cfg.symbols[1]);
    let src = twq::sim::delta_count_mod3(sigma, delta, &mut vocab);
    let folded = twq::sim::eliminate_store(&src, 10_000).unwrap();
    assert_eq!(folded.reg_count(), 0);
    for seed in 0..15 {
        let t = random_tree(&cfg, seed);
        let a = twq::automata::run_on_tree(&src, &t, Limits::default());
        let b = twq::automata::run_on_tree(&folded, &t, Limits::default());
        assert_eq!(a.accepted(), b.accepted(), "seed {seed}");
        assert_eq!(
            a.accepted(),
            twq::sim::noattr::oracle_delta_count_mod3(&t, delta)
        );
    }
}
