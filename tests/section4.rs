//! Integration test for the Section 4 pipeline: hypersets → encodings →
//! `L^m` membership (decoder and Lemma 4.2's FO sentence) → the Lemma 4.5
//! protocol → the Lemma 4.6 pigeonhole.

use twq::automata::{run_on_tree, Limits};
use twq::logic::eval_sentence;
use twq::protocol::{
    at_most_k_values_program, encode, encode_shuffled, find_dialogue_collision, in_lm, lm_sentence,
    oracle_at_most_k_values, random_hyperset, run_protocol, split_string_tree, HyperGenConfig,
    Markers,
};
use twq::tree::{Value, Vocab};

struct Setup {
    vocab: Vocab,
    markers: Markers,
    data: Vec<Value>,
    sym: twq::tree::SymId,
    attr: twq::tree::AttrId,
}

fn setup() -> Setup {
    let mut vocab = Vocab::new();
    let markers = Markers::new(2, &mut vocab);
    let data: Vec<Value> = (100..105).map(|i| vocab.val_int(i)).collect();
    let sym = vocab.sym("s");
    let attr = vocab.attr("a");
    Setup {
        vocab,
        markers,
        data,
        sym,
        attr,
    }
}

#[test]
fn decoder_sentence_and_protocol_form_one_pipeline() {
    let mut s = setup();
    let phi = lm_sentence(2, s.attr, &s.markers);
    let prog = at_most_k_values_program(s.sym, s.attr, 4);
    let cfg = HyperGenConfig {
        level: 2,
        data: s.data.clone(),
        max_members: 2,
    };
    for seed in 0..6 {
        let h = random_hyperset(&cfg, seed);
        let f = encode(&h, &s.markers);
        let g = encode_shuffled(&h, &s.markers, seed + 99);

        // Equal hypersets: in L² by decoder and by the FO sentence.
        let mut w = f.clone();
        w.push(s.markers.hash());
        w.extend(g.iter().copied());
        assert!(in_lm(2, &w, &s.markers), "seed {seed}");
        let tree = split_string_tree(&f, &g, &s.markers, s.sym, s.attr);
        assert!(eval_sentence(&tree, &phi).unwrap(), "seed {seed}");

        // Protocol vs direct execution of a tw^{r,l} program on f#g.
        let report = run_protocol(&prog, &f, &g, &s.markers, s.sym, s.attr, Limits::default());
        let direct = run_on_tree(&prog, &tree, Limits::default());
        assert_eq!(report.accepted(), direct.accepted(), "seed {seed}");
        assert_eq!(
            report.accepted(),
            oracle_at_most_k_values(&f, &g, s.markers.hash(), 4),
        );
    }
    let _ = &mut s.vocab;
}

#[test]
fn pigeonhole_collisions_force_equal_verdicts() {
    // Lemma 4.6's argument, concretely: if two different inputs yield the
    // same dialogue, the protocol cannot distinguish them — collect
    // dialogues for f#f over many f and exhibit a collision for a weak
    // program (one whose store ignores most of the input).
    let s = setup();
    // at-most-1-distinct-value over strings that always contain ≥ 2
    // distinct values (markers + data) rejects everything the same way:
    // maximal collision pressure.
    let prog = at_most_k_values_program(s.sym, s.attr, 1);
    let cfg = HyperGenConfig {
        level: 1,
        data: s.data.clone(),
        max_members: 2,
    };
    let mut runs = Vec::new();
    for seed in 0..10 {
        let h = random_hyperset(&cfg, seed);
        let f = encode(&h, &s.markers);
        let report = run_protocol(&prog, &f, &f, &s.markers, s.sym, s.attr, Limits::default());
        runs.push((seed, report.dialogue));
    }
    let collision = find_dialogue_collision(runs.clone());
    let Some((s1, s2)) = collision else {
        panic!("a weak program must produce dialogue collisions");
    };
    // The colliding seeds give different hypersets…
    let h1 = random_hyperset(&cfg, s1);
    let h2 = random_hyperset(&cfg, s2);
    // …but if they differ, the crossed input f₁#f₂ gets the same verdict
    // as the diagonal ones — the protocol's blindness.
    if h1 != h2 {
        let f1 = encode(&h1, &s.markers);
        let f2 = encode(&h2, &s.markers);
        let diag = run_protocol(
            &prog,
            &f1,
            &f1,
            &s.markers,
            s.sym,
            s.attr,
            Limits::default(),
        );
        let cross = run_protocol(
            &prog,
            &f1,
            &f2,
            &s.markers,
            s.sym,
            s.attr,
            Limits::default(),
        );
        assert_eq!(diag.accepted(), cross.accepted());
    }
}

#[test]
fn distinct_messages_stay_small_while_inputs_grow() {
    // The Lemma 4.5 shape: the dialogue alphabet used by a fixed program
    // does not grow with the input (it depends on |D| and the program, not
    // the string length).
    let mut s = setup();
    let prog = at_most_k_values_program(s.sym, s.attr, 3);
    let mut maxima = Vec::new();
    for len in [2usize, 4, 8, 16] {
        // Strings over a FIXED 2-value alphabet growing in length.
        let f: Vec<Value> = (0..len).map(|i| s.data[i % 2]).collect();
        let g: Vec<Value> = (0..len).map(|i| s.data[(i + 1) % 2]).collect();
        let report = run_protocol(&prog, &f, &g, &s.markers, s.sym, s.attr, Limits::default());
        maxima.push(report.distinct_messages);
    }
    let first = maxima[0];
    assert!(
        maxima.iter().all(|&m| m <= first + 2),
        "distinct messages should not grow with string length: {maxima:?}"
    );
    let _ = &mut s.vocab;
}
