//! Cross-crate checks tying the walking paradigm's formalisms together:
//! caterpillars vs. XPath vs. FO, XPath-compiled tree-walking acceptors,
//! and the parsed-FO front end against built formulas.

use twq::automata::caterpillar::{cat, select as cat_select};
use twq::automata::{run_on_tree, Limits};
use twq::logic::{eval_sentence, parse_fo};
use twq::tree::generate::{random_tree, TreeGenConfig};
use twq::tree::{parse_xml, to_xml, Vocab};
use twq::xpath::{eval_from, parse_xpath, xpath_to_program, SelectionTest};

/// The descendants relation agrees across all three formalisms:
/// caterpillar `(down right*)+`, XPath `//*`-from-context, and FO `≺`.
#[test]
fn three_views_of_descendants() {
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 25, &[]);
    let path = parse_xpath("//*", &mut vocab).unwrap();
    let e = cat::descendants();
    for seed in 0..5 {
        let t = random_tree(&cfg, seed);
        for u in t.node_ids() {
            let via_cat = cat_select(&t, &e, u);
            let via_xpath: Vec<_> = eval_from(&t, &path, u).into_iter().collect();
            let via_fo: Vec<_> = t
                .node_ids()
                .filter(|&v| t.is_strict_ancestor(u, v))
                .collect();
            assert_eq!(via_cat, via_fo, "caterpillar vs FO, seed {seed}");
            assert_eq!(via_xpath, via_fo, "xpath vs FO, seed {seed}");
        }
    }
}

/// An XML document round-trips through the tree store and an
/// XPath-compiled tree-walking acceptor answers a query on it — the full
/// paper pipeline: XML → attributed tree → XPath → FO(∃*) → tw^{r,l}.
#[test]
fn xml_to_walking_acceptor_pipeline() {
    let mut vocab = Vocab::new();
    let doc = parse_xml(
        r#"<lib><book y="1999"><author id="knuth"/></book><book y="2001"/></lib>"#,
        &mut vocab,
    )
    .unwrap();
    // Round trip.
    let xml = to_xml(&doc, &vocab);
    let doc2 = parse_xml(&xml, &mut vocab).unwrap();
    assert_eq!(doc2.len(), doc.len());

    // The acceptor needs unique IDs for the NonEmpty witness.
    let mut doc = doc;
    let uid = vocab.attr("uid");
    doc.assign_unique_ids(uid, &mut vocab);

    let q_hit = parse_xpath("lib/book/author", &mut vocab).unwrap();
    let q_miss = parse_xpath("lib/author", &mut vocab).unwrap();
    let syms: Vec<_> = vocab.syms().collect();
    let hit = xpath_to_program(&q_hit, &syms, uid, SelectionTest::NonEmpty);
    let miss = xpath_to_program(&q_miss, &syms, uid, SelectionTest::NonEmpty);
    assert!(run_on_tree(&hit, &doc, Limits::default()).accepted());
    assert!(!run_on_tree(&miss, &doc, Limits::default()).accepted());
}

/// Parsed FO sentences agree with the same properties checked natively.
#[test]
fn parsed_fo_agrees_with_native_checks() {
    let mut vocab = Vocab::new();
    let cfg = TreeGenConfig::example32(&mut vocab, 18, &[1, 2]);
    // "some δ node has a σ child" in the parser syntax.
    let p = parse_fo(
        "E x. E y. lab(delta, x) & E(x, y) & lab(sigma, y)",
        &mut vocab,
    )
    .unwrap();
    let delta = vocab.sym_opt("delta").unwrap();
    let sigma = vocab.sym_opt("sigma").unwrap();
    for seed in 0..10 {
        let t = random_tree(&cfg, seed);
        let native = t.node_ids().any(|u| {
            t.label(u) == twq::tree::Label::Sym(delta)
                && t.children(u)
                    .any(|c| t.label(c) == twq::tree::Label::Sym(sigma))
        });
        assert_eq!(
            eval_sentence(&t, &p.formula).unwrap(),
            native,
            "seed {seed}"
        );
    }
}

/// MSO strictly extends FO on an even-counting property: the MSO sentence
/// decides parity where the naive FO analogue (no such sentence exists —
/// we check the MSO one against ground truth).
#[test]
fn mso_counts_where_fo_cannot() {
    use twq::logic::mso::{eval_mso, even_sigma_nodes_on_chains};
    use twq::tree::generate::monadic_tree;
    let mut vocab = Vocab::new();
    let s = vocab.sym("s");
    let a = vocab.attr("a");
    let one = vocab.val_int(1);
    let phi = even_sigma_nodes_on_chains(s);
    for len in 1..=9usize {
        let t = monadic_tree(s, a, &vec![one; len]);
        assert_eq!(eval_mso(&t, &phi).unwrap(), len % 2 == 0, "len {len}");
    }
}
