//! Property-based tests over the whole workspace: structural invariants,
//! round trips, and evaluator cross-validation on randomized inputs.

use proptest::prelude::*;

use twq::logic::eval::select as naive_select;
use twq::protocol::{
    decode as hs_decode, encode, encode_shuffled, random_hyperset, HyperGenConfig, Markers,
};
use twq::tree::generate::{chain_tree, random_tree, TreeGenConfig};
use twq::tree::order::{doc_index, doc_predecessor, doc_successor, node_at_doc_index};
use twq::tree::{parse_tree, tree_to_string, DelimTree, NodeId, NodeSet, Vocab};
use twq::xpath::{compile, eval_from, random_xpath, XPathGenConfig};

fn arb_tree_params() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..1_000, 1usize..40, 1usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// delim(t) followed by strip is the identity on shape, labels, and
    /// attribute values.
    #[test]
    fn delim_strip_round_trip((seed, nodes, width) in arb_tree_params()) {
        let mut vocab = Vocab::new();
        let mut cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2, 3]);
        cfg.max_children = width;
        let t = random_tree(&cfg, seed);
        let dt = DelimTree::build(&t);
        dt.tree().check_consistency().unwrap();
        let back = dt.strip();
        prop_assert_eq!(tree_to_string(&back, &vocab), tree_to_string(&t, &vocab));
    }

    /// The term syntax round-trips: display ∘ parse ∘ display = display.
    #[test]
    fn term_syntax_round_trip((seed, nodes, width) in arb_tree_params()) {
        let mut vocab = Vocab::new();
        let mut cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        cfg.max_children = width;
        let t = random_tree(&cfg, seed);
        let shown = tree_to_string(&t, &vocab);
        let parsed = parse_tree(&shown, &mut vocab).unwrap();
        prop_assert_eq!(tree_to_string(&parsed, &vocab), shown);
    }

    /// Document order: successor and predecessor invert each other, and
    /// the index round-trips.
    #[test]
    fn doc_order_invariants((seed, nodes, width) in arb_tree_params()) {
        let mut vocab = Vocab::new();
        let mut cfg = TreeGenConfig::example32(&mut vocab, nodes, &[]);
        cfg.max_children = width;
        let t = random_tree(&cfg, seed);
        let idx = doc_index(&t);
        for u in t.node_ids() {
            prop_assert_eq!(node_at_doc_index(&t, idx[u.0 as usize]), Some(u));
            if let Some(s) = doc_successor(&t, u) {
                prop_assert_eq!(doc_predecessor(&t, s), Some(u));
                prop_assert_eq!(idx[s.0 as usize], idx[u.0 as usize] + 1);
            }
        }
    }

    /// XPath: the compiled FO(∃*) formula selects exactly what the
    /// reference evaluator selects, from every context node.
    #[test]
    fn xpath_compilation_is_sound_and_complete(
        tree_seed in 0u64..500,
        path_seed in 0u64..500,
        nodes in 2usize..25,
    ) {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let t = random_tree(&cfg, tree_seed);
        let a = vocab.attr_opt("a").unwrap();
        let one = vocab.val_int_opt(1).unwrap();
        let xcfg = XPathGenConfig {
            symbols: cfg.symbols.clone(),
            attrs: vec![a],
            values: vec![one],
            max_depth: 4,
        };
        let path = random_xpath(&xcfg, path_seed);
        let phi = compile(&path);
        for u in t.node_ids() {
            let direct = eval_from(&t, &path, u);
            let logical = phi.select(&t, u);
            prop_assert_eq!(&direct, &logical, "node {}", u);
        }
    }

    /// The DNF-pruning FO(∃*) evaluator agrees with the naive one. The
    /// naive evaluator is `O(n^k)` in the quantifier count, so formulas
    /// with many existentials are skipped — pruning-vs-naive at scale is
    /// the `ablation_select` bench's job.
    #[test]
    fn exists_evaluators_agree(
        tree_seed in 0u64..300,
        path_seed in 0u64..300,
        nodes in 2usize..8,
    ) {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1]);
        let t = random_tree(&cfg, tree_seed);
        let xcfg = XPathGenConfig {
            symbols: cfg.symbols.clone(),
            attrs: vec![],
            values: vec![],
            max_depth: 2,
        };
        let phi = compile(&random_xpath(&xcfg, path_seed));
        prop_assume!(phi.quantified().len() <= 5);
        let formula = phi.to_formula();
        for u in t.node_ids() {
            let fast = phi.select(&t, u);
            let naive = naive_select(&t, &formula, phi.x(), u, phi.y()).unwrap();
            prop_assert_eq!(&fast, &naive, "node {}", u);
        }
    }

    /// Hyperset encodings decode back to the hyperset they denote, even
    /// when shuffled and with duplicates.
    #[test]
    fn hyperset_codec_round_trip(
        seed in 0u64..1_000,
        shuffle in 0u64..50,
        level in 1usize..4,
    ) {
        let mut vocab = Vocab::new();
        let markers = Markers::new(3, &mut vocab);
        let data: Vec<_> = (100..104).map(|i| vocab.val_int(i)).collect();
        let cfg = HyperGenConfig { level, data, max_members: 3 };
        let h = random_hyperset(&cfg, seed);
        // The canonical and shuffled encodings denote the same hyperset.
        // (The declared level may exceed the realized one for degenerate
        // empty nestings; decode at the realized level.)
        let lv = h.level();
        let canon = encode(&h, &markers);
        let decoded = hs_decode(lv, &canon, &markers);
        prop_assert_eq!(decoded.as_ref(), Some(&h));
        let shuffled = encode_shuffled(&h, &markers, shuffle);
        prop_assert_eq!(hs_decode(lv, &shuffled, &markers), Some(h));
    }

    /// The descendants caterpillar equals the FO `≺` relation.
    #[test]
    fn caterpillar_descendants_equals_desc((seed, nodes, width) in arb_tree_params()) {
        use twq::automata::caterpillar::{cat, select};
        let mut vocab = Vocab::new();
        let mut cfg = TreeGenConfig::example32(&mut vocab, nodes.min(20), &[]);
        cfg.max_children = width;
        let t = random_tree(&cfg, seed);
        let e = cat::descendants();
        for u in t.node_ids() {
            let selected = select(&t, &e, u);
            let expected: Vec<_> = t
                .node_ids()
                .filter(|&v| t.is_strict_ancestor(u, v))
                .collect();
            prop_assert_eq!(&selected, &expected, "from {}", u);
        }
    }

    /// The 2DFA → TW embedding is exact on random words.
    #[test]
    fn twodfa_embedding_is_exact(seed in 0u64..500, len in 1usize..14) {
        use rand::{Rng, SeedableRng};
        use twq::automata::twodfa::{even_as_and_bs, word_tree, DHalt};
        let mut vocab = Vocab::new();
        let a = vocab.sym("a");
        let b = vocab.sym("b");
        let m = even_as_and_bs(a, b);
        let walker = m.to_walker(&[a, b]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let word: Vec<_> = (0..len)
            .map(|_| if rng.gen_bool(0.5) { a } else { b })
            .collect();
        let direct = m.run(&word) == DHalt::Accept;
        let t = word_tree(&word);
        let walked =
            twq::automata::run_on_tree(&walker, &t, twq::automata::Limits::default());
        prop_assert_eq!(walked.accepted(), direct);
    }

    /// Tree statistics are internally consistent.
    #[test]
    fn stats_invariants((seed, nodes, width) in arb_tree_params()) {
        use twq::tree::stats::TreeStats;
        let mut vocab = Vocab::new();
        let mut cfg = TreeGenConfig::example32(&mut vocab, nodes, &[]);
        cfg.max_children = width;
        let t = random_tree(&cfg, seed);
        let st = TreeStats::of(&t);
        prop_assert_eq!(st.nodes, t.len());
        prop_assert_eq!(st.depth_histogram.total() as usize, t.len());
        prop_assert_eq!(st.branching_histogram.total() as usize, t.len());
        prop_assert_eq!(st.branching_histogram.count_of(0) as usize, st.leaves);
        prop_assert!(st.max_branching <= width);
    }

    /// Example 3.2's automaton equals its oracle on arbitrary workloads.
    #[test]
    fn example_32_is_its_oracle((seed, nodes, width) in arb_tree_params()) {
        let mut vocab = Vocab::new();
        let ex = twq::automata::examples::example_32(&mut vocab);
        let mut cfg = TreeGenConfig::example32(&mut vocab, nodes.min(25), &[1, 2]);
        cfg.max_children = width;
        let t = random_tree(&cfg, seed);
        let got = twq::automata::run_on_tree(&ex.program, &t, twq::automata::Limits::default());
        prop_assert_eq!(
            got.accepted(),
            twq::automata::examples::oracle_example_32(&t, ex.delta, ex.attr)
        );
    }
}

// ----- NodeSet word boundaries -----------------------------------------
//
// The bitset packs 64 node ids per word; sizes 63/64/65 (and 127/128/129)
// exercise the last-bit-of-a-word, exact-fit, and first-bit-of-a-new-word
// cases where masking bugs live. The vendored proptest only samples
// integer tuples, so sizes index a fixed boundary table and memberships
// derive from seeded RNGs.

const BOUNDARY_SIZES: [usize; 6] = [63, 64, 65, 127, 128, 129];

fn boundary_sets(n: usize, seed: u64) -> (NodeSet, std::collections::BTreeSet<u32>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = NodeSet::with_capacity(n);
    let mut reference = std::collections::BTreeSet::new();
    for i in 0..n as u32 {
        if rng.gen_bool(0.5) {
            set.insert(NodeId(i));
            reference.insert(i);
        }
    }
    (set, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Set algebra at word boundaries matches a `BTreeSet` reference
    /// model, and iteration is ascending — i.e. document order on a chain
    /// tree, whose arena order and pre-order coincide.
    #[test]
    fn nodeset_word_boundary_algebra(
        (size_idx, seed_a, seed_b) in (0usize..6, 0u64..1_000_000, 0u64..1_000_000)
    ) {
        let n = BOUNDARY_SIZES[size_idx];
        let (mut a, ref_a) = boundary_sets(n, seed_a);
        let (b, ref_b) = boundary_sets(n, seed_b);
        prop_assert_eq!(a.len(), ref_a.len());
        for i in 0..n as u32 {
            prop_assert_eq!(a.contains(NodeId(i)), ref_a.contains(&i));
        }

        // Ascending iteration ≡ document order: on a chain tree every
        // node id equals its pre-order index.
        let chain = chain_tree(twq::tree::SymId(0), n - 1);
        prop_assert_eq!(chain.len(), n);
        let doc: Vec<NodeId> = chain.nodes().filter(|u| a.contains(*u)).collect();
        prop_assert_eq!(a.to_vec(), doc);

        let mut union = a.clone();
        union.union_with(&b);
        prop_assert_eq!(
            union.to_vec(),
            ref_a.union(&ref_b).map(|&i| NodeId(i)).collect::<Vec<_>>()
        );

        let mut inter = a.clone();
        inter.intersect_with(&b);
        prop_assert_eq!(
            inter.to_vec(),
            ref_a.intersection(&ref_b).map(|&i| NodeId(i)).collect::<Vec<_>>()
        );

        a.difference_with(&b);
        prop_assert_eq!(
            a.to_vec(),
            ref_a.difference(&ref_b).map(|&i| NodeId(i)).collect::<Vec<_>>()
        );
    }

    /// Equality is content-only: the same members held in backings of
    /// different capacities (auto-grown, exact, oversized) compare equal,
    /// in both directions, including after removals leave all-zero words.
    #[test]
    fn nodeset_eq_ignores_capacity(
        (size_idx, seed) in (0usize..6, 0u64..1_000_000)
    ) {
        let n = BOUNDARY_SIZES[size_idx];
        let (exact, members) = boundary_sets(n, seed);
        let mut grown = NodeSet::new();
        let mut oversized = NodeSet::with_capacity(n + 130);
        for &i in &members {
            grown.insert(NodeId(i));
            oversized.insert(NodeId(i));
        }
        prop_assert_eq!(&grown, &exact);
        prop_assert_eq!(&exact, &grown);
        prop_assert_eq!(&grown, &oversized);
        prop_assert_eq!(&oversized, &grown);

        // Insert a member in a fresh top word, then remove it: the
        // trailing all-zero word must not break equality either way.
        let far = NodeId((n + 129) as u32);
        grown.insert(far);
        prop_assert_ne!(&grown, &exact);
        grown.remove(far);
        prop_assert_eq!(&grown, &exact);
        prop_assert_eq!(&exact, &grown);
    }
}
