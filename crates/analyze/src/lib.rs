//! # twq-analyze — static analysis for tree-walking programs
//!
//! Neven's classification theorems are *syntactic*: where a `tw^{r,l}`
//! program sits in Definition 5.1's restriction lattice decides its
//! complexity class (LOGSPACE / PTIME / PSPACE / EXPTIME, Theorem 7.1)
//! before a single step is walked. This crate turns that observation
//! into a multi-pass static analyzer over [`TwProgram`]s:
//!
//! 1. **Control flow** ([`mod@cfg`]) — forward/backward reachability
//!    over the state graph (chain edges plus `atp`-spawn edges); dead
//!    states and guaranteed-rejecting states, plus the
//!    semantics-preserving [`prune()`](prune()) rewrite.
//! 2. **Guard overlap** ([`overlap`]) — pairs of rules on one dispatch
//!    key whose guards are not mutually exclusive (the static shadow of
//!    `Halt::Nondeterministic`), and unsatisfiable guards.
//! 3. **Store analysis** ([`regs`]) — register liveness and arity/use
//!    consistency (the builder checks that registers exist; only the
//!    analyzer checks how atoms apply them).
//! 4. **Progress** ([`progress`]) — control-flow cycles with no
//!    head-movement or store-growth witness: statically flagged
//!    divergence, complementing the runtime budgets of `twq-guard`.
//! 5. **Class inference** ([`classes`]) — the Definition 5.1 lattice
//!    with per-axis evidence, and [`certify`] / [`run_checked`] gating
//!    evaluators with
//!    [`TwqError::Invalid`](twq_guard::TwqError) on violations.
//!
//! Every pass reports structured [`Diagnostic`]s; `twq lint` (the `lint`
//! binary) and `experiments --analyze` render them as human tables or
//! JSONL records through the `twq-obs` reporting layer.

pub mod cfg;
pub mod classes;
pub mod diag;
pub mod fold;
pub mod overlap;
pub mod progress;
pub mod prune;
pub mod regs;
pub mod route;
pub mod zoo;

pub use cfg::Cfg;
pub use classes::{certify, infer, ClassInference, LookAheadUse, StorageUse};
pub use diag::{severity_counts, Diagnostic, Loc, Severity};
pub use prune::{prune, Pruned};
pub use route::{route, run_checked, run_routed, EvaluatorChoice, Routed};
pub use zoo::{lint_zoo, ZooEntry};

use twq_automata::{TwClass, TwProgram};

/// The combined result of every pass.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All diagnostics, ordered by pass (CFG, overlap, store, progress,
    /// class) and severity-stable within each.
    pub diagnostics: Vec<Diagnostic>,
    /// The control-flow reachability closures.
    pub cfg: Cfg,
    /// The inferred class with evidence.
    pub inference: ClassInference,
}

impl Analysis {
    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The diagnostics carrying a given code.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }
}

/// Run every pass (no class requirement).
pub fn analyze(prog: &TwProgram) -> Analysis {
    analyze_for_class(prog, None)
}

/// Run every pass, additionally certifying against `required` when
/// given (a violation appears as a `CL001` error diagnostic).
pub fn analyze_for_class(prog: &TwProgram, required: Option<TwClass>) -> Analysis {
    let cfg = Cfg::build(prog);
    let mut diagnostics = cfg::pass(prog, &cfg);
    diagnostics.extend(overlap::pass(prog, &cfg));
    diagnostics.extend(regs::pass(prog));
    diagnostics.extend(progress::pass(prog, &cfg));
    if let Some(target) = required {
        diagnostics.extend(classes::violation_diagnostic(prog, target));
    }
    let inference = infer(prog);
    Analysis {
        diagnostics,
        cfg,
        inference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_tree::Vocab;

    #[test]
    fn the_zoo_triggers_every_pass() {
        let mut vocab = Vocab::new();
        for entry in lint_zoo(&mut vocab) {
            let analysis = analyze_for_class(&entry.program, Some(entry.against));
            let codes: Vec<_> = analysis.diagnostics.iter().map(|d| d.code).collect();
            assert!(
                codes.contains(&entry.expect_code),
                "zoo entry `{}` expected {}, got {codes:?}",
                entry.name,
                entry.expect_code
            );
        }
    }

    #[test]
    fn example_32_is_clean_and_classified() {
        let mut vocab = Vocab::new();
        let ex = twq_automata::examples::example_32(&mut vocab);
        let analysis = analyze(&ex.program);
        assert!(!analysis.has_errors());
        assert_eq!(analysis.inference.class, ex.program.classify());
    }
}
