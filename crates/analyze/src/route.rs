//! Complexity-class routing: the analyzer as evaluator front door.
//!
//! [`run_checked`] is the static counterpart of handing a program to the
//! engine and hoping: it certifies the program against the class the
//! caller is prepared to pay for (rejecting with [`TwqError::Invalid`]
//! *before a single step is walked*), prunes dead control flow, and only
//! then runs. [`run_routed`] goes one further and lets the inferred
//! class pick the evaluator: `tw^l` programs go to the memoized
//! configuration-graph evaluator (the Theorem 7.1(2) PTIME bound),
//! everything else to the direct engine.

use twq_automata::{run, run_graph, Limits, RunReport, TwClass, TwProgram};
use twq_guard::TwqError;
use twq_tree::DelimTree;

use crate::classes::{certify, infer, ClassInference};
use crate::prune::{prune, Pruned};

/// Which evaluator the router picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluatorChoice {
    /// The direct stepping engine.
    Direct,
    /// The memoized configuration-graph evaluator.
    Graph,
}

/// The routing decision for a program, without running anything.
pub fn route(prog: &TwProgram) -> (ClassInference, EvaluatorChoice) {
    let inf = infer(prog);
    let choice = match inf.class {
        // tw^l: polynomially many configurations — memoization pays.
        TwClass::TwL => EvaluatorChoice::Graph,
        // TW walks in LOGSPACE, tw^r/tw^{r,l} have no small config bound:
        // the direct engine is the right default for all three.
        _ => EvaluatorChoice::Direct,
    };
    (inf, choice)
}

/// Certify the program against `required`, prune it, and run the direct
/// engine. This is the evaluator entry point that rejects a mis-classed
/// program statically with [`TwqError::Invalid`] instead of discovering
/// the blowup at runtime.
pub fn run_checked(
    prog: &TwProgram,
    delim: &DelimTree,
    limits: Limits,
    required: TwClass,
) -> Result<RunReport, TwqError> {
    certify(prog, required)?;
    let pruned = prune(prog);
    Ok(run(&pruned.program, delim, limits))
}

/// The outcome of a routed run.
#[derive(Debug, Clone)]
pub struct Routed {
    /// The inferred class that made the decision.
    pub inference: ClassInference,
    /// Which evaluator ran.
    pub evaluator: EvaluatorChoice,
    /// What pruning removed.
    pub pruned: Pruned,
    /// Whether the run accepted.
    pub accepted: bool,
    /// Steps taken (graph runs count first-time transitions).
    pub steps: u64,
}

/// Infer, prune, route, run.
pub fn run_routed(prog: &TwProgram, delim: &DelimTree, limits: Limits) -> Routed {
    let (inference, evaluator) = route(prog);
    let pruned = prune(prog);
    let (accepted, steps) = match evaluator {
        EvaluatorChoice::Direct => {
            let r = run(&pruned.program, delim, limits);
            (r.accepted(), r.steps)
        }
        EvaluatorChoice::Graph => {
            let r = run_graph(&pruned.program, delim, limits);
            (r.accepted(), r.steps)
        }
    };
    Routed {
        inference,
        evaluator,
        pruned,
        accepted,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_tree::generate::{random_tree, TreeGenConfig};
    use twq_tree::Vocab;

    #[test]
    fn misclassed_programs_are_rejected_statically() {
        let mut vocab = Vocab::new();
        // Example 3.2 is tw^{r,l}: multi-node look-ahead.
        let ex = twq_automata::examples::example_32(&mut vocab);
        let cfg = TreeGenConfig::example32(&mut vocab, 5, &[1]);
        let t = random_tree(&cfg, 0);
        let dt = DelimTree::build(&t);
        let err = run_checked(&ex.program, &dt, Limits::default(), TwClass::Tw);
        assert!(matches!(err, Err(TwqError::Invalid { .. })), "{err:?}");
        let ok = run_checked(&ex.program, &dt, Limits::default(), TwClass::TwRL);
        assert!(ok.is_ok());
    }

    #[test]
    fn routing_agrees_with_the_direct_engine() {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, 12, &[1, 2]);
        let a = vocab.attr_opt("a").unwrap();
        let prog = twq_automata::examples::parent_child_match_program(&cfg.symbols, a);
        assert_eq!(prog.classify(), TwClass::TwL);
        for seed in 0..10 {
            let t = random_tree(&cfg, seed);
            let dt = DelimTree::build(&t);
            let direct = run(&prog, &dt, Limits::default());
            let routed = run_routed(&prog, &dt, Limits::default());
            assert_eq!(routed.accepted, direct.accepted(), "seed {seed}");
            assert_eq!(routed.evaluator, EvaluatorChoice::Graph, "tw^l → graph");
        }
    }
}
