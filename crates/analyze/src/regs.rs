//! Pass 3 — store analysis: register liveness and arity/use consistency.
//!
//! * **Written-never-read** (`RG001`): a register some rule updates (or
//!   the initial store populates) that no guard, update formula, or `atp`
//!   ever consults — the work maintaining it is wasted. `X₁` is exempt:
//!   it is the program's output register (`atp` collects it from
//!   subcomputations, and the graph evaluator returns it on acceptance).
//! * **Read-never-written** (`RG002`): a register consulted by some
//!   formula that no rule writes and whose initial content is empty;
//!   every read sees `∅`, so the guards reading it are constants.
//! * **Arity mismatch at use** (`RG003`): a relation atom `X_i(t̄)` whose
//!   tuple length differs from the register's declared arity. The
//!   evaluator's `contains` check makes such an atom **always false** at
//!   runtime — a silent logic bug, reported as an error. (The builder
//!   validates that registers *exist*, not how atoms apply them.)

use twq_automata::{Action, TwProgram};
use twq_logic::{RegId, SAtom, SFormula};

use crate::diag::{Diagnostic, Loc, Severity};

/// Apply `f` to every atom of `formula`, recursively.
fn for_each_atom(formula: &SFormula, f: &mut impl FnMut(&SAtom)) {
    match formula {
        SFormula::True | SFormula::False => {}
        SFormula::Atom(a) => f(a),
        SFormula::Not(g) => for_each_atom(g, f),
        SFormula::And(gs) | SFormula::Or(gs) => {
            for g in gs {
                for_each_atom(g, f);
            }
        }
        SFormula::Exists(_, g) | SFormula::Forall(_, g) => for_each_atom(g, f),
    }
}

/// Store diagnostics for the whole program.
pub fn pass(prog: &TwProgram) -> Vec<Diagnostic> {
    let nregs = prog.reg_count();
    let mut written = vec![false; nregs];
    let mut read = vec![false; nregs];
    let init = prog.initial_store();
    for (i, w) in written.iter_mut().enumerate() {
        if !init.get(RegId(i as u8)).is_empty() {
            *w = true;
        }
    }

    let mut mismatches: Vec<(usize, RegId, usize, usize)> = Vec::new();
    let scan = |rule_idx: usize,
                formula: &SFormula,
                read: &mut Vec<bool>,
                mismatches: &mut Vec<(usize, RegId, usize, usize)>| {
        for_each_atom(formula, &mut |a| {
            if let SAtom::Rel(r, ts) = a {
                let idx = r.0 as usize;
                if idx < nregs {
                    read[idx] = true;
                    let declared = prog.reg_arities()[idx];
                    if ts.len() != declared {
                        mismatches.push((rule_idx, *r, ts.len(), declared));
                    }
                }
            }
        });
    };

    for (i, rule) in prog.rules().iter().enumerate() {
        scan(i, &rule.guard, &mut read, &mut mismatches);
        match &rule.action {
            Action::Move(_, _) => {}
            Action::Update(_, psi, target) => {
                scan(i, psi, &mut read, &mut mismatches);
                written[target.0 as usize] = true;
            }
            Action::Atp(_, _, _, target) => {
                // atp collects the subcomputations' X₁ into `target`.
                written[target.0 as usize] = true;
                if nregs > 0 {
                    read[0] = true;
                }
            }
        }
    }

    let mut out = Vec::new();
    for i in 0..nregs {
        let r = RegId(i as u8);
        // X₁ is the output register; "never read" is its normal state.
        if written[i] && !read[i] && i != 0 {
            out.push(Diagnostic::new(
                Severity::Warning,
                "RG001",
                Loc::Register(r),
                "register is written but never read",
                "drop the register and the updates maintaining it",
            ));
        }
        if read[i] && !written[i] {
            out.push(Diagnostic::new(
                Severity::Info,
                "RG002",
                Loc::Register(r),
                "register is read but never written and starts empty; every read sees ∅",
                "initialize the register or delete the atoms reading it",
            ));
        }
    }
    for (rule_idx, r, used, declared) in mismatches {
        out.push(Diagnostic::new(
            Severity::Error,
            "RG003",
            Loc::Rule(rule_idx),
            format!(
                "relation atom applies {r} to {used} term(s) but its declared arity is \
                 {declared}; the atom is always false at runtime"
            ),
            "match the atom's tuple length to the register arity",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_automata::{Action, Dir, TwProgramBuilder};
    use twq_logic::store::sbuild::*;
    use twq_logic::Relation;
    use twq_tree::Label;

    fn codes(prog: &TwProgram) -> Vec<&'static str> {
        pass(prog).iter().map(|d| d.code).collect()
    }

    #[test]
    fn written_never_read_is_flagged_but_x1_is_exempt() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let _x1 = b.unary_register();
        let x2 = b.unary_register();
        let a = twq_tree::AttrId(0);
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Update(qf, eq(v(0), attr(a)), x2),
        );
        let p = b.build().unwrap();
        assert_eq!(codes(&p), vec!["RG001"]);
    }

    #[test]
    fn read_never_written_is_flagged() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule(
            Label::DelimRoot,
            q0,
            rel(x1, [cst(twq_tree::Value(3))]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        assert_eq!(codes(&p), vec!["RG002"]);
    }

    #[test]
    fn arity_mismatch_at_use_is_an_error() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let pair = b.register(2, Relation::empty(2));
        // Binary register applied to one term: always false, builder
        // accepts it, the analyzer must not.
        b.rule(
            Label::DelimRoot,
            q0,
            rel(pair, [cst(twq_tree::Value(3))]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        let cs = codes(&p);
        assert!(cs.contains(&"RG003"), "{cs:?}");
    }

    #[test]
    fn initialized_registers_count_as_written() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        let x2 = b.register(1, Relation::singleton(twq_tree::Value(9)));
        let _ = x1;
        b.rule(
            Label::DelimRoot,
            q0,
            rel(x2, [cst(twq_tree::Value(9))]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        assert!(codes(&p).is_empty());
    }
}
