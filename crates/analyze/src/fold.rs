//! Constant folding and cheap satisfiability facts for store formulas.
//!
//! The guard-overlap and dead-rule passes need to answer "can this guard
//! ever hold?" and "can these two guards hold together?". Full FO
//! satisfiability over stores is undecidable in general; this module
//! implements the *sound, incomplete* fragment the passes rely on:
//! constant folding (with the active-domain quantifier semantics of
//! [`twq_logic::eval_guard`] respected — `∃x.true` is **not** folded to
//! `true`, the domain may be empty) and complementary-literal detection.

use twq_logic::{SAtom, SFormula, STerm};

/// Constant-fold a formula. The result is logically equivalent under the
/// active-domain semantics; in particular quantifiers only fold when the
/// body is already decided in the direction that is domain-independent
/// (`∃x.false ≡ false`, `∀x.true ≡ true`).
pub fn fold(f: &SFormula) -> SFormula {
    match f {
        SFormula::True => SFormula::True,
        SFormula::False => SFormula::False,
        SFormula::Atom(a) => fold_atom(a),
        SFormula::Not(g) => match fold(g) {
            SFormula::True => SFormula::False,
            SFormula::False => SFormula::True,
            h => SFormula::Not(Box::new(h)),
        },
        SFormula::And(fs) => {
            let mut out = Vec::new();
            for g in fs {
                match fold(g) {
                    SFormula::True => {}
                    SFormula::False => return SFormula::False,
                    h => out.push(h),
                }
            }
            match out.len() {
                0 => SFormula::True,
                1 => out.pop().unwrap(),
                _ => SFormula::And(out),
            }
        }
        SFormula::Or(fs) => {
            let mut out = Vec::new();
            for g in fs {
                match fold(g) {
                    SFormula::False => {}
                    SFormula::True => return SFormula::True,
                    h => out.push(h),
                }
            }
            match out.len() {
                0 => SFormula::False,
                1 => out.pop().unwrap(),
                _ => SFormula::Or(out),
            }
        }
        SFormula::Exists(x, g) => match fold(g) {
            // ∃ over a possibly-empty active domain: only `false` folds.
            SFormula::False => SFormula::False,
            h => SFormula::Exists(*x, Box::new(h)),
        },
        SFormula::Forall(x, g) => match fold(g) {
            // ∀ over a possibly-empty active domain: only `true` folds.
            SFormula::True => SFormula::True,
            h => SFormula::Forall(*x, Box::new(h)),
        },
    }
}

/// Fold one atom: only identical-term and distinct-constant equalities
/// are decidable without a store.
fn fold_atom(a: &SAtom) -> SFormula {
    match a {
        SAtom::Eq(s, t) if s == t => SFormula::True,
        SAtom::Eq(STerm::Const(c), STerm::Const(d)) if c != d => SFormula::False,
        _ => SFormula::Atom(a.clone()),
    }
}

/// The top-level conjuncts of a folded formula (the formula itself when
/// it is not a conjunction).
fn conjuncts(f: &SFormula) -> Vec<&SFormula> {
    match f {
        SFormula::And(fs) => fs.iter().collect(),
        _ => vec![f],
    }
}

/// Whether two conjunct lists contain a complementary pair `c` / `¬c`.
fn complementary(xs: &[&SFormula], ys: &[&SFormula]) -> bool {
    let neg_of =
        |a: &SFormula, b: &SFormula| -> bool { matches!(b, SFormula::Not(inner) if **inner == *a) };
    xs.iter()
        .any(|a| ys.iter().any(|b| neg_of(a, b) || neg_of(b, a)))
}

/// Sound unsatisfiability check: `true` means the formula can never hold
/// in any store. (`false` means "don't know".)
pub fn is_unsat(f: &SFormula) -> bool {
    let g = fold(f);
    if g == SFormula::False {
        return true;
    }
    let cs = conjuncts(&g);
    complementary(&cs, &cs)
}

/// Sound mutual-exclusivity check for two guards: `true` means no store
/// satisfies both. (`false` means "don't know"; the overlap pass then
/// falls back to witness search.)
pub fn definitely_exclusive(g1: &SFormula, g2: &SFormula) -> bool {
    if is_unsat(g1) || is_unsat(g2) {
        return true;
    }
    let f1 = fold(g1);
    let f2 = fold(g2);
    complementary(&conjuncts(&f1), &conjuncts(&f2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_logic::store::sbuild::*;
    use twq_logic::{RegId, Var};
    use twq_tree::Value;

    #[test]
    fn folds_boolean_structure() {
        let f = and([SFormula::True, or([SFormula::False, eq(v(0), v(0))])]);
        assert_eq!(fold(&f), SFormula::True);
        let g = and([SFormula::True, SFormula::False]);
        assert_eq!(fold(&g), SFormula::False);
    }

    #[test]
    fn distinct_constants_fold_false() {
        let f = eq(cst(Value(7)), cst(Value(8)));
        assert_eq!(fold(&f), SFormula::False);
        assert!(is_unsat(&f));
    }

    #[test]
    fn quantifiers_respect_empty_domains() {
        // ∃x.true must NOT fold to true: the active domain may be empty.
        let f = exists(Var(0), SFormula::True);
        assert!(matches!(fold(&f), SFormula::Exists(_, _)));
        // ∀x.false must NOT fold to false, for the same reason.
        let g = forall(Var(0), SFormula::False);
        assert!(matches!(fold(&g), SFormula::Forall(_, _)));
        // The domain-independent directions do fold.
        assert_eq!(fold(&exists(Var(0), SFormula::False)), SFormula::False);
        assert_eq!(fold(&forall(Var(0), SFormula::True)), SFormula::True);
    }

    #[test]
    fn complementary_conjuncts_are_unsat() {
        let x1 = RegId(0);
        let p = rel(x1, [cst(Value(3))]);
        let f = and([p.clone(), not(p.clone())]);
        assert!(is_unsat(&f));
        assert!(definitely_exclusive(&p, &not(p.clone())));
    }

    #[test]
    fn exclusivity_is_conservative() {
        let x1 = RegId(0);
        let p = rel(x1, [cst(Value(3))]);
        let q = rel(x1, [cst(Value(4))]);
        // Jointly satisfiable guards must not be declared exclusive.
        assert!(!definitely_exclusive(&p, &q));
        assert!(!is_unsat(&p));
    }
}
