//! Pass 4 — progress analysis: statically flagging possible divergence.
//!
//! The runtime already defends against divergence (cycle detection,
//! `Limits::max_steps`, and PR 2's fuel budgets); this pass predicts it
//! *before* a step is walked, by looking for control-flow cycles that
//! lack a progress witness:
//!
//! * `PR001` — a reachable cycle whose rules are all `Move(·, Stay)`:
//!   the configuration literally repeats, so entering the cycle loops
//!   forever (the engine rejects it as `Halt::Cycle`, after wasting the
//!   cycle-detection interval).
//! * `PR002` — a reachable cycle that never moves the head but contains
//!   a non-single-value update: the store can grow without the
//!   configuration repeating, so cycle detection may never fire and only
//!   the step budget terminates the run.
//! * `PR003` — a reachable cycle that never moves the head, writing only
//!   single-value updates: the configuration space at the pinned node is
//!   finite, so the engine is guaranteed to catch any loop, but the only
//!   exit is a store-dependent guard — worth knowing, nothing need
//!   change.
//!
//! Cycles that move the head are ordinary traversal loops and are not
//! reported: the tree bounds them the way Section 3's walking argument
//! intends.

use twq_automata::program::is_single_value_update;
use twq_automata::{Action, Dir, State, TwProgram};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Loc, Severity};

/// Progress diagnostics for the whole program.
pub fn pass(prog: &TwProgram, cfg: &Cfg) -> Vec<Diagnostic> {
    let n = prog.state_count();
    let sccs = strongly_connected(prog, n);
    let mut out = Vec::new();
    for scc in sccs {
        // Rules whose source and chain-successor both live in this SCC.
        let rules: Vec<usize> = prog
            .rules()
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                scc.contains(&(r.state.0 as usize))
                    && scc.contains(&(r.action.next_state().0 as usize))
            })
            .map(|(i, _)| i)
            .collect();
        // A cycle exists iff the SCC has >1 state, or a single state with
        // a self-edge (which is exactly "some rule stays inside it").
        if rules.is_empty() {
            continue;
        }
        if !scc.iter().any(|&q| cfg.reachable[q]) {
            continue; // dead code; the CFG pass already reports it
        }

        let moves_head = rules
            .iter()
            .any(|&i| matches!(prog.rules()[i].action, Action::Move(_, d) if d != Dir::Stay));
        if moves_head {
            continue;
        }
        let states: Vec<String> = scc
            .iter()
            .map(|&q| prog.state_name(State(q as u16)).to_owned())
            .collect();
        let loc = Loc::State(State(scc[0] as u16));
        let writes: Vec<&usize> = rules
            .iter()
            .filter(|&&i| {
                matches!(
                    prog.rules()[i].action,
                    Action::Update(_, _, _) | Action::Atp(_, _, _, _)
                )
            })
            .collect();
        if writes.is_empty() {
            out.push(Diagnostic::new(
                Severity::Warning,
                "PR001",
                loc,
                format!(
                    "stay-loop through {{{}}}: no rule moves the head or writes the store, \
                     so entering the cycle repeats one configuration forever",
                    states.join(", ")
                ),
                "break the cycle or make some rule move the head",
            ));
        } else {
            let grows = writes.iter().any(|&&i| match &prog.rules()[i].action {
                Action::Update(_, psi, _) => !is_single_value_update(psi),
                Action::Atp(_, phi, _, _) => !phi.is_syntactically_single(),
                Action::Move(_, _) => false,
            });
            if grows {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "PR002",
                    loc,
                    format!(
                        "cycle through {{{}}} never moves the head but grows the store; \
                         cycle detection may never fire and only the step budget \
                         terminates the run",
                        states.join(", ")
                    ),
                    "move the head inside the cycle or bound the update",
                ));
            } else {
                out.push(Diagnostic::new(
                    Severity::Info,
                    "PR003",
                    loc,
                    format!(
                        "cycle through {{{}}} never moves the head; its only exit is a \
                         store-dependent guard (single-value updates keep it bounded)",
                        states.join(", ")
                    ),
                    "fine if the guard eventually flips; otherwise move the head",
                ));
            }
        }
    }
    out
}

/// Tarjan's strongly connected components over the chain-edge graph,
/// iterative to keep compiled-program state counts off the call stack.
fn strongly_connected(prog: &TwProgram, n: usize) -> Vec<Vec<usize>> {
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in prog.rules() {
        succ[r.state.0 as usize].push(r.action.next_state().0 as usize);
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while !frames.is_empty() {
            let (v, child) = {
                let f = frames.last_mut().expect("loop guard");
                if f.1 == 0 {
                    let v = f.0;
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let pair = (f.0, f.1);
                f.1 += 1;
                pair
            };
            if let Some(&w) = succ[v].get(child) {
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_automata::{Action, Dir, TwProgramBuilder};
    use twq_logic::store::sbuild::*;
    use twq_tree::{Label, Value};

    fn codes(prog: &TwProgram) -> Vec<&'static str> {
        let cfg = Cfg::build(prog);
        pass(prog, &cfg).iter().map(|d| d.code).collect()
    }

    #[test]
    fn stay_loop_is_flagged() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule_true(Label::DelimRoot, q0, Action::Move(q1, Dir::Stay));
        b.rule_true(Label::DelimRoot, q1, Action::Move(q0, Dir::Stay));
        // An exit on another label keeps the loop states coaccessible.
        b.rule(
            Label::DelimLeaf,
            q0,
            rel(x1, [cst(Value(1))]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        assert!(codes(&p).contains(&"PR001"));
    }

    #[test]
    fn head_pinned_store_growth_is_flagged() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        let a = twq_tree::AttrId(0);
        // ψ = X₁(x₀) ∨ x₀ = val_a: accumulates, not single-value.
        let grow = or([rel(x1, [v(0)]), eq(v(0), attr(a))]);
        b.rule(
            Label::DelimRoot,
            q0,
            not(rel(x1, [cst(Value(7))])),
            Action::Update(q0, grow, x1),
        );
        b.rule(
            Label::DelimRoot,
            q0,
            rel(x1, [cst(Value(7))]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        assert!(codes(&p).contains(&"PR002"));
    }

    #[test]
    fn moving_cycles_are_ordinary_traversals() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimOpen, q0, Action::Move(q0, Dir::Down));
        b.rule_true(Label::DelimLeaf, q0, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        assert!(codes(&p).is_empty());
    }

    #[test]
    fn single_value_stay_cycles_are_info_only() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        let a = twq_tree::AttrId(0);
        b.rule(
            Label::DelimRoot,
            q0,
            not(rel(x1, [cst(Value(7))])),
            Action::Update(q0, eq(v(0), attr(a)), x1),
        );
        b.rule(
            Label::DelimRoot,
            q0,
            rel(x1, [cst(Value(7))]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        assert_eq!(codes(&p), vec!["PR003"]);
    }
}
