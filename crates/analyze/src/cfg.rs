//! Pass 1 — control-flow graph, reachability, and dead-code detection.
//!
//! The CFG has one node per state. Every rule `(σ, q, ξ) → α` contributes
//! a *chain edge* `q → q'` (the chain continues in `q'`), and an `atp`
//! rule additionally contributes a *spawn edge* `q → p` (subcomputations
//! start in `p` at the selected nodes). Forward reachability from the
//! initial state follows both edge kinds — a state is live if *some*
//! chain (main or spawned) can be in it. Backward reachability from the
//! final state follows chain edges only: a chain accepts by reaching
//! `q_F` through its **own** moves, never through a spawned chain's.

use twq_automata::{Action, State, TwProgram};

use crate::diag::{Diagnostic, Loc, Severity};

/// The state-level control-flow graph with both reachability closures.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `reachable[q]`: some chain can be in state `q` (forward closure
    /// from the initial state over chain + spawn edges).
    pub reachable: Vec<bool>,
    /// `coaccessible[q]`: a chain in state `q` can still reach the final
    /// state (backward closure over chain edges).
    pub coaccessible: Vec<bool>,
}

impl Cfg {
    /// Build the CFG and both closures.
    pub fn build(prog: &TwProgram) -> Cfg {
        let n = prog.state_count();
        // Forward: chain edges and spawn edges.
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Backward: chain edges only, reversed.
        let mut back: Vec<Vec<usize>> = vec![Vec::new(); n];
        for rule in prog.rules() {
            let from = rule.state.0 as usize;
            let next = rule.action.next_state().0 as usize;
            fwd[from].push(next);
            back[next].push(from);
            if let Action::Atp(_, _, p, _) = rule.action {
                fwd[from].push(p.0 as usize);
            }
        }
        Cfg {
            reachable: closure(n, prog.initial().0 as usize, &fwd),
            coaccessible: closure(n, prog.final_state().0 as usize, &back),
        }
    }

    /// Whether state `q` is forward-reachable.
    pub fn is_reachable(&self, q: State) -> bool {
        self.reachable[q.0 as usize]
    }

    /// Whether state `q` can reach the final state.
    pub fn is_coaccessible(&self, q: State) -> bool {
        self.coaccessible[q.0 as usize]
    }
}

/// Reflexive-transitive closure from `start` over `edges`.
fn closure(n: usize, start: usize, edges: &[Vec<usize>]) -> Vec<bool> {
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start] = true;
    while let Some(q) = stack.pop() {
        for &r in &edges[q] {
            if !seen[r] {
                seen[r] = true;
                stack.push(r);
            }
        }
    }
    seen
}

/// Dead-code diagnostics from the two closures.
pub fn pass(prog: &TwProgram, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for q in 0..prog.state_count() {
        let state = State(q as u16);
        if !cfg.reachable[q] {
            if state == prog.final_state() {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "DS003",
                    Loc::State(state),
                    "the final state is unreachable; the program accepts nothing",
                    "add a rule path from the initial state to the final state",
                ));
            } else {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "DS001",
                    Loc::State(state),
                    "state is unreachable from the initial state",
                    "prune() removes the state and its rules",
                ));
            }
        } else if !cfg.coaccessible[q] && state != prog.final_state() {
            out.push(Diagnostic::new(
                Severity::Warning,
                "DS002",
                Loc::State(state),
                "state cannot reach the final state; every chain entering it rejects",
                "prune() drops its rules (the rejection is preserved as a stuck halt)",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_automata::{Action, Dir, TwProgramBuilder};
    use twq_tree::Label;

    #[test]
    fn reachability_follows_spawn_edges() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        let sub = b.state("sub");
        let dead = b.state("dead");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(qf, twq_logic::exists::selectors::self_node(), sub, x1),
        );
        b.rule_true(Label::DelimLeaf, sub, Action::Move(qf, Dir::Stay));
        b.rule_true(Label::DelimLeaf, dead, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert!(
            cfg.is_reachable(sub),
            "spawn edge reaches the atp sub-state"
        );
        assert!(!cfg.is_reachable(dead));
        assert!(cfg.is_coaccessible(q0));
        let ds: Vec<_> = pass(&p, &cfg).iter().map(|d| d.code).collect();
        assert_eq!(ds, vec!["DS001"]);
    }

    #[test]
    fn coaccessibility_ignores_spawn_edges() {
        // A state reachable only as an atp target which cannot itself
        // reach qF: reachable but not coaccessible.
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        let sub = b.state("sub");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(qf, twq_logic::exists::selectors::self_node(), sub, x1),
        );
        b.rule_true(Label::DelimLeaf, sub, Action::Move(sub, Dir::Up));
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.is_reachable(sub));
        assert!(!cfg.is_coaccessible(sub));
        let ds: Vec<_> = pass(&p, &cfg).iter().map(|d| d.code).collect();
        assert_eq!(ds, vec!["DS002"]);
    }
}
