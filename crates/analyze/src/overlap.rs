//! Pass 2 — guard overlap and unsatisfiable guards.
//!
//! The engine's determinism discipline halts a run with
//! `Halt::Nondeterministic` the moment two rules for the same
//! `(label, state)` both fire. This pass predicts that statically: for
//! every pair of rules sharing a dispatch key it either *proves* the
//! guards mutually exclusive (constant folding + complementary-literal
//! detection, [`crate::fold`]), or *searches for a witness store* in
//! which both hold. A found witness is reported as a nondeterminism
//! hazard; an unresolved pair is reported at `Info` severity, because
//! the witness enumeration is deliberately small and sound-but-incomplete.
//!
//! Unsatisfiable guards (`OV003`) are the rule-level version of the same
//! question: a guard no store satisfies means the rule can never fire.

use std::collections::BTreeSet;

use twq_automata::TwProgram;
use twq_logic::store::AttrEnv;
use twq_logic::{eval_guard, RegId, Relation, SFormula, Store};
use twq_tree::{AttrId, Value};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Loc, Severity};
use crate::fold::{definitely_exclusive, is_unsat};

/// Witness-search caps: beyond these the pair is reported as unproven
/// rather than searched (the enumeration is exponential in both).
const MAX_WITNESS_REGS: usize = 3;
const MAX_WITNESS_ATTRS: usize = 3;

/// Overlap diagnostics for the whole program. Unreachable states are
/// skipped — their rules are already reported dead by the CFG pass.
pub fn pass(prog: &TwProgram, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for (i, rule) in prog.rules().iter().enumerate() {
        if !cfg.is_reachable(rule.state) {
            continue;
        }
        if is_unsat(&rule.guard) {
            out.push(Diagnostic::new(
                Severity::Warning,
                "OV003",
                Loc::Rule(i),
                "guard is unsatisfiable; the rule can never fire",
                "delete the rule or fix the guard (prune() removes it)",
            ));
        }
    }

    // Pairs sharing a dispatch key, via the program's own rule index.
    let keys: BTreeSet<_> = prog.rules().iter().map(|r| (r.label, r.state)).collect();
    for (label, state) in keys {
        if !cfg.is_reachable(state) {
            continue;
        }
        let group = prog.rules_for(label, state);
        for (a, &i) in group.iter().enumerate() {
            for &j in &group[a + 1..] {
                let g1 = &prog.rules()[i].guard;
                let g2 = &prog.rules()[j].guard;
                if definitely_exclusive(g1, g2) {
                    continue;
                }
                match find_overlap_witness(prog, g1, g2) {
                    Some(w) => out.push(Diagnostic::new(
                        Severity::Warning,
                        "OV001",
                        Loc::RulePair(i, j),
                        format!(
                            "guards are not mutually exclusive ({w}); \
                             if both fire the run halts Nondeterministic"
                        ),
                        "strengthen one guard with the negation of the other",
                    )),
                    None => out.push(Diagnostic::new(
                        Severity::Info,
                        "OV002",
                        Loc::RulePair(i, j),
                        "could not prove the guards mutually exclusive",
                        "if the overlap is intended to be impossible, \
                         restate the guards as g and ¬g",
                    )),
                }
            }
        }
    }
    out
}

/// Search small stores and attribute environments for one satisfying both
/// guards. Sound: a returned witness really does satisfy both (under the
/// constructed store — whether a *run* can produce that store is a
/// separate, undecidable question, hence `Warning` not `Error`).
fn find_overlap_witness(prog: &TwProgram, g1: &SFormula, g2: &SFormula) -> Option<String> {
    let mut regs: BTreeSet<RegId> = g1.registers().into_iter().collect();
    regs.extend(g2.registers());
    let regs: Vec<RegId> = regs
        .into_iter()
        .filter(|r| (r.0 as usize) < prog.reg_count())
        .collect();
    let mut attrs: BTreeSet<AttrId> = g1.attrs().into_iter().collect();
    attrs.extend(g2.attrs());
    let attrs: Vec<AttrId> = attrs.into_iter().collect();
    if regs.len() > MAX_WITNESS_REGS || attrs.len() > MAX_WITNESS_ATTRS {
        return None;
    }

    // Value pool: every constant either guard mentions, plus two fresh
    // values no vocabulary interning will have handed out (tokens only
    // compare by identity, so fabricated ones are safe).
    let mut pool: BTreeSet<Value> = g1.constants().into_iter().collect();
    pool.extend(g2.constants());
    let fresh_base = pool.iter().map(|v| v.0).max().unwrap_or(0) + 1;
    pool.insert(Value(fresh_base));
    pool.insert(Value(fresh_base + 1));
    let pool: Vec<Value> = pool.into_iter().collect();

    // Candidate relations per register: ∅ and all ≤2-element subsets of a
    // small tuple pool.
    let arities = prog.reg_arities();
    let reg_candidates: Vec<Vec<Relation>> = regs
        .iter()
        .map(|r| {
            let a = arities[r.0 as usize];
            let tuples = small_tuples(&pool, a);
            let mut cands = vec![Relation::empty(a)];
            for (i, t) in tuples.iter().enumerate() {
                cands.push(Relation::from_tuples(a, [t.clone()]));
                for u in &tuples[i + 1..] {
                    cands.push(Relation::from_tuples(a, [t.clone(), u.clone()]));
                }
            }
            cands
        })
        .collect();

    // Attribute environments: each mentioned attribute takes each pool
    // value in turn (one shared index per attribute).
    let mut env_choices = vec![0usize; attrs.len()];
    loop {
        let env = AttrEnv::from_pairs(
            &attrs
                .iter()
                .zip(&env_choices)
                .map(|(&a, &c)| (a, pool[c]))
                .collect::<Vec<_>>(),
        );
        let mut reg_choices = vec![0usize; regs.len()];
        loop {
            let mut store = Store::with_arities(arities);
            for (slot, (&r, &c)) in regs.iter().zip(&reg_choices).enumerate() {
                store.set(r, reg_candidates[slot][c].clone());
            }
            if eval_guard(&store, &env, g1) && eval_guard(&store, &env, g2) {
                return Some(describe_witness(
                    &regs,
                    &reg_choices,
                    &reg_candidates,
                    &attrs,
                ));
            }
            if !bump(&mut reg_choices, |i| reg_candidates[i].len()) {
                break;
            }
        }
        if !bump(&mut env_choices, |_| pool.len()) {
            break;
        }
    }
    None
}

/// All tuples over `pool^arity`, capped at a handful to bound the search.
fn small_tuples(pool: &[Value], arity: usize) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::new();
        for t in &out {
            for &v in pool {
                let mut t2 = t.clone();
                t2.push(v);
                next.push(t2);
            }
        }
        out = next;
        if out.len() > 9 {
            out.truncate(9);
        }
    }
    if arity == 0 {
        out.clear();
    }
    out
}

/// Odometer increment over mixed radices; `false` when it wraps.
fn bump(digits: &mut [usize], radix: impl Fn(usize) -> usize) -> bool {
    for (i, d) in digits.iter_mut().enumerate() {
        *d += 1;
        if *d < radix(i) {
            return true;
        }
        *d = 0;
    }
    false
}

/// A short rendering of the witness store for the diagnostic message.
fn describe_witness(
    regs: &[RegId],
    choices: &[usize],
    candidates: &[Vec<Relation>],
    attrs: &[AttrId],
) -> String {
    if regs.is_empty() && attrs.is_empty() {
        return "both hold in every store".to_owned();
    }
    let parts: Vec<String> = regs
        .iter()
        .zip(choices)
        .enumerate()
        .map(|(slot, (r, &c))| format!("{} with {} tuple(s)", r, candidates[slot][c].len()))
        .collect();
    if parts.is_empty() {
        "witness: some attribute assignment".to_owned()
    } else {
        format!("witness: {}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_automata::{Action, Dir, TwProgramBuilder};
    use twq_logic::store::sbuild::*;
    use twq_tree::Label;

    fn codes(prog: &TwProgram) -> Vec<&'static str> {
        let cfg = Cfg::build(prog);
        pass(prog, &cfg).iter().map(|d| d.code).collect()
    }

    #[test]
    fn true_true_pairs_are_flagged_with_witness() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Down));
        let p = b.build().unwrap();
        assert_eq!(codes(&p), vec!["OV001"]);
    }

    #[test]
    fn g_and_not_g_are_proven_exclusive() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        let g = rel(x1, [cst(Value(5))]);
        b.rule(Label::DelimRoot, q0, g.clone(), Action::Move(qf, Dir::Stay));
        b.rule(Label::DelimRoot, q0, not(g), Action::Move(qf, Dir::Down));
        let p = b.build().unwrap();
        assert!(codes(&p).is_empty());
    }

    #[test]
    fn satisfiable_distinct_guards_get_a_witness() {
        // X₁(5) and X₁(6) can hold together when X₁ ⊇ {5,6}.
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule(
            Label::DelimRoot,
            q0,
            rel(x1, [cst(Value(5))]),
            Action::Move(qf, Dir::Stay),
        );
        b.rule(
            Label::DelimRoot,
            q0,
            rel(x1, [cst(Value(6))]),
            Action::Move(qf, Dir::Down),
        );
        let p = b.build().unwrap();
        assert_eq!(codes(&p), vec!["OV001"]);
    }

    #[test]
    fn unsatisfiable_guard_is_flagged() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        let g = rel(x1, [cst(Value(5))]);
        b.rule(
            Label::DelimRoot,
            q0,
            and([g.clone(), not(g)]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        assert_eq!(codes(&p), vec!["OV003"]);
    }
}
