//! The semantics-preserving `prune()` rewrite.
//!
//! Three removals, each argued acceptance-preserving under the engine's
//! exact halting discipline (including `Halt::Nondeterministic`):
//!
//! 1. **Rules from non-coaccessible states.** A chain in a state that
//!    cannot reach `q_F` rejects no matter what (stuck, cycle,
//!    nondeterministic, or limit — all non-accepting). Dropping *all* of
//!    the state's rules turns that rejection into an immediate stuck
//!    halt. Because the rules are dropped per-state, never per-rule, no
//!    overlapping rule pair is ever split — so a run that would have
//!    halted `Nondeterministic` cannot silently become accepting.
//! 2. **Rules with unsatisfiable guards.** A guard no store satisfies
//!    never fires and never participates in a nondeterministic double
//!    fire; removing the rule changes no run.
//! 3. **Unreachable states.** After (1) and (2), any state no chain can
//!    enter (forward closure over chain *and* `atp`-spawn edges) is
//!    deleted outright, rules and all.
//!
//! `atp` subtlety: a spawn target that cannot reach `q_F` keeps its
//! *state* (the spawn edge reaches it) but loses its *rules* by (1); the
//! spawned chain then rejects immediately instead of eventually, and the
//! `atp` rule rejects the same way it always did — unless the selector
//! picked no nodes, in which case no chain spawns and nothing changed.
//!
//! The proptest suite (`tests/analyze.rs`) exercises exactly this
//! contract: pruned programs accept the same trees as their originals.

use twq_automata::{Action, State, TwProgram, TwProgramBuilder};
use twq_logic::RegId;

use crate::fold::is_unsat;

/// The result of pruning: the rewritten program plus what was removed.
#[derive(Debug, Clone)]
pub struct Pruned {
    /// The pruned program (identical acceptance behavior).
    pub program: TwProgram,
    /// Indices (into the original rule list) of removed rules.
    pub removed_rules: Vec<usize>,
    /// Removed states (original ids).
    pub removed_states: Vec<State>,
}

impl Pruned {
    /// Whether pruning changed anything.
    pub fn changed(&self) -> bool {
        !self.removed_rules.is_empty() || !self.removed_states.is_empty()
    }
}

/// Prune the program. See the module docs for the soundness argument.
pub fn prune(prog: &TwProgram) -> Pruned {
    let n = prog.state_count();

    // Backward closure over chain edges: which states can reach q_F.
    let mut back: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in prog.rules() {
        back[r.action.next_state().0 as usize].push(r.state.0 as usize);
    }
    let mut coacc = vec![false; n];
    let mut stack = vec![prog.final_state().0 as usize];
    coacc[prog.final_state().0 as usize] = true;
    while let Some(q) = stack.pop() {
        for &p in &back[q] {
            if !coacc[p] {
                coacc[p] = true;
                stack.push(p);
            }
        }
    }

    // Keep rules from coaccessible states whose guard can fire at all.
    let keep0: Vec<bool> = prog
        .rules()
        .iter()
        .map(|r| coacc[r.state.0 as usize] && !is_unsat(&r.guard))
        .collect();

    // Forward closure from q₀ over the *kept* rules (chain + spawn).
    let mut by_state: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, r) in prog.rules().iter().enumerate() {
        if keep0[i] {
            by_state[r.state.0 as usize].push(i);
        }
    }
    let mut reach = vec![false; n];
    reach[prog.initial().0 as usize] = true;
    let mut stack = vec![prog.initial().0 as usize];
    while let Some(q) = stack.pop() {
        for &i in &by_state[q] {
            let r = &prog.rules()[i];
            let mut targets = vec![r.action.next_state().0 as usize];
            if let Action::Atp(_, _, p, _) = r.action {
                targets.push(p.0 as usize);
            }
            for t in targets {
                if !reach[t] {
                    reach[t] = true;
                    stack.push(t);
                }
            }
        }
    }

    let keep_rule: Vec<bool> = prog
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| keep0[i] && reach[r.state.0 as usize])
        .collect();
    let keep_state: Vec<bool> = (0..n)
        .map(|q| reach[q] || q == prog.final_state().0 as usize)
        .collect();

    // Rebuild through the builder so every invariant is revalidated.
    let mut b = TwProgramBuilder::new();
    let mut map: Vec<Option<State>> = vec![None; n];
    for q in 0..n {
        if keep_state[q] {
            map[q] = Some(b.state(prog.state_name(State(q as u16))));
        }
    }
    let mapped = |q: State| map[q.0 as usize].expect("kept rules only reference kept states");
    b.initial(mapped(prog.initial()));
    b.final_state(mapped(prog.final_state()));
    let init = prog.initial_store();
    for (i, &arity) in prog.reg_arities().iter().enumerate() {
        b.register(arity, init.get(RegId(i as u8)).clone());
    }
    for (i, r) in prog.rules().iter().enumerate() {
        if !keep_rule[i] {
            continue;
        }
        let action = match &r.action {
            Action::Move(q, d) => Action::Move(mapped(*q), *d),
            Action::Update(q, psi, reg) => Action::Update(mapped(*q), psi.clone(), *reg),
            Action::Atp(q, phi, p, reg) => Action::Atp(mapped(*q), phi.clone(), mapped(*p), *reg),
        };
        b.rule(r.label, mapped(r.state), r.guard.clone(), action);
    }
    let program = b
        .build()
        .expect("pruning preserves every builder invariant");

    Pruned {
        program,
        removed_rules: keep_rule
            .iter()
            .enumerate()
            .filter(|(_, &k)| !k)
            .map(|(i, _)| i)
            .collect(),
        removed_states: keep_state
            .iter()
            .enumerate()
            .filter(|(_, &k)| !k)
            .map(|(q, _)| State(q as u16))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_automata::{run_on_tree, Dir, Limits, TwClass};
    use twq_logic::store::sbuild::*;
    use twq_tree::generate::{random_tree, TreeGenConfig};
    use twq_tree::{Label, Value, Vocab};

    #[test]
    fn pruning_a_clean_program_changes_nothing() {
        let mut vocab = Vocab::new();
        let ex = twq_automata::examples::example_32(&mut vocab);
        let p = prune(&ex.program);
        assert!(!p.changed());
        assert_eq!(p.program.state_count(), ex.program.state_count());
        assert_eq!(p.program.rules().len(), ex.program.rules().len());
    }

    #[test]
    fn dead_states_and_false_guards_are_removed() {
        let mut vocab = Vocab::new();
        let sigma = vocab.sym("sigma");
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        let dead = b.state("dead");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        // Never fires: complementary conjuncts.
        let g = rel(x1, [cst(Value(3))]);
        b.rule(
            Label::Sym(sigma),
            q0,
            and([g.clone(), not(g)]),
            Action::Move(qf, Dir::Down),
        );
        b.rule_true(Label::Sym(sigma), dead, Action::Move(dead, Dir::Up));
        let orig = b.build().unwrap();
        let p = prune(&orig);
        assert_eq!(p.removed_rules.len(), 2);
        assert_eq!(p.removed_states, vec![dead]);
        assert_eq!(p.program.state_count(), 2);
        assert_eq!(p.program.classify(), orig.classify());
        assert_eq!(p.program.classify(), TwClass::Tw);
    }

    #[test]
    fn pruned_program_accepts_the_same_trees() {
        let mut vocab = Vocab::new();
        let ex = twq_automata::examples::example_32(&mut vocab);
        // Junk: unreachable state with rules.
        let cfg = TreeGenConfig::example32(&mut vocab, 15, &[1, 2]);
        let p = prune(&ex.program);
        for seed in 0..20 {
            let t = random_tree(&cfg, seed);
            let orig = run_on_tree(&ex.program, &t, Limits::default());
            let pruned = run_on_tree(&p.program, &t, Limits::default());
            assert_eq!(orig.accepted(), pruned.accepted(), "seed {seed}");
        }
    }
}
