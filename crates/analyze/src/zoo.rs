//! The lint zoo: seeded ill-formed programs, one per analysis pass.
//!
//! Each entry is a small, *buildable* program (the builder's invariants
//! all hold — these are semantic smells, not syntax errors) that
//! triggers one diagnostic family. `twq lint` prints them as a
//! demonstration, and the test suite asserts every expected code
//! actually fires, which pins the analyzer's recall.

use twq_automata::{Action, Dir, TwClass, TwProgram, TwProgramBuilder};
use twq_logic::exists::selectors;
use twq_logic::store::sbuild::*;
use twq_logic::Relation;
use twq_tree::{AttrId, Label, Value, Vocab};

/// One seeded ill-formed program.
pub struct ZooEntry {
    /// Short name, printed as the lint section header.
    pub name: &'static str,
    /// What the entry demonstrates.
    pub description: &'static str,
    /// The diagnostic code the analyzer must produce on it.
    pub expect_code: &'static str,
    /// The class to lint the program against (for the class-violation
    /// entry; `TwRL` — always satisfied — elsewhere).
    pub against: TwClass,
    /// The program.
    pub program: TwProgram,
}

fn base(vocab: &mut Vocab) -> (TwProgramBuilder, Label) {
    let sigma = vocab.sym("sigma");
    (TwProgramBuilder::new(), Label::Sym(sigma))
}

/// Every zoo entry. `vocab` receives the symbols the programs mention.
pub fn lint_zoo(vocab: &mut Vocab) -> Vec<ZooEntry> {
    let mut out = Vec::new();

    // DS001 — a state no chain can ever enter.
    {
        let (mut b, sigma) = base(vocab);
        let q0 = b.state("q0");
        let qf = b.state("qF");
        let orphan = b.state("orphan");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        b.rule_true(sigma, orphan, Action::Move(qf, Dir::Up));
        out.push(ZooEntry {
            name: "dead-state",
            description: "a state unreachable from the initial state",
            expect_code: "DS001",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // DS002 — a reachable state that can never reach the final state.
    {
        let (mut b, sigma) = base(vocab);
        let q0 = b.state("q0");
        let qf = b.state("qF");
        let pit = b.state("pit");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        b.rule_true(sigma, q0, Action::Move(pit, Dir::Down));
        b.rule_true(sigma, pit, Action::Move(pit, Dir::Down));
        out.push(ZooEntry {
            name: "no-exit",
            description: "a reachable state with no path back to acceptance",
            expect_code: "DS002",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // OV001 — two rules for one (label, state) that can fire together.
    {
        let (mut b, _) = base(vocab);
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Down));
        out.push(ZooEntry {
            name: "overlapping-guards",
            description: "two always-true guards on one dispatch key: \
                          the engine halts Nondeterministic",
            expect_code: "OV001",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // OV003 — a guard no store satisfies.
    {
        let (mut b, _) = base(vocab);
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        let g = rel(x1, [cst(Value(3))]);
        b.rule(
            Label::DelimRoot,
            q0,
            and([g.clone(), not(g)]),
            Action::Move(qf, Dir::Stay),
        );
        b.rule_true(Label::DelimLeaf, q0, Action::Move(qf, Dir::Stay));
        out.push(ZooEntry {
            name: "unsatisfiable-guard",
            description: "a guard of the form g ∧ ¬g: the rule can never fire",
            expect_code: "OV003",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // RG001 — a register maintained but never consulted.
    {
        let (mut b, _) = base(vocab);
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let _x1 = b.unary_register();
        let scratch = b.unary_register();
        let a = AttrId(0);
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Update(qf, eq(v(0), attr(a)), scratch),
        );
        out.push(ZooEntry {
            name: "dead-register",
            description: "a register written on every step and read by nothing",
            expect_code: "RG001",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // RG003 — a relation atom applied at the wrong arity.
    {
        let (mut b, _) = base(vocab);
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let pair = b.register(2, Relation::empty(2));
        b.rule(
            Label::DelimRoot,
            q0,
            rel(pair, [cst(Value(3))]),
            Action::Move(qf, Dir::Stay),
        );
        out.push(ZooEntry {
            name: "arity-mismatch",
            description: "a binary register tested with a unary atom — always false",
            expect_code: "RG003",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // PR001 — a stay-loop: guaranteed divergence when entered.
    {
        let (mut b, _) = base(vocab);
        let q0 = b.state("q0");
        let spin = b.state("spin");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule_true(Label::DelimRoot, q0, Action::Move(spin, Dir::Stay));
        b.rule_true(Label::DelimRoot, spin, Action::Move(spin, Dir::Stay));
        b.rule(
            Label::DelimLeaf,
            spin,
            rel(x1, [cst(Value(1))]),
            Action::Move(qf, Dir::Stay),
        );
        out.push(ZooEntry {
            name: "stay-loop",
            description: "a cycle that neither moves the head nor writes the store",
            expect_code: "PR001",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // PR002 — head pinned while the store grows.
    {
        let (mut b, _) = base(vocab);
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        let a = AttrId(0);
        let grow = or([rel(x1, [v(0)]), eq(v(0), attr(a))]);
        let full = rel(x1, [cst(Value(7))]);
        b.rule(
            Label::DelimRoot,
            q0,
            not(full.clone()),
            Action::Update(q0, grow, x1),
        );
        b.rule(Label::DelimRoot, q0, full, Action::Move(qf, Dir::Stay));
        out.push(ZooEntry {
            name: "store-growth-loop",
            description: "a head-pinned cycle accumulating into a register",
            expect_code: "PR002",
            against: TwClass::TwRL,
            program: b.build().expect("zoo programs build"),
        });
    }

    // CL001 — a tw^{r,l} program demanded to run as TW.
    {
        let (mut b, sigma) = base(vocab);
        let q0 = b.state("q0");
        let sub = b.state("sub");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let x1 = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(qf, selectors::descendants(), sub, x1),
        );
        b.rule_true(sigma, sub, Action::Move(qf, Dir::Stay));
        out.push(ZooEntry {
            name: "class-violation",
            description: "multi-node look-ahead in a program required to be TW (LOGSPACE)",
            expect_code: "CL001",
            against: TwClass::Tw,
            program: b.build().expect("zoo programs build"),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds_and_names_are_unique() {
        let mut vocab = Vocab::new();
        let zoo = lint_zoo(&mut vocab);
        assert_eq!(zoo.len(), 9);
        let mut names: Vec<_> = zoo.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
