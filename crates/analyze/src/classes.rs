//! Pass 5 — complexity-class inference.
//!
//! Definition 5.1 carves `tw^{r,l}` into four classes by two independent
//! syntactic axes, and Theorem 7.1 attaches a complexity bound to each:
//!
//! | | no look-ahead | look-ahead |
//! |---|---|---|
//! | **unary single-value storage** | `TW` (LOGSPACE) | `tw^l` (PTIME) |
//! | **relational storage** | `tw^r` (PSPACE) | `tw^{r,l}` (EXPTIME) |
//!
//! [`infer`] refines `TwProgram::classify()` into this explicit product
//! lattice: each axis is established separately, with *evidence* — the
//! first rule (or register) that forces the relational/look-ahead side —
//! recorded so a diagnostic can point at it. [`certify`] is the routing
//! gate: it accepts iff the inferred class is at or below a required
//! class in the lattice order (`Tw ⊑ TwL ⊑ TwRL`, `Tw ⊑ TwR ⊑ TwRL`;
//! `TwL` and `TwR` are incomparable), and rejects with
//! [`TwqError::Invalid`] otherwise — the static replacement for watching
//! an evaluator exhaust its budget at runtime.

use std::fmt::Write as _;

use twq_automata::program::is_single_value_update;
use twq_automata::{Action, TwClass, TwProgram};
use twq_guard::TwqError;
use twq_logic::RegId;

use crate::diag::{Diagnostic, Loc, Severity};

/// The look-ahead axis of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LookAheadUse {
    /// No `atp` rule at all.
    None,
    /// Every `atp` selector is syntactically single-node (`tw^l`'s
    /// "look-ahead returns one value" restriction).
    Single,
    /// Some `atp` selector may select arbitrarily many nodes.
    Relational,
}

/// The storage axis of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StorageUse {
    /// All registers unary, all updates single-value, initial contents
    /// at most singletons.
    UnarySingle,
    /// Anything larger.
    Relational,
}

/// The inferred position in the Definition 5.1 lattice, with evidence.
#[derive(Debug, Clone)]
pub struct ClassInference {
    /// Where the program sits on the look-ahead axis.
    pub lookahead: LookAheadUse,
    /// Where the program sits on the storage axis.
    pub storage: StorageUse,
    /// The resulting class.
    pub class: TwClass,
    /// One line per axis that is *not* at the bottom, naming the first
    /// rule or register responsible.
    pub evidence: Vec<String>,
}

impl ClassInference {
    /// Whether this inference fits under `target` in the lattice order.
    /// Matches `TwProgram::check_class`: `TwL` and `TwR` are
    /// incomparable, everything fits under `TwRL`.
    pub fn fits(&self, target: TwClass) -> bool {
        match target {
            TwClass::TwRL => true,
            TwClass::TwR => matches!(self.class, TwClass::Tw | TwClass::TwR),
            TwClass::TwL => matches!(self.class, TwClass::Tw | TwClass::TwL),
            TwClass::Tw => self.class == TwClass::Tw,
        }
    }
}

/// Infer the program's class with per-axis evidence.
pub fn infer(prog: &TwProgram) -> ClassInference {
    let mut evidence = Vec::new();
    let mut lookahead = LookAheadUse::None;
    let mut storage = StorageUse::UnarySingle;

    for (i, &a) in prog.reg_arities().iter().enumerate() {
        if a != 1 && storage == StorageUse::UnarySingle {
            storage = StorageUse::Relational;
            evidence.push(format!("register {} has arity {a}", RegId(i as u8)));
        }
    }
    let init = prog.initial_store();
    for i in 0..prog.reg_count() {
        let r = RegId(i as u8);
        if init.get(r).len() > 1 && storage == StorageUse::UnarySingle {
            storage = StorageUse::Relational;
            evidence.push(format!(
                "register {r} starts with {} tuples",
                init.get(r).len()
            ));
        }
    }
    for (i, rule) in prog.rules().iter().enumerate() {
        match &rule.action {
            Action::Move(_, _) => {}
            Action::Update(_, psi, target) => {
                if !is_single_value_update(psi) && storage == StorageUse::UnarySingle {
                    storage = StorageUse::Relational;
                    evidence.push(format!(
                        "rule #{i} updates {target} with a non-single-value formula"
                    ));
                }
            }
            Action::Atp(_, phi, _, _) => {
                if phi.is_syntactically_single() {
                    if lookahead == LookAheadUse::None {
                        lookahead = LookAheadUse::Single;
                        evidence.push(format!("rule #{i} uses single-node look-ahead"));
                    }
                } else if lookahead != LookAheadUse::Relational {
                    lookahead = LookAheadUse::Relational;
                    evidence.push(format!(
                        "rule #{i} uses look-ahead whose selector may pick many nodes"
                    ));
                }
            }
        }
    }

    // A relational (multi-node) look-ahead fills a register with one
    // value per selected node, so it also forces relational storage.
    if lookahead == LookAheadUse::Relational && storage == StorageUse::UnarySingle {
        storage = StorageUse::Relational;
        evidence.push("multi-node look-ahead fills its register relationally".to_owned());
    }

    let class = match (storage, lookahead) {
        (StorageUse::UnarySingle, LookAheadUse::None) => TwClass::Tw,
        (StorageUse::UnarySingle, _) => TwClass::TwL,
        (StorageUse::Relational, LookAheadUse::None) => TwClass::TwR,
        (StorageUse::Relational, _) => TwClass::TwRL,
    };
    ClassInference {
        lookahead,
        storage,
        class,
        evidence,
    }
}

/// Certify the program against a required class; [`TwqError::Invalid`]
/// carries the inferred class and the evidence lines on failure.
pub fn certify(prog: &TwProgram, target: TwClass) -> Result<ClassInference, TwqError> {
    let inf = infer(prog);
    if inf.fits(target) {
        Ok(inf)
    } else {
        let mut detail = format!("program is {}, evaluator requires {target}", inf.class);
        for e in &inf.evidence {
            let _ = write!(detail, "; {e}");
        }
        Err(TwqError::invalid("class certification", detail))
    }
}

/// The class-violation diagnostic for [`crate::analyze_for_class`].
pub fn violation_diagnostic(prog: &TwProgram, target: TwClass) -> Option<Diagnostic> {
    match certify(prog, target) {
        Ok(_) => None,
        Err(e) => Some(Diagnostic::new(
            Severity::Error,
            "CL001",
            Loc::Program,
            e.to_string(),
            "weaken the required class or restrict the program per Definition 5.1",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_automata::{Dir, TwProgramBuilder};
    use twq_logic::exists::selectors;
    use twq_logic::store::sbuild::*;
    use twq_tree::Label;

    fn tw_base() -> (TwProgramBuilder, twq_automata::State, twq_automata::State) {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        (b, q0, qf)
    }

    #[test]
    fn pure_walking_is_tw() {
        let (mut b, q0, qf) = tw_base();
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        let inf = infer(&p);
        assert_eq!(inf.class, TwClass::Tw);
        assert!(inf.evidence.is_empty());
        assert!(inf.fits(TwClass::Tw) && inf.fits(TwClass::TwL));
        assert!(inf.fits(TwClass::TwR) && inf.fits(TwClass::TwRL));
    }

    #[test]
    fn single_lookahead_is_twl_and_unfit_for_twr() {
        let (mut b, q0, qf) = tw_base();
        let sub = b.state("sub");
        let x1 = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(qf, selectors::parent(), sub, x1),
        );
        b.rule_true(Label::DelimLeaf, sub, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        let inf = infer(&p);
        assert_eq!(inf.class, TwClass::TwL);
        assert!(!inf.fits(TwClass::TwR), "TwL and TwR are incomparable");
        assert!(certify(&p, TwClass::Tw).is_err());
        assert!(certify(&p, TwClass::TwL).is_ok());
    }

    #[test]
    fn multi_lookahead_forces_relational_storage() {
        let (mut b, q0, qf) = tw_base();
        let sub = b.state("sub");
        let x1 = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(qf, selectors::descendants(), sub, x1),
        );
        b.rule_true(Label::DelimLeaf, sub, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        let inf = infer(&p);
        assert_eq!(inf.class, TwClass::TwRL);
        assert_eq!(inf.storage, StorageUse::Relational);
    }

    #[test]
    fn inference_agrees_with_classify_on_crafted_programs() {
        let (mut b, q0, qf) = tw_base();
        let x1 = b.unary_register();
        let a = twq_tree::AttrId(0);
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Update(qf, eq(v(0), attr(a)), x1),
        );
        let p = b.build().unwrap();
        assert_eq!(infer(&p).class, p.classify());
    }
}
