//! Structured diagnostics: every analysis pass reports its findings as
//! [`Diagnostic`] values — severity, a stable code, a location into the
//! program's states/rules/registers, a message, and a fix hint — so the
//! same finding renders as a human-readable line, a table row, or a JSONL
//! record without the pass knowing which.
//!
//! ## Code taxonomy
//!
//! | prefix | pass | codes |
//! |--------|------|-------|
//! | `DS` | control flow (dead states/rules) | `DS001` unreachable state, `DS002` state cannot reach the final state, `DS003` final state unreachable |
//! | `OV` | guard overlap | `OV001` overlapping guards (witness), `OV002` exclusivity unproven, `OV003` unsatisfiable guard |
//! | `RG` | store analysis | `RG001` register written but never read, `RG002` register read but never written, `RG003` relation arity mismatch at use |
//! | `PR` | progress | `PR001` stay-loop (definite divergence), `PR002` head-pinned cycle with store growth, `PR003` relational growth in a cycle |
//! | `CL` | class inference | `CL001` class violation against a required class |

use std::fmt;

use twq_automata::{State, TwProgram};
use twq_logic::RegId;
use twq_obs::Json;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: worth knowing, nothing need change.
    Info,
    /// The program very likely does not mean this (dead code, guaranteed
    /// rejection, wasted work).
    Warning,
    /// The program is wrong for its intended use (always-false atom,
    /// class violation); evaluators reject on these.
    Error,
}

impl Severity {
    /// Lower-case name, as printed and serialized.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the program a finding points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// The program as a whole.
    Program,
    /// A state.
    State(State),
    /// A rule, by index into [`TwProgram::rules`].
    Rule(usize),
    /// Two rules that interact (overlap analysis).
    RulePair(usize, usize),
    /// A register.
    Register(RegId),
}

impl Loc {
    /// Render the location against the program it points into.
    pub fn render(&self, prog: &TwProgram) -> String {
        match *self {
            Loc::Program => "program".to_owned(),
            Loc::State(q) => format!("state {}", prog.state_name(q)),
            Loc::Rule(i) => format!(
                "rule #{i} (state {})",
                prog.state_name(prog.rules()[i].state)
            ),
            Loc::RulePair(i, j) => format!(
                "rules #{i}/#{j} (state {})",
                prog.state_name(prog.rules()[i].state)
            ),
            Loc::Register(r) => format!("register {r}"),
        }
    }
}

/// One finding from one analysis pass.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable taxonomy code (`DS001`, `OV003`, …); tests and allowlists
    /// key on this, never on message text.
    pub code: &'static str,
    /// Where the finding points.
    pub loc: Loc,
    /// What was found.
    pub message: String,
    /// How to fix it (or make it go away).
    pub hint: String,
}

impl Diagnostic {
    /// Construct a finding.
    pub fn new(
        severity: Severity,
        code: &'static str,
        loc: Loc,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            loc,
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// One human-readable line, e.g.
    /// `warning[DS001] state q3: unreachable from the initial state (prune() removes it)`.
    pub fn render(&self, prog: &TwProgram) -> String {
        format!(
            "{}[{}] {}: {} ({})",
            self.severity,
            self.code,
            self.loc.render(prog),
            self.message,
            self.hint
        )
    }

    /// The JSONL record for the finding, matching the obs sink format.
    pub fn to_json(&self, prog: &TwProgram) -> Json {
        Json::obj([
            ("severity", Json::str(self.severity.name())),
            ("code", Json::str(self.code)),
            ("loc", Json::str(self.loc.render(prog))),
            ("message", Json::str(self.message.clone())),
            ("hint", Json::str(self.hint.clone())),
        ])
    }
}

/// Count diagnostics at each severity: `(errors, warnings, infos)`.
pub fn severity_counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => c.0 += 1,
            Severity::Warning => c.1 += 1,
            Severity::Info => c.2 += 1,
        }
    }
    c
}
