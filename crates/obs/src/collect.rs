//! The [`Collector`] trait — the single instrumentation seam every
//! evaluator threads through its hot loop — and its two implementations.
//!
//! Evaluators are generic over `C: Collector` and monomorphize twice: the
//! [`NullCollector`] instantiation compiles every hook to an empty inline
//! body (`ENABLED = false` additionally gates the few call sites that
//! would have to *compute* an argument), so the uninstrumented path is
//! bit-for-bit the original loop. [`MetricsCollector`] pays for exactly
//! what it records.

use std::time::Instant;

use crate::event::{Event, FoEval, HaltKind};
use crate::metrics::RunMetrics;
use crate::registry::Registry;
use crate::sink::EventSink;

/// Instrumentation hooks. Every method has an empty default body; an
/// evaluator calls the hooks unconditionally (they cost nothing when
/// disabled) and checks [`Collector::ENABLED`] only where *preparing* a
/// hook's arguments would itself do work.
#[allow(unused_variables)]
pub trait Collector {
    /// Whether this collector observes anything. `false` lets evaluators
    /// skip argument preparation entirely.
    const ENABLED: bool = true;

    /// A computation chain started at `node` in `state` (`depth` 0 = the
    /// main computation).
    fn chain_enter(&mut self, node: u64, state: u32, depth: u32) {}

    /// A computation chain ended.
    fn chain_exit(&mut self, halt: HaltKind, depth: u32) {}

    /// One transition, taken at `node` in `state`.
    fn step(&mut self, node: u64, state: u32, depth: u32) {}

    /// An `atp` look-ahead began with `fanout` selected nodes.
    fn atp_enter(&mut self, node: u64, fanout: usize, depth: u32) {}

    /// The `atp` look-ahead ended.
    fn atp_exit(&mut self, depth: u32) {}

    /// The register store currently holds `tuples` tuples.
    fn store_size(&mut self, tuples: usize) {}

    /// A configuration was inserted into a cycle-check set now holding
    /// `tracked` entries.
    fn cycle_bookkeeping(&mut self, tracked: usize) {}

    /// A first-order evaluation primitive ran.
    fn fo_eval(&mut self, kind: FoEval) {}

    /// The work tape currently spans `cells` cells (`xTM` runs).
    fn tape_cells(&mut self, cells: usize) {}

    /// A protocol message of class `kind` was sent.
    fn message(&mut self, kind: &'static str) {}

    /// An FO quantifier began evaluating (`exists` is `false` for `∀`);
    /// `var` is the variable slot being bound.
    fn quant_enter(&mut self, exists: bool, var: u32) {}

    /// The quantifier resolved to `holds`. For a true `∃` (or false `∀`)
    /// `witness` is the node whose binding decided it.
    fn quant_exit(&mut self, holds: bool, witness: Option<u64>) {}

    /// An xpath axis step of the named kind began evaluating.
    fn axis_enter(&mut self, axis: &'static str) {}

    /// The axis step ended, producing `frontier` as its node set.
    fn axis_exit(&mut self, frontier: &[u64]) {}

    /// A selection primitive (atp look-ahead, FO `select`) chose `nodes`.
    /// Callers gate the argument build on [`Collector::ENABLED`].
    fn selected(&mut self, nodes: &[u64]) {}

    /// A resource guard tripped; `reason` is the rendered
    /// `twq-guard::TripReason` (e.g. "fuel budget exhausted (limit 100)").
    fn trip(&mut self, reason: &str) {}

    /// Bump a named counter by `delta`.
    fn counter(&mut self, name: &'static str, delta: u64) {}

    /// Bump a rewrite-phase counter by `delta`. Unlike [`Collector::counter`]
    /// (which lands under `run/<name>` in a session [`Registry`]), rewrite
    /// counters keep their full name verbatim — the `twq-rw` pass reports
    /// `rewrite/rules_fired/<rule>`, `rewrite/pruned_branches`, and
    /// `rewrite/certified_streamable` through this hook.
    fn rewrite_counter(&mut self, name: &'static str, delta: u64) {}

    /// Bump an index-layer counter by `delta`. Like
    /// [`Collector::rewrite_counter`], the name lands in the registry
    /// verbatim — the `twq-index` build and planner report
    /// `index/postings_bytes`, `index/plan_indexed`, `index/plan_walk`,
    /// `index/fallback`, and `index/cost_err_pct` through this hook.
    fn index_counter(&mut self, name: &'static str, delta: u64) {}

    /// A named phase finished after `nanos` nanoseconds of wall clock.
    fn phase(&mut self, name: &'static str, nanos: u64) {}

    /// The whole run ended.
    fn halt(&mut self, halt: HaltKind) {}
}

/// The zero-cost default: observes nothing, optimizes to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    const ENABLED: bool = false;
}

/// Records [`RunMetrics`] and optionally forwards every event to a sink
/// and named counters/phases into a session [`Registry`].
#[derive(Default)]
pub struct MetricsCollector<'s> {
    /// The metrics accumulated so far.
    pub metrics: RunMetrics,
    sink: Option<&'s mut dyn EventSink>,
    registry: Option<&'s mut Registry>,
}

impl std::fmt::Debug for MetricsCollector<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsCollector")
            .field("metrics", &self.metrics)
            .field("sink", &self.sink.is_some())
            .field("registry", &self.registry.is_some())
            .finish()
    }
}

impl<'s> MetricsCollector<'s> {
    /// Metrics only, no event forwarding.
    pub fn new() -> MetricsCollector<'static> {
        MetricsCollector {
            metrics: RunMetrics::new(),
            sink: None,
            registry: None,
        }
    }

    /// Metrics plus event forwarding into `sink`.
    pub fn with_sink(sink: &'s mut dyn EventSink) -> MetricsCollector<'s> {
        MetricsCollector {
            metrics: RunMetrics::new(),
            sink: Some(sink),
            registry: None,
        }
    }

    /// Metrics plus session-level aggregation into `registry`: named
    /// counters land under `run/<name>`, phase durations under
    /// `phase/<name>` (as nanosecond histograms). Combine with a sink via
    /// [`MetricsCollector::and_registry`].
    pub fn with_registry(registry: &'s mut Registry) -> MetricsCollector<'s> {
        MetricsCollector {
            metrics: RunMetrics::new(),
            sink: None,
            registry: Some(registry),
        }
    }

    /// Attach a registry to an existing collector (builder-style).
    pub fn and_registry(mut self, registry: &'s mut Registry) -> MetricsCollector<'s> {
        self.registry = Some(registry);
        self
    }

    /// Consume the collector, returning the metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    fn emit(&mut self, ev: Event) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(&ev);
        }
    }
}

impl Collector for MetricsCollector<'_> {
    fn chain_enter(&mut self, node: u64, state: u32, depth: u32) {
        self.metrics.chains += 1;
        if depth > 0 {
            self.metrics.subcomputations += 1;
        }
        self.metrics.max_atp_depth = self.metrics.max_atp_depth.max(depth);
        self.emit(Event::ChainEnter { depth, node, state });
    }

    fn chain_exit(&mut self, halt: HaltKind, depth: u32) {
        self.emit(Event::ChainExit { depth, halt });
    }

    fn step(&mut self, node: u64, state: u32, depth: u32) {
        self.metrics.steps += 1;
        let q = state as usize;
        if q >= self.metrics.steps_per_state.len() {
            self.metrics.steps_per_state.resize(q + 1, 0);
        }
        self.metrics.steps_per_state[q] += 1;
        self.emit(Event::Step { depth, node, state });
    }

    fn atp_enter(&mut self, node: u64, fanout: usize, depth: u32) {
        self.metrics.atp_calls += 1;
        self.metrics.max_atp_fanout = self.metrics.max_atp_fanout.max(fanout);
        self.emit(Event::AtpEnter {
            depth,
            node,
            fanout: u32::try_from(fanout).unwrap_or(u32::MAX),
        });
    }

    fn atp_exit(&mut self, depth: u32) {
        self.emit(Event::AtpExit { depth });
    }

    fn store_size(&mut self, tuples: usize) {
        self.metrics.max_store_tuples = self.metrics.max_store_tuples.max(tuples);
    }

    fn cycle_bookkeeping(&mut self, tracked: usize) {
        self.metrics.cycle_inserts += 1;
        self.metrics.max_tracked_configs = self.metrics.max_tracked_configs.max(tracked);
    }

    fn fo_eval(&mut self, kind: FoEval) {
        self.metrics.fo_evals[kind as usize] += 1;
        self.emit(Event::Fo { kind });
    }

    fn tape_cells(&mut self, cells: usize) {
        self.metrics.max_tape_cells = self.metrics.max_tape_cells.max(cells);
    }

    fn message(&mut self, kind: &'static str) {
        self.metrics.messages += 1;
        self.emit(Event::Message { kind });
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.metrics.counters.entry(name).or_insert(0) += delta;
        if let Some(reg) = self.registry.as_deref_mut() {
            reg.counter_add(&format!("run/{name}"), delta);
        }
    }

    fn rewrite_counter(&mut self, name: &'static str, delta: u64) {
        *self.metrics.counters.entry(name).or_insert(0) += delta;
        if let Some(reg) = self.registry.as_deref_mut() {
            reg.counter_add(name, delta);
        }
    }

    fn index_counter(&mut self, name: &'static str, delta: u64) {
        *self.metrics.counters.entry(name).or_insert(0) += delta;
        if let Some(reg) = self.registry.as_deref_mut() {
            reg.counter_add(name, delta);
        }
    }

    fn phase(&mut self, name: &'static str, nanos: u64) {
        self.metrics.phases.push((name, nanos));
        if let Some(reg) = self.registry.as_deref_mut() {
            reg.hist_record(&format!("phase/{name}"), nanos);
        }
        self.emit(Event::Phase { name, nanos });
    }

    fn halt(&mut self, halt: HaltKind) {
        self.metrics.halt = Some(halt);
    }
}

/// Times a phase and reports it to a collector on [`PhaseTimer::stop`].
#[derive(Debug)]
pub struct PhaseTimer {
    name: &'static str,
    start: Instant,
}

impl PhaseTimer {
    /// Start the clock.
    pub fn start(name: &'static str) -> Self {
        PhaseTimer {
            name,
            start: Instant::now(),
        }
    }

    /// Stop the clock and record the phase.
    pub fn stop<C: Collector>(self, c: &mut C) {
        c.phase(
            self.name,
            self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    /// Drive both collectors through the same synthetic run shape.
    fn drive<C: Collector>(c: &mut C) {
        c.chain_enter(0, 0, 0);
        c.step(0, 0, 0);
        c.fo_eval(FoEval::Guard);
        c.atp_enter(0, 2, 0);
        for _ in 0..2 {
            c.chain_enter(5, 1, 1);
            c.step(5, 1, 1);
            c.store_size(4);
            c.cycle_bookkeeping(1);
            c.chain_exit(HaltKind::Accept, 1);
        }
        c.atp_exit(0);
        c.step(0, 2, 0);
        c.counter("demo", 3);
        c.message("config");
        c.chain_exit(HaltKind::Accept, 0);
        c.halt(HaltKind::Accept);
    }

    #[test]
    fn metrics_collector_tallies() {
        let mut c = MetricsCollector::new();
        drive(&mut c);
        let m = c.into_metrics();
        assert_eq!(m.steps, 4);
        assert_eq!(m.steps_per_state, vec![1, 2, 1]);
        assert_eq!(m.chains, 3);
        assert_eq!(m.subcomputations, 2);
        assert_eq!(m.atp_calls, 1);
        assert_eq!(m.max_atp_depth, 1);
        assert_eq!(m.max_atp_fanout, 2);
        assert_eq!(m.max_store_tuples, 4);
        assert_eq!(m.cycle_inserts, 2);
        assert_eq!(m.fo(FoEval::Guard), 1);
        assert_eq!(m.counter("demo"), 3);
        assert_eq!(m.messages, 1);
        assert_eq!(m.halt, Some(HaltKind::Accept));
        assert_eq!(m.top_states(1), vec![(1, 2)]);
    }

    // The zero-cost contract, checked at compile time.
    const _: () = assert!(!NullCollector::ENABLED);
    const _: () = assert!(MetricsCollector::<'static>::ENABLED);

    #[test]
    fn null_collector_is_inert() {
        let mut c = NullCollector;
        drive(&mut c); // must compile and do nothing
    }

    #[test]
    fn events_flow_into_the_sink() {
        let mut ring = RingBufferSink::new(64);
        let mut c = MetricsCollector::with_sink(&mut ring);
        drive(&mut c);
        let steps = c.metrics.steps;
        drop(c);
        assert!(!ring.is_empty());
        assert_eq!(
            ring.events()
                .filter(|e| matches!(e, Event::Step { .. }))
                .count() as u64,
            steps
        );
    }

    #[test]
    fn registry_receives_counters_and_phases() {
        let mut reg = Registry::new();
        let mut c = MetricsCollector::with_registry(&mut reg);
        drive(&mut c);
        c.phase("run", 1234);
        drop(c);
        assert_eq!(reg.counter("run/demo"), 3);
        let h = reg.hist("phase/run").expect("phase recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(1234));
    }

    #[test]
    fn index_counters_keep_verbatim_names() {
        let mut reg = Registry::new();
        let mut c = MetricsCollector::with_registry(&mut reg);
        c.index_counter("index/postings_bytes", 640);
        c.index_counter("index/plan_indexed", 1);
        c.index_counter("index/plan_indexed", 1);
        let m = c.into_metrics();
        assert_eq!(m.counters.get("index/postings_bytes"), Some(&640));
        assert_eq!(reg.counter("index/plan_indexed"), 2);
        // No `run/` prefix: index counters land verbatim like rewrite ones.
        assert_eq!(reg.counter("run/index/plan_indexed"), 0);
    }

    #[test]
    fn fo_events_reach_the_sink() {
        let mut ring = RingBufferSink::new(64);
        let mut c = MetricsCollector::with_sink(&mut ring);
        drive(&mut c);
        drop(c);
        assert_eq!(
            ring.events()
                .filter(|e| matches!(e, Event::Fo { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn phase_timer_records() {
        let mut c = MetricsCollector::new();
        let t = PhaseTimer::start("unit");
        t.stop(&mut c);
        assert_eq!(c.metrics.phases.len(), 1);
        assert_eq!(c.metrics.phases[0].0, "unit");
    }
}
