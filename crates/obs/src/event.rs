//! Structured run events: the span-style trace vocabulary shared by every
//! evaluator, fed to [`EventSink`](crate::sink::EventSink)s by an enabled
//! [`Collector`](crate::collect::Collector).

use crate::json::Json;

/// Why a run (or one computation chain) ended — the evaluator-neutral
/// union of the engines' halt enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HaltKind {
    /// The final/accepting state was reached.
    Accept,
    /// No rule applied (includes moves off the tree or tape).
    Stuck,
    /// A configuration repeated.
    Cycle,
    /// Several rules applied in a deterministic run.
    Nondeterministic,
    /// A subcomputation rejected, rejecting the whole computation.
    SubRejected,
    /// The step budget was exhausted.
    StepLimit,
    /// The `atp` nesting budget was exhausted.
    AtpDepthLimit,
    /// The tape-space budget was exhausted (`xTM` runs).
    SpaceLimit,
}

impl HaltKind {
    /// A stable lowercase name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            HaltKind::Accept => "accept",
            HaltKind::Stuck => "stuck",
            HaltKind::Cycle => "cycle",
            HaltKind::Nondeterministic => "nondeterministic",
            HaltKind::SubRejected => "sub_rejected",
            HaltKind::StepLimit => "step_limit",
            HaltKind::AtpDepthLimit => "atp_depth_limit",
            HaltKind::SpaceLimit => "space_limit",
        }
    }

    /// Whether this halt means acceptance.
    pub fn accepted(self) -> bool {
        self == HaltKind::Accept
    }
}

/// Which first-order evaluation primitive was invoked. Each evaluator
/// reports the primitives it actually exercises;
/// [`RunMetrics`](crate::metrics::RunMetrics) tallies them per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FoEval {
    /// A rule-guard sentence over the store (`eval_guard`).
    Guard,
    /// A store-update query (`eval_query`).
    Update,
    /// An `atp` node-selection (`φ.select`).
    Select,
    /// One tree-atom evaluation inside the FO model checker.
    Atom,
    /// A full FO sentence check (`eval_sentence`).
    Sentence,
    /// One recursive XPath path-evaluation call.
    Path,
    /// One XPath filter-predicate check.
    Pred,
}

impl FoEval {
    /// Number of variants (sizes the per-kind counter array).
    pub const COUNT: usize = 7;

    /// All variants, in counter-index order.
    pub const ALL: [FoEval; FoEval::COUNT] = [
        FoEval::Guard,
        FoEval::Update,
        FoEval::Select,
        FoEval::Atom,
        FoEval::Sentence,
        FoEval::Path,
        FoEval::Pred,
    ];

    /// A stable lowercase name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FoEval::Guard => "guard",
            FoEval::Update => "update",
            FoEval::Select => "select",
            FoEval::Atom => "atom",
            FoEval::Sentence => "sentence",
            FoEval::Path => "path",
            FoEval::Pred => "pred",
        }
    }
}

/// One structured trace event. Events are `Copy` so the ring-buffer sink
/// can retain the last `N` of a multi-million-step run for free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A computation chain started (`depth` 0 is the main computation;
    /// deeper chains are `atp` subcomputations).
    ChainEnter {
        /// `atp` nesting depth.
        depth: u32,
        /// Node the chain starts on.
        node: u64,
        /// State the chain starts in.
        state: u32,
    },
    /// A computation chain ended.
    ChainExit {
        /// `atp` nesting depth.
        depth: u32,
        /// How the chain ended.
        halt: HaltKind,
    },
    /// One transition of the walking loop.
    Step {
        /// `atp` nesting depth.
        depth: u32,
        /// Node before the step.
        node: u64,
        /// State before the step.
        state: u32,
    },
    /// An `atp` look-ahead began: `fanout` subcomputations will run.
    AtpEnter {
        /// `atp` nesting depth of the *caller*.
        depth: u32,
        /// Node the `atp` was issued from.
        node: u64,
        /// Number of nodes `φ` selected.
        fanout: u32,
    },
    /// The `atp` look-ahead finished and the caller resumed.
    AtpExit {
        /// `atp` nesting depth of the caller.
        depth: u32,
    },
    /// A first-order evaluation primitive ran.
    Fo {
        /// Which primitive.
        kind: FoEval,
    },
    /// A protocol message was sent.
    Message {
        /// Message kind (the `Δ` alphabet class).
        kind: &'static str,
    },
    /// A named phase completed.
    Phase {
        /// Phase name.
        name: &'static str,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
    },
}

impl Event {
    /// The event as a JSON object (one JSONL record).
    pub fn to_json(&self) -> Json {
        match *self {
            Event::ChainEnter { depth, node, state } => Json::obj([
                ("ev", Json::str("chain_enter")),
                ("depth", depth.into()),
                ("node", node.into()),
                ("state", state.into()),
            ]),
            Event::ChainExit { depth, halt } => Json::obj([
                ("ev", Json::str("chain_exit")),
                ("depth", depth.into()),
                ("halt", Json::str(halt.name())),
            ]),
            Event::Step { depth, node, state } => Json::obj([
                ("ev", Json::str("step")),
                ("depth", depth.into()),
                ("node", node.into()),
                ("state", state.into()),
            ]),
            Event::AtpEnter {
                depth,
                node,
                fanout,
            } => Json::obj([
                ("ev", Json::str("atp_enter")),
                ("depth", depth.into()),
                ("node", node.into()),
                ("fanout", fanout.into()),
            ]),
            Event::AtpExit { depth } => {
                Json::obj([("ev", Json::str("atp_exit")), ("depth", depth.into())])
            }
            Event::Fo { kind } => Json::obj([
                ("ev", Json::str("fo_eval")),
                ("kind", Json::str(kind.name())),
            ]),
            Event::Message { kind } => {
                Json::obj([("ev", Json::str("message")), ("kind", Json::str(kind))])
            }
            Event::Phase { name, nanos } => Json::obj([
                ("ev", Json::str("phase")),
                ("name", Json::str(name)),
                ("nanos", nanos.into()),
            ]),
        }
    }

    /// One human-readable line, indented by span depth.
    pub fn render(&self) -> String {
        match *self {
            Event::ChainEnter { depth, node, state } => format!(
                "{}> chain @ node {node}, state {state}",
                "  ".repeat(depth as usize)
            ),
            Event::ChainExit { depth, halt } => {
                format!("{}< chain: {}", "  ".repeat(depth as usize), halt.name())
            }
            Event::Step { depth, node, state } => format!(
                "{}. step @ node {node}, state {state}",
                "  ".repeat(depth as usize)
            ),
            Event::AtpEnter {
                depth,
                node,
                fanout,
            } => format!(
                "{}> atp @ node {node}, fanout {fanout}",
                "  ".repeat(depth as usize)
            ),
            Event::AtpExit { depth } => format!("{}< atp", "  ".repeat(depth as usize)),
            Event::Fo { kind } => format!("# fo {}", kind.name()),
            Event::Message { kind } => format!("# msg {kind}"),
            Event::Phase { name, nanos } => format!("# phase {name}: {nanos} ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(HaltKind::SubRejected.name(), "sub_rejected");
        assert!(HaltKind::Accept.accepted());
        assert!(!HaltKind::Cycle.accepted());
        for (i, k) in FoEval::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{k:?} out of order");
        }
    }

    #[test]
    fn event_json_has_tag() {
        let ev = Event::AtpEnter {
            depth: 1,
            node: 7,
            fanout: 3,
        };
        let j = ev.to_json();
        assert_eq!(j.get("ev").and_then(Json::as_str), Some("atp_enter"));
        assert_eq!(j.get("fanout").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn render_indents_by_depth() {
        let ev = Event::Step {
            depth: 2,
            node: 4,
            state: 1,
        };
        assert!(ev.render().starts_with("    . step"));
    }
}
