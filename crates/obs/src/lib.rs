//! `twq-obs`: unified observability for every `twq` evaluator.
//!
//! The paper's results are statements about *resources* — steps, store
//! cardinalities, look-ahead depth, message counts. This crate gives every
//! evaluator one instrumentation seam to measure them:
//!
//! * [`Collector`] — the hook trait threaded through the hot loops.
//!   [`NullCollector`] (`ENABLED = false`) monomorphizes to the
//!   uninstrumented loop at zero cost; [`MetricsCollector`] records
//!   [`RunMetrics`] and optionally forwards span-style [`Event`]s to a
//!   sink.
//! * [`RunMetrics`] — steps per state, `atp` depth and fan-out,
//!   register-store and cycle-check high-water marks, FO-evaluation call
//!   counts, tape cells, protocol messages, phase timings.
//! * Sinks — [`HumanSink`] (readable trace), [`JsonlSink`] (one JSON
//!   object per event), [`RingBufferSink`] (the last `N` events, for
//!   post-mortems of `Stuck`/`Nondeterministic` halts).
//! * `twq-prof` — the profiling layer on top of the seam:
//!   [`Histogram`]/[`DenseHistogram`] (log2-bucketed latencies, exact
//!   value counts), [`Registry`] (named counters/gauges/histograms with
//!   delta [`Snapshot`]s and JSONL export), and [`FlameProfiler`] (a
//!   span-stack self-time profiler over the event stream emitting
//!   flamegraph-collapsed stacks).
//! * `twq-trace` — the causal trace layer: [`TraceCollector`] records a
//!   run as a [`Trace`] span tree with deterministic causal IDs, witness
//!   valuations, and walk paths; [`diff`] pinpoints the first
//!   [`Divergence`] between two traces of the same input; and
//!   [`explain_verdict`] answers "why accepted / why rejected".
//! * [`report`] — the experiment reporting layer: the same stream of
//!   tables rendered as aligned text or as JSON Lines.
//! * [`json`] — a small self-contained JSON value/writer/parser (the
//!   build environment is offline, so no `serde_json`).
//!
//! The crate deliberately depends on nothing, not even the other `twq`
//! crates: evaluators describe themselves in primitive terms (state ids,
//! node indices, halt kinds), so `twq-obs` sits below every other crate
//! in the dependency order.

#![warn(missing_docs)]

pub mod collect;
pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod report;
pub mod sink;
pub mod trace;

pub use collect::{Collector, MetricsCollector, NullCollector, PhaseTimer};
pub use event::{Event, FoEval, HaltKind};
pub use hist::{DenseHistogram, Histogram};
pub use json::Json;
pub use metrics::RunMetrics;
pub use profile::{FlameProfiler, Frame};
pub use registry::{Registry, Snapshot};
pub use report::{col, Cell, Col, HumanReporter, JsonlReporter, Reporter};
pub use sink::{EventSink, HumanSink, JsonlSink, RingBufferSink, TeeSink};
pub use trace::{
    diff, explain_verdict, Divergence, Namer, Span, SpanKind, Trace, TraceCollector, TraceDepth,
    Verdict,
};
