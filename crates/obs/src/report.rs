//! The experiment reporting layer: one stream of `experiment` / `note` /
//! `table` / `row` calls, rendered either as the classic human-readable
//! tables or as machine-readable JSON Lines (one record per row).

use crate::json::Json;

/// A table column: header text plus the column's print width.
#[derive(Debug, Clone)]
pub struct Col {
    /// Header text (also the JSON key for the column's values).
    pub name: &'static str,
    /// Minimum printed width; values are right-aligned into it.
    pub width: usize,
}

/// Shorthand [`Col`] constructor.
pub fn col(name: &'static str, width: usize) -> Col {
    Col { name, width }
}

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free-form text.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float printed (and serialized) with the given precision.
    Float(f64, usize),
    /// A boolean, printed as `true` / `false`.
    Bool(bool),
}

impl Cell {
    /// A text cell.
    pub fn str(s: impl Into<String>) -> Cell {
        Cell::Str(s.into())
    }

    /// An integer cell (callers cast; experiment counters fit `i64`).
    pub fn int(n: i64) -> Cell {
        Cell::Int(n)
    }

    /// A float cell with `prec` printed decimals.
    pub fn float(v: f64, prec: usize) -> Cell {
        Cell::Float(v, prec)
    }

    /// A boolean cell.
    pub fn bool(b: bool) -> Cell {
        Cell::Bool(b)
    }

    /// The human-readable text of the cell (unpadded).
    pub fn human(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(n) => n.to_string(),
            Cell::Float(v, prec) => format!("{v:.prec$}"),
            Cell::Bool(b) => b.to_string(),
        }
    }

    /// The JSON value of the cell. Floats are rounded to their printed
    /// precision so both outputs state the same number.
    pub fn json(&self) -> Json {
        match self {
            Cell::Str(s) => Json::Str(s.clone()),
            Cell::Int(n) => Json::Int(*n),
            Cell::Float(v, prec) => {
                let scale = 10f64.powi(*prec as i32);
                Json::Float((v * scale).round() / scale)
            }
            Cell::Bool(b) => Json::Bool(*b),
        }
    }
}

impl From<u64> for Cell {
    fn from(n: u64) -> Cell {
        Cell::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Cell {
    fn from(n: usize) -> Cell {
        Cell::from(n as u64)
    }
}

impl From<bool> for Cell {
    fn from(b: bool) -> Cell {
        Cell::Bool(b)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::str(s)
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Str(s)
    }
}

/// Receives the experiment stream. Implementations render it; experiment
/// code never formats output itself.
pub trait Reporter {
    /// A new experiment begins.
    fn experiment(&mut self, id: &str, claim: &str);
    /// A free-form context line within the current experiment.
    fn note(&mut self, text: &str);
    /// A new table begins; subsequent [`Reporter::row`] calls belong to
    /// it. `label` distinguishes multiple tables in one experiment.
    fn table(&mut self, label: Option<&str>, indent: usize, cols: &[Col]);
    /// One data row of the current table (same arity as its columns).
    fn row(&mut self, cells: &[Cell]);
}

/// Renders the stream as the classic aligned text tables.
#[derive(Debug, Default)]
pub struct HumanReporter {
    buf: Option<String>,
    cols: Vec<Col>,
    indent: usize,
}

impl HumanReporter {
    /// Print each line to stdout as it arrives.
    pub fn stdout() -> Self {
        HumanReporter {
            buf: None,
            ..Default::default()
        }
    }

    /// Collect output in memory (for tests).
    pub fn buffered() -> Self {
        HumanReporter {
            buf: Some(String::new()),
            ..Default::default()
        }
    }

    /// The buffered output (empty in stdout mode).
    pub fn output(&self) -> &str {
        self.buf.as_deref().unwrap_or("")
    }

    fn line(&mut self, text: &str) {
        match &mut self.buf {
            Some(buf) => {
                buf.push_str(text);
                buf.push('\n');
            }
            None => println!("{text}"),
        }
    }

    fn aligned(&self, parts: impl Iterator<Item = String>) -> String {
        let mut out = " ".repeat(self.indent);
        for (i, (part, col)) in parts.zip(&self.cols).enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{part:>width$}", width = col.width));
        }
        out
    }
}

impl Reporter for HumanReporter {
    fn experiment(&mut self, id: &str, claim: &str) {
        self.line(&format!("\n== {id} — {claim} =="));
    }

    fn note(&mut self, text: &str) {
        self.line(text);
    }

    fn table(&mut self, _label: Option<&str>, indent: usize, cols: &[Col]) {
        self.cols = cols.to_vec();
        self.indent = indent;
        let header = self.aligned(cols.iter().map(|c| c.name.to_owned()));
        self.line(&header);
    }

    fn row(&mut self, cells: &[Cell]) {
        debug_assert_eq!(cells.len(), self.cols.len(), "row arity mismatch");
        let line = self.aligned(cells.iter().map(Cell::human));
        self.line(&line);
    }
}

/// Renders the stream as JSON Lines. Record shapes:
///
/// * `{"type":"experiment","id":…,"claim":…}`
/// * `{"type":"note","experiment":…,"text":…}`
/// * `{"type":"row","experiment":…,"table":…|null,"values":{col:…}}`
#[derive(Debug, Default)]
pub struct JsonlReporter {
    buf: Option<String>,
    experiment: String,
    table: Option<String>,
    cols: Vec<&'static str>,
}

impl JsonlReporter {
    /// Print each record to stdout as it arrives.
    pub fn stdout() -> Self {
        JsonlReporter {
            buf: None,
            ..Default::default()
        }
    }

    /// Collect records in memory (for tests).
    pub fn buffered() -> Self {
        JsonlReporter {
            buf: Some(String::new()),
            ..Default::default()
        }
    }

    /// The buffered JSONL text (empty in stdout mode).
    pub fn output(&self) -> &str {
        self.buf.as_deref().unwrap_or("")
    }

    fn record(&mut self, value: Json) {
        let text = value.render();
        match &mut self.buf {
            Some(buf) => {
                buf.push_str(&text);
                buf.push('\n');
            }
            None => println!("{text}"),
        }
    }
}

impl Reporter for JsonlReporter {
    fn experiment(&mut self, id: &str, claim: &str) {
        self.experiment = id.to_owned();
        self.table = None;
        self.cols.clear();
        self.record(Json::obj([
            ("type", Json::str("experiment")),
            ("id", Json::str(id)),
            ("claim", Json::str(claim)),
        ]));
    }

    fn note(&mut self, text: &str) {
        self.record(Json::obj([
            ("type", Json::str("note")),
            ("experiment", Json::str(self.experiment.clone())),
            ("text", Json::str(text)),
        ]));
    }

    fn table(&mut self, label: Option<&str>, _indent: usize, cols: &[Col]) {
        self.table = label.map(str::to_owned);
        self.cols = cols.iter().map(|c| c.name).collect();
    }

    fn row(&mut self, cells: &[Cell]) {
        debug_assert_eq!(cells.len(), self.cols.len(), "row arity mismatch");
        let values: Vec<(String, Json)> = self
            .cols
            .iter()
            .zip(cells)
            .map(|(&name, cell)| (name.to_owned(), cell.json()))
            .collect();
        self.record(Json::obj([
            ("type", Json::str("row")),
            ("experiment", Json::str(self.experiment.clone())),
            (
                "table",
                match &self.table {
                    Some(l) => Json::str(l.clone()),
                    None => Json::Null,
                },
            ),
            ("values", Json::Obj(values)),
        ]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(r: &mut impl Reporter) {
        r.experiment("E0", "a demo claim");
        r.note("context line");
        r.table(None, 0, &[col("n", 6), col("agree", 7)]);
        r.row(&[Cell::int(20), Cell::bool(true)]);
        r.table(Some("second"), 2, &[col("k", 4), col("share", 8)]);
        r.row(&[Cell::int(1), Cell::float(0.525, 2)]);
    }

    #[test]
    fn human_renders_aligned_tables() {
        let mut r = HumanReporter::buffered();
        feed(&mut r);
        let out = r.output();
        assert!(out.contains("\n== E0 — a demo claim =="), "{out}");
        assert!(out.contains("     n   agree"), "{out}");
        assert!(out.contains("    20    true"), "{out}");
        // The second table is indented by two spaces.
        assert!(out.contains("\n     k    share"), "{out}");
        assert!(out.contains("\n     1     0.53"), "{out}");
    }

    #[test]
    fn jsonl_emits_one_record_per_row() {
        let mut r = JsonlReporter::buffered();
        feed(&mut r);
        let lines: Vec<&str> = r.output().lines().collect();
        assert_eq!(lines.len(), 4); // experiment + note + 2 rows
        let rows: Vec<Json> = lines
            .iter()
            .map(|l| Json::parse(l).expect("valid JSONL"))
            .filter(|j| j.get("type").and_then(Json::as_str) == Some("row"))
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("table"), Some(&Json::Null));
        assert_eq!(
            rows[0]
                .get("values")
                .and_then(|v| v.get("n"))
                .and_then(Json::as_i64),
            Some(20)
        );
        assert_eq!(rows[1].get("table").and_then(Json::as_str), Some("second"));
        // Floats are rounded to their printed precision.
        assert_eq!(
            rows[1].get("values").and_then(|v| v.get("share")),
            Some(&Json::Float(0.53))
        );
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from(7usize), Cell::Int(7));
        assert_eq!(Cell::from("x").human(), "x");
        assert_eq!(Cell::float(1.005, 1).human(), "1.0");
        assert_eq!(Cell::bool(false).json(), Json::Bool(false));
    }
}
