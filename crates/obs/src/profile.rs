//! A span-stack self-time profiler over the trace [`Event`] stream.
//!
//! [`FlameProfiler`] is an [`EventSink`]: attach it to a
//! [`MetricsCollector`](crate::collect::MetricsCollector) and it folds the
//! run's events into *self-weight per span stack* — the exact shape
//! flamegraph tools consume. The stack vocabulary is the walking model's
//! own: a frame per computation chain (named by its entry state), a frame
//! per `atp` look-ahead, and leaf frames for first-order evaluation
//! primitives. Weights are deterministic sample counts (one per engine
//! step or FO primitive), not wall-clock, so profiles of deterministic
//! runs are byte-identical across machines and worker counts.

use std::collections::BTreeMap;

use crate::event::{Event, FoEval};
use crate::sink::EventSink;

/// One frame of the span stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Frame {
    /// A computation chain, named by the state it started in.
    Chain(u32),
    /// An `atp` look-ahead span.
    Atp,
    /// A first-order evaluation primitive (leaf frames only).
    Fo(FoEval),
}

impl Frame {
    /// Render one frame with `namer` resolving state ids to names.
    fn render(&self, namer: &dyn Fn(u32) -> String) -> String {
        match *self {
            Frame::Chain(q) => namer(q),
            Frame::Atp => "atp".to_owned(),
            Frame::Fo(kind) => format!("fo_{}", kind.name()),
        }
    }
}

/// The default state renderer: `state<id>`.
fn default_namer(q: u32) -> String {
    format!("state{q}")
}

/// Folds a trace into collapsed-stack self weights.
///
/// Feed it events (it is an [`EventSink`]), then render with
/// [`FlameProfiler::collapsed`] (flamegraph-collapsed lines, sorted) or
/// rank with [`FlameProfiler::top_self`].
#[derive(Debug, Clone, Default)]
pub struct FlameProfiler {
    stack: Vec<Frame>,
    weights: BTreeMap<Vec<Frame>, u64>,
    /// Wall-clock phase totals (`name → nanos`), kept apart from the
    /// sample-weighted stacks because the units differ.
    phases: BTreeMap<&'static str, u64>,
    total: u64,
}

impl FlameProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total samples attributed so far.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Whether any samples were attributed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Wall-clock phase totals observed in the stream, in name order.
    pub fn phase_nanos(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.phases.iter().map(|(&k, &v)| (k, v))
    }

    fn bump(&mut self, stack: Vec<Frame>, w: u64) {
        *self.weights.entry(stack).or_insert(0) += w;
        self.total += w;
    }

    /// Flamegraph-collapsed lines (`frame;frame;frame weight`), sorted by
    /// stack for deterministic output, with `namer` resolving state ids.
    /// Prepend `prefix` (plus `;`) to every line when non-empty — used to
    /// tag stacks with their experiment id when several runs share a file.
    pub fn collapsed_with(&self, prefix: &str, namer: impl Fn(u32) -> String) -> String {
        let mut out = String::new();
        for (stack, &w) in &self.weights {
            if !prefix.is_empty() {
                out.push_str(prefix);
                out.push(';');
            }
            if stack.is_empty() {
                out.push_str("(root)");
            } else {
                for (i, f) in stack.iter().enumerate() {
                    if i > 0 {
                        out.push(';');
                    }
                    out.push_str(&f.render(&namer));
                }
            }
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// [`FlameProfiler::collapsed_with`] with the default `state<id>`
    /// names and no prefix.
    pub fn collapsed(&self) -> String {
        self.collapsed_with("", default_namer)
    }

    /// The `k` stacks with the most self weight, descending (ties broken
    /// by stack order), rendered with `namer`.
    pub fn top_self(&self, k: usize, namer: impl Fn(u32) -> String) -> Vec<(String, u64)> {
        let mut ranked: Vec<(&Vec<Frame>, u64)> =
            self.weights.iter().map(|(s, &w)| (s, w)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        ranked.truncate(k);
        ranked
            .into_iter()
            .map(|(stack, w)| {
                let name = if stack.is_empty() {
                    "(root)".to_owned()
                } else {
                    stack
                        .iter()
                        .map(|f| f.render(&namer))
                        .collect::<Vec<_>>()
                        .join(";")
                };
                (name, w)
            })
            .collect()
    }
}

impl EventSink for FlameProfiler {
    fn emit(&mut self, ev: &Event) {
        match *ev {
            Event::ChainEnter { state, .. } => self.stack.push(Frame::Chain(state)),
            Event::ChainExit { .. } => {
                // Pop through any dangling atp frames to the chain's own.
                while let Some(f) = self.stack.pop() {
                    if matches!(f, Frame::Chain(_)) {
                        break;
                    }
                }
            }
            Event::AtpEnter { .. } => self.stack.push(Frame::Atp),
            Event::AtpExit { .. } => {
                if self.stack.last() == Some(&Frame::Atp) {
                    self.stack.pop();
                }
            }
            Event::Step { .. } => self.bump(self.stack.clone(), 1),
            Event::Fo { kind } => {
                let mut stack = self.stack.clone();
                stack.push(Frame::Fo(kind));
                self.bump(stack, 1);
            }
            Event::Phase { name, nanos } => *self.phases.entry(name).or_insert(0) += nanos,
            Event::Message { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HaltKind;

    /// A synthetic run: 2 steps in the main chain, an atp spawning one
    /// subchain with 1 step and an FO guard check, then 1 more main step.
    fn drive(p: &mut FlameProfiler) {
        let evs = [
            Event::ChainEnter {
                depth: 0,
                node: 0,
                state: 0,
            },
            Event::Step {
                depth: 0,
                node: 0,
                state: 0,
            },
            Event::Step {
                depth: 0,
                node: 1,
                state: 0,
            },
            Event::AtpEnter {
                depth: 0,
                node: 1,
                fanout: 1,
            },
            Event::ChainEnter {
                depth: 1,
                node: 2,
                state: 3,
            },
            Event::Step {
                depth: 1,
                node: 2,
                state: 3,
            },
            Event::Fo {
                kind: FoEval::Guard,
            },
            Event::ChainExit {
                depth: 1,
                halt: HaltKind::Accept,
            },
            Event::AtpExit { depth: 0 },
            Event::Step {
                depth: 0,
                node: 1,
                state: 1,
            },
            Event::Phase {
                name: "run",
                nanos: 42,
            },
            Event::ChainExit {
                depth: 0,
                halt: HaltKind::Accept,
            },
        ];
        for ev in evs {
            p.emit(&ev);
        }
    }

    #[test]
    fn collapsed_stacks_attribute_self_time() {
        let mut p = FlameProfiler::new();
        drive(&mut p);
        assert_eq!(p.total_weight(), 5);
        let out = p.collapsed();
        assert_eq!(
            out,
            "state0 3\nstate0;atp;state3 1\nstate0;atp;state3;fo_guard 1\n"
        );
        assert_eq!(p.phase_nanos().collect::<Vec<_>>(), vec![("run", 42)]);
    }

    #[test]
    fn prefix_and_namer() {
        let mut p = FlameProfiler::new();
        drive(&mut p);
        let out = p.collapsed_with("E1", |q| format!("q{q}"));
        assert!(out.starts_with("E1;q0 3\n"), "{out}");
        assert!(out.contains("E1;q0;atp;q3;fo_guard 1"), "{out}");
    }

    #[test]
    fn top_self_ranks() {
        let mut p = FlameProfiler::new();
        drive(&mut p);
        let top = p.top_self(2, default_namer);
        assert_eq!(top[0], ("state0".to_owned(), 3));
        assert_eq!(top[1].1, 1);
        assert_eq!(p.top_self(10, default_namer).len(), 3);
    }

    #[test]
    fn stack_is_balanced_after_a_run() {
        let mut p = FlameProfiler::new();
        drive(&mut p);
        assert!(p.stack.is_empty(), "chain/atp spans must balance");
        // A second run folds into the same profile.
        drive(&mut p);
        assert_eq!(p.total_weight(), 10);
    }
}
