//! Causal run traces: every run reconstructed as a span tree.
//!
//! A [`Trace`] records one evaluator run as a tree of [`Span`]s. Each span
//! is addressed by a *causal ID* — the ordinal path from the root
//! (`r`, `r.0`, `r.0.2`, …) — which depends only on the order the
//! evaluator opened spans, never on worker scheduling: a single run is
//! always recorded on one thread, and batch traces are merged in item
//! index order (the `twq-exec::Pool::scoped` contract), so `--jobs 1`
//! and `--jobs N` produce byte-identical traces.
//!
//! Spans carry semantic provenance beyond structure: the walk path
//! through the engine (`steps`), atp look-ahead subtree verdicts, FO
//! quantifier witness valuations (`witness`), xpath axis-step node
//! frontiers (`frontier`), and guard-trip context (`note`).
//!
//! [`diff`] aligns two traces of the same (program, tree) pair in
//! preorder and pinpoints the first divergent span as a [`Divergence`] —
//! the machine-readable payload the fuzz oracle embeds in repros.

use crate::collect::Collector;
use crate::event::HaltKind;
use crate::json::Json;

/// Default cap on attached spans per trace.
pub const DEFAULT_MAX_SPANS: usize = 1 << 16;
/// Default cap on recorded walk steps per span.
pub const DEFAULT_MAX_STEPS_PER_SPAN: usize = 1 << 12;

/// What a span represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole run (always the root).
    Run,
    /// A deterministic merge of per-item runs (batch root).
    Batch,
    /// One computation chain (depth 0 = the main computation).
    Chain {
        /// atp nesting depth.
        depth: u32,
        /// Start node.
        node: u64,
        /// Start state.
        state: u32,
    },
    /// An `atp` look-ahead over its selected subtree roots.
    Atp {
        /// The node the look-ahead was issued at.
        node: u64,
        /// Number of selected nodes.
        fanout: u32,
    },
    /// An FO quantifier evaluation.
    Quant {
        /// `true` for `∃`, `false` for `∀`.
        exists: bool,
        /// The variable slot being bound.
        var: u32,
    },
    /// An xpath axis step.
    Axis {
        /// Axis kind name (`child`, `descendant`, …).
        axis: String,
    },
    /// A resource-guard trip (leaf; `note` carries the reason).
    Trip,
}

impl SpanKind {
    fn name(&self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Batch => "batch",
            SpanKind::Chain { .. } => "chain",
            SpanKind::Atp { .. } => "atp",
            SpanKind::Quant { .. } => "quant",
            SpanKind::Axis { .. } => "axis",
            SpanKind::Trip => "trip",
        }
    }
}

/// How a span (or a whole trace) resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// An engine halt.
    Halt(HaltKind),
    /// A boolean outcome (FO truth, routed acceptance).
    Bool(bool),
    /// A resource guard tripped before a verdict.
    Trip,
}

impl Verdict {
    /// The acceptance this verdict implies, if it implies one.
    pub fn accepted(&self) -> Option<bool> {
        match self {
            Verdict::Halt(h) => Some(h.accepted()),
            Verdict::Bool(b) => Some(*b),
            Verdict::Trip => None,
        }
    }

    /// Whether two verdicts agree. Same-variant verdicts must be equal;
    /// a halt and a boolean agree iff they imply the same acceptance;
    /// a trip agrees only with a trip.
    pub fn agrees(&self, other: &Verdict) -> bool {
        match (self, other) {
            (Verdict::Halt(a), Verdict::Halt(b)) => a == b,
            (Verdict::Bool(a), Verdict::Bool(b)) => a == b,
            (Verdict::Trip, Verdict::Trip) => true,
            (Verdict::Trip, _) | (_, Verdict::Trip) => false,
            (a, b) => a.accepted() == b.accepted(),
        }
    }

    fn render(&self) -> String {
        match self {
            Verdict::Halt(h) => format!("halt={}", h.name()),
            Verdict::Bool(b) => format!("{b}"),
            Verdict::Trip => "trip".to_owned(),
        }
    }
}

/// One node of a trace: what happened, how it resolved, and its causal
/// children in the order the evaluator spawned them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What this span represents.
    pub kind: SpanKind,
    /// How it resolved (`None` for pure-structure spans like `Atp`).
    pub verdict: Option<Verdict>,
    /// The node whose binding decided a quantifier (witness for a true
    /// `∃`, counterexample for a false `∀`).
    pub witness: Option<u64>,
    /// The walk path `(node, state)` taken inside this span, capped at
    /// the collector's per-span step limit.
    pub steps: Vec<(u64, u32)>,
    /// Steps not recorded because the per-span cap was hit.
    pub steps_dropped: u64,
    /// Node frontier this span produced (atp selection, axis result).
    pub frontier: Vec<u64>,
    /// Free-form context (trip reason, batch item label).
    pub note: String,
    /// Child spans, in causal order.
    pub children: Vec<Span>,
}

impl Span {
    fn new(kind: SpanKind) -> Span {
        Span {
            kind,
            verdict: None,
            witness: None,
            steps: Vec::new(),
            steps_dropped: 0,
            frontier: Vec::new(),
            note: String::new(),
            children: Vec::new(),
        }
    }

    /// Total spans in this subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Span::size).sum::<usize>()
    }

    /// One-line rendering of the span head (no children).
    pub fn head(&self) -> String {
        self.head_with(&Namer::plain())
    }

    fn head_with(&self, namer: &Namer) -> String {
        let mut s = match &self.kind {
            SpanKind::Run => "run".to_owned(),
            SpanKind::Batch => format!("batch of {}", self.children.len()),
            SpanKind::Chain { depth, node, state } => format!(
                "chain d{depth} start=({}, {})",
                (namer.node)(*node),
                (namer.state)(*state)
            ),
            SpanKind::Atp { node, fanout } => {
                format!("atp @{} fanout={fanout}", (namer.node)(*node))
            }
            SpanKind::Quant { exists, var } => {
                format!("{}x{var}", if *exists { "∃" } else { "∀" })
            }
            SpanKind::Axis { axis } => format!("axis {axis}"),
            SpanKind::Trip => "trip".to_owned(),
        };
        if !self.steps.is_empty() {
            let total = self.steps.len() as u64 + self.steps_dropped;
            s.push_str(&format!(" [{total} step(s)]"));
        }
        if let Some(v) = &self.verdict {
            s.push_str(&format!(" → {}", v.render()));
        }
        if let Some(w) = self.witness {
            s.push_str(&format!(" witness={}", (namer.node)(w)));
        }
        if !self.frontier.is_empty() {
            let shown: Vec<String> = self
                .frontier
                .iter()
                .take(8)
                .map(|n| (namer.node)(*n))
                .collect();
            let ell = if self.frontier.len() > 8 { ", …" } else { "" };
            s.push_str(&format!(" frontier=[{}{}]", shown.join(","), ell));
        }
        if !self.note.is_empty() {
            s.push_str(&format!(" ({})", self.note));
        }
        s
    }

    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![("k", Json::str(self.kind.name()))];
        match &self.kind {
            SpanKind::Chain { depth, node, state } => {
                fields.push(("depth", Json::from(*depth)));
                fields.push(("node", Json::from(*node)));
                fields.push(("state", Json::from(*state)));
            }
            SpanKind::Atp { node, fanout } => {
                fields.push(("node", Json::from(*node)));
                fields.push(("fanout", Json::from(*fanout)));
            }
            SpanKind::Quant { exists, var } => {
                fields.push(("exists", Json::from(*exists)));
                fields.push(("var", Json::from(*var)));
            }
            SpanKind::Axis { axis } => fields.push(("axis", Json::str(axis.as_str()))),
            SpanKind::Run | SpanKind::Batch | SpanKind::Trip => {}
        }
        match &self.verdict {
            Some(Verdict::Halt(h)) => fields.push(("halt", Json::str(h.name()))),
            Some(Verdict::Bool(b)) => fields.push(("bool", Json::from(*b))),
            Some(Verdict::Trip) => fields.push(("tripped", Json::from(true))),
            None => {}
        }
        if let Some(w) = self.witness {
            fields.push(("witness", Json::from(w)));
        }
        if !self.steps.is_empty() {
            let steps: Vec<Json> = self
                .steps
                .iter()
                .flat_map(|(n, q)| [Json::from(*n), Json::from(*q)])
                .collect();
            fields.push(("steps", Json::Arr(steps)));
        }
        if self.steps_dropped > 0 {
            fields.push(("steps_dropped", Json::from(self.steps_dropped)));
        }
        if !self.frontier.is_empty() {
            let fr: Vec<Json> = self.frontier.iter().map(|n| Json::from(*n)).collect();
            fields.push(("frontier", Json::Arr(fr)));
        }
        if !self.note.is_empty() {
            fields.push(("note", Json::str(self.note.as_str())));
        }
        if !self.children.is_empty() {
            fields.push((
                "spans",
                Json::Arr(self.children.iter().map(Span::to_json).collect()),
            ));
        }
        Json::obj(fields)
    }

    fn from_json(j: &Json) -> Result<Span, String> {
        let kind_name = j
            .get("k")
            .and_then(Json::as_str)
            .ok_or_else(|| "span missing \"k\"".to_owned())?;
        let u64_field = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_i64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("{kind_name} span missing {key:?}"))
        };
        let kind = match kind_name {
            "run" => SpanKind::Run,
            "batch" => SpanKind::Batch,
            "chain" => SpanKind::Chain {
                depth: u64_field("depth")? as u32,
                node: u64_field("node")?,
                state: u64_field("state")? as u32,
            },
            "atp" => SpanKind::Atp {
                node: u64_field("node")?,
                fanout: u64_field("fanout")? as u32,
            },
            "quant" => SpanKind::Quant {
                exists: j.get("exists").and_then(Json::as_bool).unwrap_or(true),
                var: u64_field("var")? as u32,
            },
            "axis" => SpanKind::Axis {
                axis: j
                    .get("axis")
                    .and_then(Json::as_str)
                    .ok_or("axis span missing \"axis\"")?
                    .to_owned(),
            },
            "trip" => SpanKind::Trip,
            other => return Err(format!("unknown span kind {other:?}")),
        };
        let verdict = if let Some(h) = j.get("halt").and_then(Json::as_str) {
            Some(Verdict::Halt(halt_from_name(h)?))
        } else if let Some(b) = j.get("bool").and_then(Json::as_bool) {
            Some(Verdict::Bool(b))
        } else if j.get("tripped").and_then(Json::as_bool) == Some(true) {
            Some(Verdict::Trip)
        } else {
            None
        };
        let mut span = Span::new(kind);
        span.verdict = verdict;
        span.witness = j.get("witness").and_then(Json::as_i64).map(|v| v as u64);
        if let Some(arr) = j.get("steps").and_then(Json::as_arr) {
            if arr.len() % 2 != 0 {
                return Err("span \"steps\" must have even length".to_owned());
            }
            span.steps = arr
                .chunks(2)
                .map(|c| {
                    let n = c[0].as_i64().ok_or("non-integer step node")? as u64;
                    let q = c[1].as_i64().ok_or("non-integer step state")? as u32;
                    Ok((n, q))
                })
                .collect::<Result<_, String>>()?;
        }
        span.steps_dropped = j.get("steps_dropped").and_then(Json::as_i64).unwrap_or(0) as u64;
        if let Some(arr) = j.get("frontier").and_then(Json::as_arr) {
            span.frontier = arr
                .iter()
                .map(|v| {
                    v.as_i64()
                        .map(|n| n as u64)
                        .ok_or("non-integer frontier node")
                })
                .collect::<Result<_, _>>()?;
        }
        span.note = j
            .get("note")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned();
        if let Some(arr) = j.get("spans").and_then(Json::as_arr) {
            span.children = arr.iter().map(Span::from_json).collect::<Result<_, _>>()?;
        }
        Ok(span)
    }
}

fn halt_from_name(s: &str) -> Result<HaltKind, String> {
    Ok(match s {
        "accept" => HaltKind::Accept,
        "stuck" => HaltKind::Stuck,
        "cycle" => HaltKind::Cycle,
        "nondeterministic" => HaltKind::Nondeterministic,
        "sub_rejected" => HaltKind::SubRejected,
        "step_limit" => HaltKind::StepLimit,
        "atp_depth_limit" => HaltKind::AtpDepthLimit,
        "space_limit" => HaltKind::SpaceLimit,
        other => return Err(format!("unknown halt kind {other:?}")),
    })
}

/// How much of the run a trace captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDepth {
    /// The full span tree.
    Full,
    /// Only the root verdict (evaluators with no collector seam).
    VerdictOnly,
}

/// A recorded run: a labeled span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Which evaluator produced this trace (e.g. `run`, `run_guarded`).
    pub label: String,
    /// Capture depth.
    pub depth: TraceDepth,
    /// The root span (causal ID `r`).
    pub root: Span,
    /// Spans not attached because the trace-wide cap was hit.
    pub dropped_spans: u64,
}

impl Trace {
    /// A verdict-only trace for evaluators without a collector seam
    /// (e.g. the routed graph evaluator). Diffing against it compares
    /// root verdicts only.
    pub fn verdict_only(label: &str, verdict: Verdict, note: &str) -> Trace {
        let mut root = Span::new(SpanKind::Run);
        root.verdict = Some(verdict);
        root.note = note.to_owned();
        Trace {
            label: label.to_owned(),
            depth: TraceDepth::VerdictOnly,
            root,
            dropped_spans: 0,
        }
    }

    /// Merge per-item traces into one batch trace, in item index order.
    /// Callers must pass `items` positionally — `Pool::scoped` already
    /// returns results in index order, so batch traces are identical
    /// for any worker count.
    pub fn merge_batch(label: &str, items: Vec<Trace>) -> Trace {
        let mut root = Span::new(SpanKind::Batch);
        let mut dropped = 0;
        for (i, item) in items.into_iter().enumerate() {
            dropped += item.dropped_spans;
            let mut child = item.root;
            child.note = if item.label.is_empty() {
                format!("item {i}")
            } else {
                format!("item {i}: {}", item.label)
            };
            root.children.push(child);
        }
        Trace {
            label: label.to_owned(),
            depth: TraceDepth::Full,
            root,
            dropped_spans: dropped,
        }
    }

    /// The trace's overall verdict (the root span's).
    pub fn verdict(&self) -> Option<Verdict> {
        self.root.verdict
    }

    /// Total spans recorded.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Serialize to a [`Json`] value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.as_str())),
            (
                "depth",
                Json::str(match self.depth {
                    TraceDepth::Full => "full",
                    TraceDepth::VerdictOnly => "verdict",
                }),
            ),
            ("dropped_spans", Json::from(self.dropped_spans)),
            ("root", self.root.to_json()),
        ])
    }

    /// Serialize to one JSONL line.
    pub fn to_json_line(&self) -> String {
        self.to_json().render()
    }

    /// Parse a trace from a [`Json`] value.
    pub fn from_json(j: &Json) -> Result<Trace, String> {
        let label = j
            .get("label")
            .and_then(Json::as_str)
            .ok_or("trace missing \"label\"")?
            .to_owned();
        let depth = match j.get("depth").and_then(Json::as_str) {
            Some("verdict") => TraceDepth::VerdictOnly,
            _ => TraceDepth::Full,
        };
        let root = Span::from_json(j.get("root").ok_or("trace missing \"root\"")?)?;
        Ok(Trace {
            label,
            depth,
            root,
            dropped_spans: j.get("dropped_spans").and_then(Json::as_i64).unwrap_or(0) as u64,
        })
    }

    /// Parse one JSONL line.
    pub fn from_json_line(line: &str) -> Result<Trace, String> {
        Trace::from_json(&Json::parse(line).map_err(|e| e.to_string())?)
    }

    /// Render the trace as an indented walk transcript with causal IDs.
    pub fn render(&self) -> String {
        self.render_with(&Namer::plain())
    }

    /// Render with domain names for states and nodes.
    pub fn render_with(&self, namer: &Namer) -> String {
        let mut out = String::new();
        out.push_str(&format!("trace {} ({} span(s)", self.label, self.size()));
        if self.dropped_spans > 0 {
            out.push_str(&format!(", {} dropped", self.dropped_spans));
        }
        out.push_str(")\n");
        render_span(&self.root, "r", 0, namer, &mut out);
        out
    }
}

/// Maps raw state/node IDs to human names when rendering transcripts.
pub struct Namer<'a> {
    /// State ID → name.
    pub state: &'a dyn Fn(u32) -> String,
    /// Node ID → label.
    pub node: &'a dyn Fn(u64) -> String,
}

impl Namer<'_> {
    /// Identity namer: `q3` / `n7`.
    pub fn plain() -> Namer<'static> {
        Namer {
            state: &|q| format!("q{q}"),
            node: &|n| format!("n{n}"),
        }
    }
}

impl std::fmt::Debug for Namer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Namer")
    }
}

fn render_span(sp: &Span, id: &str, indent: usize, namer: &Namer, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&format!("{pad}{id} {}\n", sp.head_with(namer)));
    if !sp.steps.is_empty() {
        let shown: Vec<String> = sp
            .steps
            .iter()
            .take(24)
            .map(|(n, q)| format!("({}, {})", (namer.node)(*n), (namer.state)(*q)))
            .collect();
        let mut walk = shown.join(" → ");
        let hidden = sp.steps.len().saturating_sub(24) as u64 + sp.steps_dropped;
        if hidden > 0 {
            walk.push_str(&format!(" → … (+{hidden} more)"));
        }
        out.push_str(&format!("{pad}    walk: {walk}\n"));
    }
    for (i, child) in sp.children.iter().enumerate() {
        render_span(child, &format!("{id}.{i}"), indent + 1, namer, out);
    }
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// A [`Collector`] that records the run as a span tree.
///
/// Recording is bounded: at most `max_spans` spans are attached per trace
/// and at most `max_steps_per_span` walk steps per span; overflow is
/// counted in [`Trace::dropped_spans`] / [`Span::steps_dropped`] rather
/// than growing without bound. The caps are fixed per collector, so
/// recording stays deterministic.
#[derive(Debug)]
pub struct TraceCollector {
    stack: Vec<Span>,
    attached: usize,
    dropped: u64,
    max_spans: usize,
    max_steps_per_span: usize,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// A collector with the default caps.
    pub fn new() -> TraceCollector {
        TraceCollector::with_caps(DEFAULT_MAX_SPANS, DEFAULT_MAX_STEPS_PER_SPAN)
    }

    /// A collector with explicit caps.
    pub fn with_caps(max_spans: usize, max_steps_per_span: usize) -> TraceCollector {
        TraceCollector {
            stack: vec![Span::new(SpanKind::Run)],
            attached: 0,
            dropped: 0,
            max_spans,
            max_steps_per_span,
        }
    }

    fn open(&mut self, kind: SpanKind) {
        self.stack.push(Span::new(kind));
    }

    fn close(&mut self, verdict: Option<Verdict>) {
        if self.stack.len() <= 1 {
            return; // unbalanced close; keep the root
        }
        let mut sp = self.stack.pop().expect("non-empty stack");
        if sp.verdict.is_none() {
            sp.verdict = verdict;
        }
        self.attach(sp);
    }

    fn attach(&mut self, sp: Span) {
        if self.attached >= self.max_spans {
            self.dropped += sp.size() as u64;
            return;
        }
        self.attached += 1;
        self.current().children.push(sp);
    }

    fn current(&mut self) -> &mut Span {
        self.stack.last_mut().expect("non-empty stack")
    }

    /// Finish recording and return the trace.
    pub fn finish(mut self, label: &str) -> Trace {
        // Close any spans an early return left open (e.g. a guard trip
        // mid-walk); they keep whatever verdict they already had.
        while self.stack.len() > 1 {
            self.close(None);
        }
        Trace {
            label: label.to_owned(),
            depth: TraceDepth::Full,
            root: self.stack.pop().expect("root span"),
            dropped_spans: self.dropped,
        }
    }
}

impl Collector for TraceCollector {
    fn chain_enter(&mut self, node: u64, state: u32, depth: u32) {
        self.open(SpanKind::Chain { depth, node, state });
    }

    fn chain_exit(&mut self, halt: HaltKind, _depth: u32) {
        self.close(Some(Verdict::Halt(halt)));
    }

    fn step(&mut self, node: u64, state: u32, _depth: u32) {
        let cap = self.max_steps_per_span;
        let sp = self.current();
        if sp.steps.len() < cap {
            sp.steps.push((node, state));
        } else {
            sp.steps_dropped += 1;
        }
    }

    fn atp_enter(&mut self, node: u64, fanout: usize, _depth: u32) {
        self.open(SpanKind::Atp {
            node,
            fanout: u32::try_from(fanout).unwrap_or(u32::MAX),
        });
    }

    fn atp_exit(&mut self, _depth: u32) {
        self.close(None);
    }

    fn quant_enter(&mut self, exists: bool, var: u32) {
        self.open(SpanKind::Quant { exists, var });
    }

    fn quant_exit(&mut self, holds: bool, witness: Option<u64>) {
        self.current().witness = witness;
        self.close(Some(Verdict::Bool(holds)));
    }

    fn axis_enter(&mut self, axis: &'static str) {
        self.open(SpanKind::Axis {
            axis: axis.to_owned(),
        });
    }

    fn axis_exit(&mut self, frontier: &[u64]) {
        self.current().frontier = frontier.to_vec();
        self.close(None);
    }

    fn selected(&mut self, nodes: &[u64]) {
        self.current().frontier.extend_from_slice(nodes);
    }

    fn trip(&mut self, reason: &str) {
        let mut sp = Span::new(SpanKind::Trip);
        sp.verdict = Some(Verdict::Trip);
        sp.note = reason.to_owned();
        self.attach(sp);
    }

    fn halt(&mut self, halt: HaltKind) {
        // The run's overall verdict lands on the root span.
        self.stack[0].verdict = Some(Verdict::Halt(halt));
    }
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// The first point two traces of the same (program, tree) pair disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Causal ID of the first divergent span (`r`, `r.0.2`, …).
    pub at: String,
    /// Label of the left trace.
    pub left_label: String,
    /// Label of the right trace.
    pub right_label: String,
    /// One-line rendering of the left span (or "absent").
    pub left: String,
    /// One-line rendering of the right span (or "absent").
    pub right: String,
    /// The left span's acceptance at the divergence, if it implies one.
    pub left_accepted: Option<bool>,
    /// The right span's acceptance at the divergence, if it implies one.
    pub right_accepted: Option<bool>,
    /// What differed (verdict, structure, walk, …).
    pub note: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at {}: {} [{}] vs {} [{}] ({})",
            self.at, self.left_label, self.left, self.right_label, self.right, self.note
        )
    }
}

impl Divergence {
    /// Serialize to a [`Json`] value (embedded in fuzz repros).
    pub fn to_json(&self) -> Json {
        let acc = |a: Option<bool>| match a {
            Some(b) => Json::from(b),
            None => Json::Null,
        };
        Json::obj([
            ("at", Json::str(self.at.as_str())),
            ("left_label", Json::str(self.left_label.as_str())),
            ("right_label", Json::str(self.right_label.as_str())),
            ("left", Json::str(self.left.as_str())),
            ("right", Json::str(self.right.as_str())),
            ("left_accepted", acc(self.left_accepted)),
            ("right_accepted", acc(self.right_accepted)),
            ("note", Json::str(self.note.as_str())),
        ])
    }

    /// Parse from a [`Json`] value.
    pub fn from_json(j: &Json) -> Result<Divergence, String> {
        let s = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("divergence missing {key:?}"))
        };
        Ok(Divergence {
            at: s("at")?,
            left_label: s("left_label")?,
            right_label: s("right_label")?,
            left: s("left")?,
            right: s("right")?,
            left_accepted: j.get("left_accepted").and_then(Json::as_bool),
            right_accepted: j.get("right_accepted").and_then(Json::as_bool),
            note: s("note")?,
        })
    }
}

/// Align two traces of the same input and return the first divergent
/// span, or `None` if they agree. Spans are compared in preorder: a
/// span's own head (kind, verdict, witness, walk, frontier) is compared
/// before its children, and a missing/extra child is itself a
/// divergence. If either trace is [`TraceDepth::VerdictOnly`], only the
/// root verdicts are compared.
pub fn diff(a: &Trace, b: &Trace) -> Option<Divergence> {
    if a.depth == TraceDepth::VerdictOnly || b.depth == TraceDepth::VerdictOnly {
        let va = a.root.verdict;
        let vb = b.root.verdict;
        let agree = match (va, vb) {
            (Some(x), Some(y)) => x.agrees(&y),
            (None, None) => true,
            _ => false,
        };
        if agree {
            return None;
        }
        return Some(Divergence {
            at: "r".to_owned(),
            left_label: a.label.clone(),
            right_label: b.label.clone(),
            left: a.root.head(),
            right: b.root.head(),
            left_accepted: va.and_then(|v| v.accepted()),
            right_accepted: vb.and_then(|v| v.accepted()),
            note: "verdict mismatch".to_owned(),
        });
    }
    diff_span(&a.root, &b.root, "r", &a.label, &b.label)
}

fn verdicts_disagree(a: &Span, b: &Span) -> bool {
    match (&a.verdict, &b.verdict) {
        (Some(x), Some(y)) => !x.agrees(y),
        (None, None) => false,
        _ => true,
    }
}

fn diff_span(a: &Span, b: &Span, id: &str, la: &str, lb: &str) -> Option<Divergence> {
    let mismatch = |note: &str| {
        Some(Divergence {
            at: id.to_owned(),
            left_label: la.to_owned(),
            right_label: lb.to_owned(),
            left: a.head(),
            right: b.head(),
            left_accepted: a.verdict.and_then(|v| v.accepted()),
            right_accepted: b.verdict.and_then(|v| v.accepted()),
            note: note.to_owned(),
        })
    };
    if a.kind != b.kind {
        return mismatch("span kind mismatch");
    }
    if verdicts_disagree(a, b) {
        return mismatch("verdict mismatch");
    }
    if a.witness != b.witness {
        return mismatch("witness mismatch");
    }
    if a.steps != b.steps || a.steps_dropped != b.steps_dropped {
        return mismatch("walk path mismatch");
    }
    if a.frontier != b.frontier {
        return mismatch("frontier mismatch");
    }
    for i in 0..a.children.len().max(b.children.len()) {
        let child_id = format!("{id}.{i}");
        match (a.children.get(i), b.children.get(i)) {
            (Some(ca), Some(cb)) => {
                if let Some(d) = diff_span(ca, cb, &child_id, la, lb) {
                    return Some(d);
                }
            }
            (Some(ca), None) => {
                return Some(Divergence {
                    at: child_id,
                    left_label: la.to_owned(),
                    right_label: lb.to_owned(),
                    left: ca.head(),
                    right: "absent".to_owned(),
                    left_accepted: ca.verdict.and_then(|v| v.accepted()),
                    right_accepted: None,
                    note: "span only on the left".to_owned(),
                });
            }
            (None, Some(cb)) => {
                return Some(Divergence {
                    at: child_id,
                    left_label: la.to_owned(),
                    right_label: lb.to_owned(),
                    left: "absent".to_owned(),
                    right: cb.head(),
                    left_accepted: None,
                    right_accepted: cb.verdict.and_then(|v| v.accepted()),
                    note: "span only on the right".to_owned(),
                });
            }
            (None, None) => unreachable!(),
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Explanation
// ---------------------------------------------------------------------------

/// Answer "why accepted / why rejected" from a trace's witnesses: the
/// root verdict plus the decisive evidence found in the span tree — the
/// accepting walk, the first rejecting chain, quantifier witnesses and
/// counterexamples, and any guard trips.
pub fn explain_verdict(trace: &Trace, namer: &Namer) -> String {
    let mut out = String::new();
    let verdict = trace.verdict();
    match verdict {
        Some(v) => out.push_str(&format!("{}: {}\n", trace.label, v.render())),
        None => out.push_str(&format!("{}: no verdict recorded\n", trace.label)),
    }
    let accepted = verdict.and_then(|v| v.accepted());
    let mut lines = Vec::new();
    collect_evidence(&trace.root, "r", accepted, namer, &mut lines);
    if lines.is_empty() {
        lines.push("  (no decisive span recorded)".to_owned());
    }
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

fn collect_evidence(
    sp: &Span,
    id: &str,
    accepted: Option<bool>,
    namer: &Namer,
    out: &mut Vec<String>,
) {
    match &sp.kind {
        SpanKind::Chain { depth, .. } => {
            let rejecting = matches!(sp.verdict, Some(Verdict::Halt(h)) if h != HaltKind::Accept);
            let decisive = match accepted {
                Some(true) => *depth == 0 && !rejecting,
                _ => rejecting,
            };
            if decisive {
                if let Some((n, q)) = sp.steps.last() {
                    out.push(format!(
                        "  {id} {}: ended at ({}, {})",
                        sp.head_with(namer),
                        (namer.node)(*n),
                        (namer.state)(*q),
                    ));
                } else {
                    out.push(format!("  {id} {}", sp.head_with(namer)));
                }
                // For a rejection, the first rejecting chain suffices.
                if accepted != Some(true) {
                    return;
                }
            }
        }
        SpanKind::Quant { exists, var } => {
            if let (Some(Verdict::Bool(holds)), Some(w)) = (&sp.verdict, sp.witness) {
                let role = if *exists == *holds {
                    "witness"
                } else {
                    "counterexample"
                };
                out.push(format!(
                    "  {id} {}x{var} = {} by {} {}",
                    if *exists { "∃" } else { "∀" },
                    holds,
                    role,
                    (namer.node)(w),
                ));
            }
        }
        SpanKind::Trip => {
            out.push(format!("  {id} guard trip: {}", sp.note));
        }
        _ => {}
    }
    for (i, child) in sp.children.iter().enumerate() {
        collect_evidence(child, &format!("{id}.{i}"), accepted, namer, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collector() -> TraceCollector {
        let mut c = TraceCollector::new();
        c.chain_enter(0, 0, 0);
        c.step(0, 0, 0);
        c.step(1, 1, 0);
        c.atp_enter(1, 2, 0);
        c.selected(&[3, 5]);
        c.chain_enter(3, 2, 1);
        c.step(3, 2, 1);
        c.chain_exit(HaltKind::Accept, 1);
        c.chain_enter(5, 2, 1);
        c.chain_exit(HaltKind::Accept, 1);
        c.atp_exit(0);
        c.chain_exit(HaltKind::Accept, 0);
        c.halt(HaltKind::Accept);
        c
    }

    #[test]
    fn records_a_nested_span_tree() {
        let t = sample_collector().finish("run");
        assert_eq!(t.verdict(), Some(Verdict::Halt(HaltKind::Accept)));
        assert_eq!(t.root.children.len(), 1);
        let chain = &t.root.children[0];
        assert!(matches!(chain.kind, SpanKind::Chain { depth: 0, .. }));
        assert_eq!(chain.steps, vec![(0, 0), (1, 1)]);
        let atp = &chain.children[0];
        assert!(matches!(atp.kind, SpanKind::Atp { fanout: 2, .. }));
        assert_eq!(atp.frontier, vec![3, 5]);
        assert_eq!(atp.children.len(), 2);
    }

    #[test]
    fn json_round_trips() {
        let t = sample_collector().finish("run");
        let line = t.to_json_line();
        let back = Trace::from_json_line(&line).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn diff_of_identical_traces_is_empty() {
        let a = sample_collector().finish("run");
        let b = sample_collector().finish("run_guarded");
        assert_eq!(diff(&a, &b), None);
    }

    #[test]
    fn diff_pinpoints_a_subtree_verdict_flip() {
        let a = sample_collector().finish("run");
        let mut b = sample_collector().finish("other");
        // Flip the second atp subtree chain's verdict.
        b.root.children[0].children[0].children[1].verdict = Some(Verdict::Halt(HaltKind::Stuck));
        let d = diff(&a, &b).expect("divergence");
        assert_eq!(d.at, "r.0.0.1");
        assert_eq!(d.note, "verdict mismatch");
        assert_eq!(d.left_accepted, Some(true));
        assert_eq!(d.right_accepted, Some(false));
    }

    #[test]
    fn diff_pinpoints_structural_divergence() {
        let a = sample_collector().finish("run");
        let mut b = sample_collector().finish("other");
        b.root.children[0].children[0].children.pop();
        let d = diff(&a, &b).expect("divergence");
        assert_eq!(d.at, "r.0.0.1");
        assert_eq!(d.right, "absent");
    }

    #[test]
    fn verdict_only_diff_compares_roots() {
        let full = sample_collector().finish("run");
        let same = Trace::verdict_only("routed", Verdict::Bool(true), "");
        assert_eq!(diff(&full, &same), None);
        let flipped = Trace::verdict_only("routed", Verdict::Bool(false), "evaluator=Graph");
        let d = diff(&full, &flipped).expect("divergence");
        assert_eq!(d.at, "r");
        assert_eq!(d.left_accepted, Some(true));
        assert_eq!(d.right_accepted, Some(false));
    }

    #[test]
    fn verdict_agreement_is_acceptance_based_across_variants() {
        assert!(Verdict::Halt(HaltKind::Accept).agrees(&Verdict::Bool(true)));
        assert!(Verdict::Halt(HaltKind::Stuck).agrees(&Verdict::Bool(false)));
        assert!(!Verdict::Halt(HaltKind::Accept).agrees(&Verdict::Bool(false)));
        assert!(!Verdict::Halt(HaltKind::Stuck).agrees(&Verdict::Halt(HaltKind::Cycle)));
        assert!(!Verdict::Trip.agrees(&Verdict::Bool(false)));
        assert!(Verdict::Trip.agrees(&Verdict::Trip));
    }

    #[test]
    fn quantifier_witnesses_are_recorded() {
        let mut c = TraceCollector::new();
        c.quant_enter(true, 0);
        c.quant_enter(true, 1);
        c.quant_exit(true, Some(4));
        c.quant_exit(true, Some(2));
        let t = c.finish("eval");
        let outer = &t.root.children[0];
        assert!(matches!(
            outer.kind,
            SpanKind::Quant {
                exists: true,
                var: 0
            }
        ));
        assert_eq!(outer.witness, Some(2));
        assert_eq!(outer.children[0].witness, Some(4));
    }

    #[test]
    fn trip_spans_attach_in_place() {
        let mut c = TraceCollector::new();
        c.chain_enter(0, 0, 0);
        c.step(0, 0, 0);
        c.trip("fuel budget exhausted (limit 10)");
        let t = c.finish("run_guarded");
        let chain = &t.root.children[0];
        let trip = &chain.children[0];
        assert!(matches!(trip.kind, SpanKind::Trip));
        assert_eq!(trip.verdict, Some(Verdict::Trip));
        assert!(trip.note.contains("fuel"));
    }

    #[test]
    fn span_cap_counts_dropped() {
        let mut c = TraceCollector::with_caps(2, 4);
        for _ in 0..5 {
            c.chain_enter(0, 0, 0);
            c.chain_exit(HaltKind::Accept, 0);
        }
        let t = c.finish("run");
        assert_eq!(t.root.children.len(), 2);
        assert_eq!(t.dropped_spans, 3);
    }

    #[test]
    fn step_cap_counts_dropped() {
        let mut c = TraceCollector::with_caps(16, 3);
        c.chain_enter(0, 0, 0);
        for i in 0..10 {
            c.step(i, 0, 0);
        }
        c.chain_exit(HaltKind::Accept, 0);
        let t = c.finish("run");
        let chain = &t.root.children[0];
        assert_eq!(chain.steps.len(), 3);
        assert_eq!(chain.steps_dropped, 7);
    }

    #[test]
    fn batch_merge_is_positional() {
        let items = vec![
            sample_collector().finish("a"),
            sample_collector().finish("b"),
        ];
        let t = Trace::merge_batch("batch", items);
        assert!(matches!(t.root.kind, SpanKind::Batch));
        assert_eq!(t.root.children.len(), 2);
        assert!(t.root.children[0].note.contains("item 0"));
        assert!(t.root.children[1].note.contains("item 1"));
        // Same per-item traces in the same order → identical merge.
        let again = Trace::merge_batch(
            "batch",
            vec![
                sample_collector().finish("a"),
                sample_collector().finish("b"),
            ],
        );
        assert_eq!(t.to_json_line(), again.to_json_line());
    }

    #[test]
    fn render_carries_causal_ids_and_walks() {
        let t = sample_collector().finish("run");
        let text = t.render();
        assert!(text.contains("r run"), "{text}");
        assert!(text.contains("r.0 chain d0"), "{text}");
        assert!(text.contains("r.0.0 atp"), "{text}");
        assert!(text.contains("walk: (n0, q0) → (n1, q1)"), "{text}");
    }

    #[test]
    fn explain_names_the_accepting_walk_and_witness() {
        let mut c = TraceCollector::new();
        c.quant_enter(true, 2);
        c.quant_exit(true, Some(7));
        let mut t = c.finish("eval_sentence");
        t.root.verdict = Some(Verdict::Bool(true));
        let text = explain_verdict(&t, &Namer::plain());
        assert!(text.contains("eval_sentence: true"), "{text}");
        assert!(text.contains("∃x2 = true by witness n7"), "{text}");
    }

    #[test]
    fn divergence_json_round_trips() {
        let d = Divergence {
            at: "r.0.1".to_owned(),
            left_label: "run".to_owned(),
            right_label: "run_routed".to_owned(),
            left: "chain d0 start=(n0, q0) → halt=accept".to_owned(),
            right: "absent".to_owned(),
            left_accepted: Some(true),
            right_accepted: None,
            note: "span only on the left".to_owned(),
        };
        let back = Divergence::from_json(&d.to_json()).unwrap();
        assert_eq!(d, back);
    }
}
