//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The build environment has no access to crates.io, so the JSONL sinks
//! and the machine-readable experiment reports cannot use `serde_json`;
//! this module implements exactly the subset they need. Object key order
//! is preserved (objects are association lists), numbers are `i64` when
//! integral and `f64` otherwise, and the writer emits ASCII-safe output
//! that the parser round-trips.

use std::fmt::{self, Write as _};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral (or out-of-`i64`-range) number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let text = format!("{f}");
                    out.push_str(&text);
                    // `{}` prints integral floats without a fraction; keep
                    // the value a float on re-parse.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (exactly one value, surrounding whitespace
    /// allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        match i64::try_from(n) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Float(n as f64),
        }
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(i64::from(n))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Escaped surrogates are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Int(-42), "-42"),
            (Json::Str("a\"b\\c\nd".into()), r#""a\"b\\c\nd""#),
        ] {
            assert_eq!(v.render(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(Json::Float(2.5).render(), "2.5");
        assert_eq!(Json::Float(3.0).render(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::obj([
            ("id", Json::str("E1")),
            (
                "rows",
                Json::Arr(vec![Json::Int(1), Json::Float(0.5), Json::Null]),
            ),
            ("ok", Json::Bool(false)),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn object_access() {
        let v = Json::parse(r#"{"a": 1, "b": {"c": [true, "x"]}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
        let inner = v
            .get("b")
            .and_then(|b| b.get("c"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(inner[0].as_bool(), Some(true));
        assert_eq!(inner[1].as_str(), Some("x"));
    }

    #[test]
    fn unicode_and_control_escapes() {
        let v = Json::Str("δ\u{1}▽".into());
        let s = v.render();
        assert!(s.contains("\\u0001"), "{s}");
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.message, "expected a value");
        assert!(e.offset >= 6, "{e}");
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
    }

    #[test]
    fn u64_conversion_widens() {
        assert_eq!(Json::from(7u64), Json::Int(7));
        assert!(matches!(Json::from(u64::MAX), Json::Float(_)));
    }
}
