//! Histograms: the distribution-shaped half of `twq-prof`.
//!
//! Two shapes cover every aggregation the workspace performs:
//!
//! * [`Histogram`] — log₂-bucketed, for quantities with large dynamic
//!   range (latencies in nanoseconds, step counts). Quantiles are exact
//!   to within one power-of-two bucket (the property the proptest suite
//!   pins down); `min`/`max`/`count`/`sum` are exact. Histograms merge
//!   bucket-wise, so per-worker recordings fold into one aggregate
//!   exactly as a serial recording would, and subtract bucket-wise, which
//!   is what gives [`Registry`](crate::registry::Registry) its delta
//!   snapshots.
//! * [`DenseHistogram`] — one exact counter per small non-negative value
//!   (tree depths, branching factors, fan-outs). This is the bucketing
//!   logic `twq-tree`'s `TreeStats` used to hand-roll; it now lives here
//!   so every crate shares one implementation.

use crate::json::Json;

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k - 1]`, so 65 buckets cover all of `u64`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Recording is two adds and a `leading_zeros`; the struct is a fixed
/// ~½ KiB with no heap allocation, so per-worker instances are cheap and
/// merge deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in: 0 for 0, else the value's bit
    /// length (`⌊log₂ v⌋ + 1`).
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            (1u64 << (i - 1), (1u64 << (i - 1)) + ((1u64 << (i - 1)) - 1))
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples at once.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index by [`Histogram::bucket_of`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), estimated by linear interpolation
    /// inside the bucket holding the `⌈q·count⌉`-th sample and clamped to
    /// the exact `[min, max]` range. The estimate lands in the same or an
    /// adjacent power-of-two bucket as the exact order statistic.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme order statistics are tracked exactly.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                // Position of the rank within this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
                return Some((est as u64).clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one. Merging is commutative and
    /// associative (bucket-wise addition, min/max of extrema), so any
    /// merge tree over per-worker histograms yields the serial result.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded since `base` was captured (bucket-wise
    /// subtraction; `base` must be an earlier snapshot of this histogram).
    /// `count`/`sum`/buckets are exact; `min`/`max` of the delta period
    /// are approximated by the populated buckets' bounds, clamped to the
    /// cumulative extrema.
    pub fn delta_since(&self, base: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for i in 0..BUCKETS {
            let n = self.buckets[i].saturating_sub(base.buckets[i]);
            d.buckets[i] = n;
            if n > 0 {
                let (lo, hi) = Self::bucket_bounds(i);
                d.min = d.min.min(lo.max(self.min));
                d.max = d.max.max(hi.min(self.max));
            }
        }
        d.count = self.count.saturating_sub(base.count);
        d.sum = self.sum.saturating_sub(base.sum);
        d
    }

    /// `p50=… p90=… p99=… max=… (n=…)` in the given unit suffix.
    pub fn summary(&self, unit: &str) -> String {
        match self.count {
            0 => "empty".to_owned(),
            _ => format!(
                "p50={}{unit} p90={}{unit} p99={}{unit} max={}{unit} (n={})",
                self.p50().unwrap_or(0),
                self.p90().unwrap_or(0),
                self.p99().unwrap_or(0),
                self.max,
                self.count
            ),
        }
    }

    /// The histogram as a JSON object with sparse buckets.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![(i as u64).into(), n.into()]))
            .collect();
        Json::obj([
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("min", if self.count > 0 { self.min } else { 0 }.into()),
            ("max", self.max.into()),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Parse a histogram serialized by [`Histogram::to_json`].
    pub fn from_json(j: &Json) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.count = j.get("count")?.as_i64()? as u64;
        h.sum = j.get("sum")?.as_i64()? as u64;
        h.max = j.get("max")?.as_i64()? as u64;
        h.min = if h.count > 0 {
            j.get("min")?.as_i64()? as u64
        } else {
            u64::MAX
        };
        for pair in j.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            let i = pair.first()?.as_i64()? as usize;
            if i >= BUCKETS {
                return None;
            }
            h.buckets[i] = pair.get(1)?.as_i64()? as u64;
        }
        Some(h)
    }
}

/// An exact histogram over small non-negative values: `counts()[v]` is the
/// number of times `v` was recorded. Grows on demand, merges pointwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl DenseHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `v`.
    pub fn record(&mut self, v: usize) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v`.
    pub fn record_n(&mut self, v: usize, n: u64) {
        if n == 0 {
            return;
        }
        if self.counts.len() <= v {
            self.counts.resize(v + 1, 0);
        }
        self.counts[v] += n;
        self.total += n;
    }

    /// Count recorded for `v` (0 beyond the populated range).
    pub fn count_of(&self, v: usize) -> u64 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The counts, indexed by value (may have trailing zeros only if a
    /// larger value was recorded first and later merged away — recording
    /// itself never leaves them).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The largest value with a nonzero count.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&n| n > 0)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &n)| v as u64 * n)
            .sum();
        weighted as f64 / self.total as f64
    }

    /// `(value, count)` pairs with nonzero counts, ascending by value.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(v, &n)| (v, n))
    }

    /// Fold another dense histogram into this one (pointwise addition).
    pub fn merge(&mut self, other: &DenseHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The histogram as a sparse JSON array of `[value, count]` pairs.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(v, n)| Json::Arr(vec![(v as u64).into(), n.into()]))
                .collect(),
        )
    }
}

impl From<&[usize]> for DenseHistogram {
    /// Build from a plain counts-by-value slice (the shape `TreeStats`
    /// used to expose).
    fn from(counts: &[usize]) -> Self {
        let mut h = DenseHistogram::new();
        for (v, &n) in counts.iter().enumerate() {
            h.record_n(v, n as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        for v in [0u64, 1, 2, 3, 5, 17, 1023, 1024, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn exact_stats_and_quantiles() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
        // p50's exact order statistic is 30 (bucket 5); the estimate must
        // land within one bucket of it.
        let p50 = h.p50().unwrap();
        assert!(Histogram::bucket_of(p50).abs_diff(Histogram::bucket_of(30)) <= 1);
        // p99 rank is the maximum sample.
        assert_eq!(h.p99(), Some(1000));
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.quantile(0.0), Some(10));
        assert!(Histogram::new().p50().is_none());
    }

    #[test]
    fn merge_equals_serial() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 5, 4096] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn delta_subtracts() {
        let mut h = Histogram::new();
        h.record(8);
        let base = h.clone();
        h.record(8);
        h.record(100);
        let d = h.delta_since(&base);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 108);
        assert_eq!(d.buckets()[Histogram::bucket_of(8)], 1);
        assert_eq!(d.buckets()[Histogram::bucket_of(100)], 1);
        // Delta extrema are bucket-approximate but bracket the samples.
        assert!(d.min().unwrap() <= 8 && d.max().unwrap() >= 100);
    }

    #[test]
    fn json_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 77, 1 << 40] {
            h.record(v);
        }
        let j = h.to_json();
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(Histogram::from_json(&parsed), Some(h));
        let empty = Histogram::new();
        let back = Histogram::from_json(&Json::parse(&empty.to_json().render()).unwrap());
        assert_eq!(back, Some(empty));
    }

    #[test]
    fn summary_formats() {
        let mut h = Histogram::new();
        h.record(1000);
        let s = h.summary("ns");
        assert!(s.contains("max=1000ns") && s.contains("(n=1)"), "{s}");
        assert_eq!(Histogram::new().summary("ns"), "empty");
    }

    #[test]
    fn dense_records_and_merges() {
        let mut h = DenseHistogram::new();
        h.record(0);
        h.record(3);
        h.record_n(3, 2);
        assert_eq!(h.counts(), &[1, 0, 0, 3]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count_of(3), 3);
        assert_eq!(h.count_of(99), 0);
        assert_eq!(h.max_value(), Some(3));
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(0, 1), (3, 3)]);
        let mut other = DenseHistogram::new();
        other.record(5);
        h.merge(&other);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_value(), Some(5));
        assert!((DenseHistogram::from(&[8usize, 7][..]).mean() - 7.0 / 15.0).abs() < 1e-9);
        assert!(DenseHistogram::new().max_value().is_none());
    }
}
