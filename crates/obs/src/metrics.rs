//! Aggregate run metrics collected by
//! [`MetricsCollector`](crate::collect::MetricsCollector).

use std::collections::BTreeMap;

use crate::event::{FoEval, HaltKind};
use crate::json::Json;

/// Everything a fully-instrumented run measures. All counters are zero by
/// default; an evaluator only moves the ones it exercises.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Total transitions, across the main computation and all
    /// subcomputations.
    pub steps: u64,
    /// Transitions per state, indexed by state id (grown on demand).
    pub steps_per_state: Vec<u64>,
    /// Computation chains started (1 + subcomputations for `tw` runs).
    pub chains: u64,
    /// Chains started at `atp` depth ≥ 1.
    pub subcomputations: u64,
    /// `atp` look-aheads issued.
    pub atp_calls: u64,
    /// Deepest `atp` nesting observed (0 = none).
    pub max_atp_depth: u32,
    /// Widest `atp` fan-out (most subcomputations from one call).
    pub max_atp_fanout: usize,
    /// Register-store cardinality high-water mark (total tuples).
    pub max_store_tuples: usize,
    /// Cycle-check bookkeeping: configurations inserted into `seen` sets.
    pub cycle_inserts: u64,
    /// Cycle-check bookkeeping: largest `seen` set held at once.
    pub max_tracked_configs: usize,
    /// First-order evaluation calls, indexed by [`FoEval`] discriminant.
    pub fo_evals: [u64; FoEval::COUNT],
    /// Tape-cell high-water mark (`xTM` runs).
    pub max_tape_cells: usize,
    /// Protocol messages sent.
    pub messages: u64,
    /// Named free-form counters (compiler statistics, protocol traffic
    /// classes, …).
    pub counters: BTreeMap<&'static str, u64>,
    /// Wall-clock phase timings, in completion order: `(name, nanos)`.
    pub phases: Vec<(&'static str, u64)>,
    /// How the measured run ended, once known.
    pub halt: Option<HaltKind>,
}

impl RunMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Step count attributed to one state.
    pub fn steps_in_state(&self, state: u32) -> u64 {
        self.steps_per_state
            .get(state as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Calls to one FO primitive.
    pub fn fo(&self, kind: FoEval) -> u64 {
        self.fo_evals[kind as usize]
    }

    /// A named counter's value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The `k` states with the most steps, descending (ties broken by
    /// state id so the profile is deterministic).
    pub fn top_states(&self, k: usize) -> Vec<(u32, u64)> {
        let mut ranked: Vec<(u32, u64)> = self
            .steps_per_state
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(q, &n)| (q as u32, n))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Fold another run's metrics into this one — the per-worker merge the
    /// parallel batch entry points use, so a fanned-out batch reports one
    /// aggregate exactly as a serial loop over the same items would.
    ///
    /// Additive counters sum, high-water marks take the max, per-state and
    /// named counters merge pointwise, and phases concatenate. `halt` keeps
    /// the *other* run's verdict when it has one (last writer wins, matching
    /// a serial collector observing runs in sequence).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.steps += other.steps;
        if other.steps_per_state.len() > self.steps_per_state.len() {
            self.steps_per_state.resize(other.steps_per_state.len(), 0);
        }
        for (a, b) in self.steps_per_state.iter_mut().zip(&other.steps_per_state) {
            *a += b;
        }
        self.chains += other.chains;
        self.subcomputations += other.subcomputations;
        self.atp_calls += other.atp_calls;
        self.max_atp_depth = self.max_atp_depth.max(other.max_atp_depth);
        self.max_atp_fanout = self.max_atp_fanout.max(other.max_atp_fanout);
        self.max_store_tuples = self.max_store_tuples.max(other.max_store_tuples);
        self.cycle_inserts += other.cycle_inserts;
        self.max_tracked_configs = self.max_tracked_configs.max(other.max_tracked_configs);
        for (a, b) in self.fo_evals.iter_mut().zip(&other.fo_evals) {
            *a += b;
        }
        self.max_tape_cells = self.max_tape_cells.max(other.max_tape_cells);
        self.messages += other.messages;
        for (&name, &n) in &other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        self.phases.extend_from_slice(&other.phases);
        if other.halt.is_some() {
            self.halt = other.halt;
        }
    }

    /// Total nanoseconds recorded for a named phase.
    pub fn phase_nanos(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, ns)| ns)
            .sum()
    }

    /// The metrics as one JSON object.
    pub fn to_json(&self) -> Json {
        let per_state: Vec<Json> = self
            .steps_per_state
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(q, &n)| Json::obj([("state", (q as u32).into()), ("steps", n.into())]))
            .collect();
        let fo: Vec<(String, Json)> = FoEval::ALL
            .iter()
            .filter(|&&k| self.fo(k) > 0)
            .map(|&k| (k.name().to_owned(), self.fo(k).into()))
            .collect();
        let counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_owned(), v.into()))
            .collect();
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|&(n, ns)| Json::obj([("name", Json::str(n)), ("nanos", ns.into())]))
            .collect();
        Json::obj([
            ("steps", self.steps.into()),
            ("steps_per_state", Json::Arr(per_state)),
            ("chains", self.chains.into()),
            ("subcomputations", self.subcomputations.into()),
            ("atp_calls", self.atp_calls.into()),
            ("max_atp_depth", self.max_atp_depth.into()),
            ("max_atp_fanout", self.max_atp_fanout.into()),
            ("max_store_tuples", self.max_store_tuples.into()),
            ("cycle_inserts", self.cycle_inserts.into()),
            ("max_tracked_configs", self.max_tracked_configs.into()),
            ("fo_evals", Json::Obj(fo)),
            ("max_tape_cells", self.max_tape_cells.into()),
            ("messages", self.messages.into()),
            ("counters", Json::Obj(counters)),
            ("phases", Json::Arr(phases)),
            (
                "halt",
                match self.halt {
                    Some(h) => Json::str(h.name()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_states_ranks_and_truncates() {
        let m = RunMetrics {
            steps_per_state: vec![5, 0, 9, 9, 1],
            ..RunMetrics::default()
        };
        assert_eq!(m.top_states(3), vec![(2, 9), (3, 9), (0, 5)]);
        assert_eq!(m.top_states(10).len(), 4);
        assert_eq!(m.steps_in_state(1), 0);
        assert_eq!(m.steps_in_state(99), 0);
    }

    #[test]
    fn json_skips_zero_entries() {
        let mut m = RunMetrics::new();
        m.steps = 3;
        m.steps_per_state = vec![0, 3];
        m.fo_evals[FoEval::Guard as usize] = 2;
        m.halt = Some(HaltKind::Accept);
        let j = m.to_json();
        assert_eq!(j.get("steps").and_then(Json::as_i64), Some(3));
        assert_eq!(
            j.get("steps_per_state")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            j.get("fo_evals")
                .and_then(|f| f.get("guard"))
                .and_then(Json::as_i64),
            Some(2)
        );
        assert_eq!(j.get("halt").and_then(Json::as_str), Some("accept"));
    }

    #[test]
    fn merge_is_sum_max_and_concat() {
        let mut a = RunMetrics {
            steps: 10,
            steps_per_state: vec![4, 6],
            chains: 1,
            max_atp_depth: 2,
            max_store_tuples: 7,
            halt: Some(HaltKind::Accept),
            ..RunMetrics::default()
        };
        a.counters.insert("rows", 3);
        a.phases.push(("run", 100));
        let mut b = RunMetrics {
            steps: 5,
            steps_per_state: vec![1, 0, 4],
            chains: 2,
            max_atp_depth: 1,
            max_store_tuples: 9,
            halt: Some(HaltKind::Cycle),
            ..RunMetrics::default()
        };
        b.counters.insert("rows", 2);
        b.fo_evals[FoEval::Atom as usize] = 8;
        b.phases.push(("run", 50));
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.steps_per_state, vec![5, 6, 4]);
        assert_eq!(a.chains, 3);
        assert_eq!(a.max_atp_depth, 2);
        assert_eq!(a.max_store_tuples, 9);
        assert_eq!(a.counter("rows"), 5);
        assert_eq!(a.fo(FoEval::Atom), 8);
        assert_eq!(a.phase_nanos("run"), 150);
        assert_eq!(a.halt, Some(HaltKind::Cycle));
        // Merging an empty run leaves the verdict alone.
        a.merge(&RunMetrics::new());
        assert_eq!(a.halt, Some(HaltKind::Cycle));
    }

    #[test]
    fn phase_nanos_sums_repeats() {
        let mut m = RunMetrics::new();
        m.phases.push(("compile", 10));
        m.phases.push(("run", 5));
        m.phases.push(("compile", 7));
        assert_eq!(m.phase_nanos("compile"), 17);
        assert_eq!(m.phase_nanos("absent"), 0);
    }
}
