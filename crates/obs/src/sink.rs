//! Pluggable destinations for trace [`Event`]s.

use std::collections::VecDeque;

use crate::event::Event;

/// A destination for trace events. Sinks receive every event an enabled
/// collector sees, in order.
pub trait EventSink {
    /// Consume one event.
    fn emit(&mut self, ev: &Event);
}

/// Renders events as indented human-readable lines.
#[derive(Debug, Default)]
pub struct HumanSink {
    out: String,
}

impl HumanSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rendered trace so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consume the sink, returning the rendered trace.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl EventSink for HumanSink {
    fn emit(&mut self, ev: &Event) {
        self.out.push_str(&ev.render());
        self.out.push('\n');
    }
}

/// Serializes events as JSON Lines — one JSON object per event.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The JSONL text so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// The individual JSON lines.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.out.lines()
    }

    /// Consume the sink, returning the JSONL text.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, ev: &Event) {
        self.out.push_str(&ev.to_json().render());
        self.out.push('\n');
    }
}

/// Keeps only the last `capacity` events — a flight recorder for
/// post-mortems: when a run ends in `Stuck` or `Nondeterministic`, the
/// buffer holds the moments leading up to the halt without having paid
/// for a full trace.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl RingBufferSink {
    /// A buffer holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            buf: VecDeque::with_capacity(capacity.max(1)),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events fell out of the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained tail as a human-readable post-mortem.
    pub fn post_mortem(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier events dropped\n", self.dropped));
        }
        for ev in &self.buf {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

impl EventSink for RingBufferSink {
    fn emit(&mut self, ev: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }
}

/// Fans every event out to two sinks, in order — e.g. a
/// [`FlameProfiler`](crate::profile::FlameProfiler) plus a
/// [`RingBufferSink`] flight recorder on the same run.
#[derive(Debug)]
pub struct TeeSink<'a> {
    a: &'a mut dyn EventSink,
    b: &'a mut dyn EventSink,
}

impl<'a> TeeSink<'a> {
    /// A tee delivering to `a` first, then `b`.
    pub fn new(a: &'a mut dyn EventSink, b: &'a mut dyn EventSink) -> Self {
        TeeSink { a, b }
    }
}

impl std::fmt::Debug for dyn EventSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn EventSink")
    }
}

impl EventSink for TeeSink<'_> {
    fn emit(&mut self, ev: &Event) {
        self.a.emit(ev);
        self.b.emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HaltKind;
    use crate::json::Json;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::ChainEnter {
                depth: 0,
                node: 0,
                state: 0,
            },
            Event::Step {
                depth: 0,
                node: 0,
                state: 0,
            },
            Event::AtpEnter {
                depth: 0,
                node: 3,
                fanout: 2,
            },
            Event::ChainExit {
                depth: 0,
                halt: HaltKind::Stuck,
            },
        ]
    }

    #[test]
    fn human_sink_renders_lines() {
        let mut s = HumanSink::new();
        for ev in sample_events() {
            s.emit(&ev);
        }
        let text = s.into_string();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("> atp @ node 3, fanout 2"));
    }

    #[test]
    fn jsonl_sink_round_trips_through_the_parser() {
        let events = sample_events();
        let mut s = JsonlSink::new();
        for ev in &events {
            s.emit(ev);
        }
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, ev) in lines.iter().zip(&events) {
            let parsed = Json::parse(line).expect("sink output parses");
            assert_eq!(parsed, ev.to_json(), "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn tee_sink_fans_out() {
        let mut human = HumanSink::new();
        let mut ring = RingBufferSink::new(2);
        let mut tee = TeeSink::new(&mut human, &mut ring);
        for ev in sample_events() {
            tee.emit(&ev);
        }
        assert_eq!(human.as_str().lines().count(), 4);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let mut s = RingBufferSink::new(2);
        for ev in sample_events() {
            s.emit(&ev);
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 2);
        let pm = s.post_mortem();
        assert!(pm.starts_with("… 2 earlier events dropped"));
        assert!(pm.contains("< chain: stuck"), "{pm}");
        assert!(!pm.contains("> chain"), "oldest events must be gone: {pm}");
    }
}
