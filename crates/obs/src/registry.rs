//! A [`Registry`] of named counters, gauges, and histograms — the
//! session-level metric store of `twq-prof`.
//!
//! Where [`RunMetrics`](crate::metrics::RunMetrics) describes *one* run,
//! a `Registry` accumulates across a whole session (an experiment sweep, a
//! serving process): evaluators feed it through the
//! [`Collector`](crate::collect::Collector) seam (see
//! [`MetricsCollector::with_registry`](crate::collect::MetricsCollector::with_registry)),
//! and harness code records latencies and telemetry directly. Snapshots —
//! cumulative or delta-since-last — serialize as one JSON Lines record
//! each, so a long-lived process can emit a metrics stream without any
//! external dependency.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json::Json;

/// Named counters (monotonic `u64`), gauges (last-written `i64`), and
/// [`Histogram`]s. Names are free-form; the workspace convention is
/// `area/detail` paths (`pool/steals`, `latency/E1`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
    /// Sequence number of the next snapshot.
    seq: u64,
    /// State at the last delta snapshot (counters and histograms; gauges
    /// are instantaneous and never delta'd).
    base_counters: BTreeMap<String, u64>,
    base_hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if delta == 0 && !self.counters.contains_key(name) {
            // Register the name so it appears in snapshots even when zero.
            self.counters.insert(name.to_owned(), 0);
            return;
        }
        *self.counters.entry_or_default(name) += delta;
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Record one sample into the named histogram.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        self.hists.entry_or_default(name).record(v);
    }

    /// Fold a whole histogram into the named one.
    pub fn hist_merge(&mut self, name: &str, h: &Histogram) {
        self.hists.entry_or_default(name).merge(h);
    }

    /// The named counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other's value (last writer wins, like `RunMetrics::merge`'s halt),
    /// histograms merge. Merging per-worker registries in input order
    /// therefore reproduces what one serial registry would hold.
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            *self.counters.entry_or_default(k) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.hists {
            self.hists.entry_or_default(k).merge(h);
        }
    }

    /// A cumulative snapshot of everything recorded so far.
    pub fn snapshot(&mut self) -> Snapshot {
        let seq = self.seq;
        self.seq += 1;
        Snapshot {
            seq,
            delta: false,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }

    /// A delta snapshot: what was recorded since the previous call to
    /// `delta_snapshot` (or since creation). Gauges are reported at their
    /// current value — they are instantaneous, not accumulating.
    pub fn delta_snapshot(&mut self) -> Snapshot {
        let seq = self.seq;
        self.seq += 1;
        let counters: BTreeMap<String, u64> = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let base = self.base_counters.get(k).copied().unwrap_or(0);
                (k.clone(), v - base)
            })
            .collect();
        let hists: BTreeMap<String, Histogram> = self
            .hists
            .iter()
            .map(|(k, h)| {
                let d = match self.base_hists.get(k) {
                    Some(base) => h.delta_since(base),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        self.base_counters = self.counters.clone();
        self.base_hists = self.hists.clone();
        Snapshot {
            seq,
            delta: true,
            counters,
            gauges: self.gauges.clone(),
            hists,
        }
    }
}

/// `BTreeMap::entry(...).or_default()` without the owned-key allocation on
/// the hit path.
trait EntryOrDefault<V: Default> {
    fn entry_or_default(&mut self, key: &str) -> &mut V;
}

impl<V: Default> EntryOrDefault<V> for BTreeMap<String, V> {
    fn entry_or_default(&mut self, key: &str) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key.to_owned(), V::default());
        }
        self.get_mut(key).expect("just inserted")
    }
}

/// One point-in-time view of a [`Registry`], serializable as a single
/// JSONL record and parseable back ([`Snapshot::from_json`] inverts
/// [`Snapshot::to_json`] exactly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotone sequence number within the source registry.
    pub seq: u64,
    /// Whether this is a delta (since the previous delta snapshot) or a
    /// cumulative view.
    pub delta: bool,
    /// Counter values (deltas when `delta`).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (always instantaneous).
    pub gauges: BTreeMap<String, i64>,
    /// Histograms (deltas when `delta`).
    pub hists: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// The snapshot as one JSON object (one JSONL record).
    pub fn to_json(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.into()))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Int(v)))
            .collect();
        let hists: Vec<(String, Json)> = self
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Json::obj([
            ("type", Json::str("metrics")),
            ("seq", self.seq.into()),
            ("delta", Json::Bool(self.delta)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("hists", Json::Obj(hists)),
        ])
    }

    /// Parse a snapshot serialized by [`Snapshot::to_json`].
    pub fn from_json(j: &Json) -> Option<Snapshot> {
        if j.get("type").and_then(Json::as_str) != Some("metrics") {
            return None;
        }
        let pairs = |key: &str| -> Option<&[(String, Json)]> {
            match j.get(key)? {
                Json::Obj(pairs) => Some(pairs),
                _ => None,
            }
        };
        let mut s = Snapshot {
            seq: j.get("seq")?.as_i64()? as u64,
            delta: j.get("delta")?.as_bool()?,
            ..Snapshot::default()
        };
        for (k, v) in pairs("counters")? {
            s.counters.insert(k.clone(), v.as_i64()? as u64);
        }
        for (k, v) in pairs("gauges")? {
            s.gauges.insert(k.clone(), v.as_i64()?);
        }
        for (k, v) in pairs("hists")? {
            s.hists.insert(k.clone(), Histogram::from_json(v)?);
        }
        Some(s)
    }

    /// The snapshot rendered as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists() {
        let mut r = Registry::new();
        r.counter_add("runs", 2);
        r.counter_add("runs", 3);
        r.counter_add("registered", 0);
        r.gauge_set("workers", 4);
        r.gauge_set("workers", 2);
        r.hist_record("lat", 100);
        r.hist_record("lat", 200);
        assert_eq!(r.counter("runs"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.counters().count(), 2);
        assert_eq!(r.gauge("workers"), Some(2));
        assert_eq!(r.hist("lat").unwrap().count(), 2);
        assert!(r.hist("absent").is_none());
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_matches_serial() {
        let (mut a, mut b, mut serial) = (Registry::new(), Registry::new(), Registry::new());
        for (reg, n) in [(&mut a, 2u64), (&mut b, 7)] {
            reg.counter_add("c", n);
            reg.hist_record("h", n * 10);
        }
        serial.counter_add("c", 2);
        serial.hist_record("h", 20);
        serial.counter_add("c", 7);
        serial.hist_record("h", 70);
        b.gauge_set("g", 1);
        a.merge(&b);
        assert_eq!(a.counter("c"), serial.counter("c"));
        assert_eq!(a.hist("h"), serial.hist("h"));
        assert_eq!(a.gauge("g"), Some(1));
    }

    #[test]
    fn delta_snapshots_partition_the_stream() {
        let mut r = Registry::new();
        r.counter_add("c", 10);
        r.hist_record("h", 5);
        let d1 = r.delta_snapshot();
        assert!(d1.delta);
        assert_eq!(d1.seq, 0);
        assert_eq!(d1.counters["c"], 10);
        assert_eq!(d1.hists["h"].count(), 1);
        r.counter_add("c", 1);
        let d2 = r.delta_snapshot();
        assert_eq!(d2.seq, 1);
        assert_eq!(d2.counters["c"], 1);
        assert_eq!(d2.hists["h"].count(), 0, "no new samples since d1");
        // The cumulative view is unaffected by deltas.
        let full = r.snapshot();
        assert!(!full.delta);
        assert_eq!(full.counters["c"], 11);
    }

    #[test]
    fn snapshot_jsonl_round_trips() {
        let mut r = Registry::new();
        r.counter_add("pool/steals", 3);
        r.gauge_set("workers", -1);
        r.hist_record("latency/E1", 12345);
        r.hist_record("latency/E1", 999);
        let snap = r.snapshot();
        let line = snap.to_jsonl();
        let parsed = Json::parse(&line).expect("snapshot renders valid JSON");
        assert_eq!(Snapshot::from_json(&parsed), Some(snap));
        assert_eq!(Snapshot::from_json(&Json::Null), None);
    }
}
