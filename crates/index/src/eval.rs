//! Evaluation of index plans over pre-order bitsets.
//!
//! Everything inside [`eval_plan_pre`] lives in pre-order space: a set bit
//! `j` means "the node at pre-order position `j`". The tree is only
//! touched for link-following expansions (child/parent/ancestor);
//! descendant expansion is pure range arithmetic over the interval
//! encoding. [`eval_plan_from`] converts a single arena context in and the
//! result back out.

use twq_logic::ExistsFormula;
use twq_obs::{Collector, NullCollector};
use twq_tree::{AttrId, NodeId, NodeSet, Tree};
use twq_xpath::XPath;

use crate::build::TreeIndex;
use crate::compile::{compile_exists, compile_xpath};
use crate::plan::{Axis, IxPlan};

/// Every pre-order position of the indexed tree.
fn all_pre(idx: &TreeIndex) -> NodeSet {
    let n = idx.len();
    let mut s = NodeSet::with_capacity(n);
    s.insert_range(NodeId(0), NodeId(n as u32 - 1));
    s
}

/// Evaluate `plan` against the context set `ctx` (both in pre-order
/// space). An empty `Intersect` denotes `All`, an empty `Union` denotes
/// `Empty` (the usual neutral elements).
pub fn eval_plan_pre(tree: &Tree, idx: &TreeIndex, plan: &IxPlan, ctx: &NodeSet) -> NodeSet {
    match plan {
        IxPlan::Context => ctx.clone(),
        IxPlan::Root => NodeSet::from([NodeId(0)]),
        IxPlan::All => all_pre(idx),
        IxPlan::Empty => NodeSet::new(),
        IxPlan::ScanLabel(s) => idx.label_posting(*s).cloned().unwrap_or_default(),
        IxPlan::ScanValue(a, v) => idx.value_posting(*a, *v).cloned().unwrap_or_default(),
        IxPlan::ScanAttrBot(a) => {
            let mut s = all_pre(idx);
            if let Some(h) = idx.has_attr(*a) {
                s.difference_with(h);
            }
            s
        }
        IxPlan::ScanAttrPair(a, b) => scan_attr_pair(idx, *a, *b),
        IxPlan::ScanLeaf => idx.leaves().clone(),
        IxPlan::ScanFirst => idx.firsts().clone(),
        IxPlan::ScanLast => idx.lasts().clone(),
        IxPlan::Intersect(ps) => {
            let mut iter = ps.iter();
            let mut acc = match iter.next() {
                Some(p) => eval_plan_pre(tree, idx, p, ctx),
                None => return all_pre(idx),
            };
            for p in iter {
                if acc.is_empty() {
                    break;
                }
                acc.intersect_with(&eval_plan_pre(tree, idx, p, ctx));
            }
            acc
        }
        IxPlan::Union(ps) => {
            let mut acc = NodeSet::new();
            for p in ps {
                acc.union_with(&eval_plan_pre(tree, idx, p, ctx));
            }
            acc
        }
        IxPlan::Expand(ax, p) => expand(tree, idx, *ax, &eval_plan_pre(tree, idx, p, ctx)),
        IxPlan::IfNonEmpty(cond, body) => {
            if eval_plan_pre(tree, idx, cond, ctx).is_empty() {
                NodeSet::new()
            } else {
                eval_plan_pre(tree, idx, body, ctx)
            }
        }
    }
}

/// `{y : val_a(y) = val_b(y)}` — matching value groups pairwise, plus the
/// nodes where both columns are `⊥` (equal by totality of `attr`).
fn scan_attr_pair(idx: &TreeIndex, a: AttrId, b: AttrId) -> NodeSet {
    if a == b {
        return all_pre(idx);
    }
    let mut out = NodeSet::with_capacity(idx.len());
    let (ga, gb) = (idx.value_groups(a), idx.value_groups(b));
    let (mut i, mut j) = (0, 0);
    while i < ga.len() && j < gb.len() {
        match ga[i].0.cmp(&gb[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut both = ga[i].1.clone();
                both.intersect_with(&gb[j].1);
                out.union_with(&both);
                i += 1;
                j += 1;
            }
        }
    }
    let mut bots = all_pre(idx);
    if let Some(h) = idx.has_attr(a) {
        bots.difference_with(h);
    }
    if let Some(h) = idx.has_attr(b) {
        bots.difference_with(h);
    }
    out.union_with(&bots);
    out
}

fn expand(tree: &Tree, idx: &TreeIndex, axis: Axis, inner: &NodeSet) -> NodeSet {
    let iv = idx.intervals();
    let mut out = NodeSet::with_capacity(idx.len());
    match axis {
        Axis::Child => {
            for p in inner {
                for c in tree.children(iv.node_at(p.0)) {
                    out.insert(NodeId(iv.begin(c)));
                }
            }
        }
        Axis::Parent => {
            for p in inner {
                if let Some(q) = tree.parent(iv.node_at(p.0)) {
                    out.insert(NodeId(iv.begin(q)));
                }
            }
        }
        Axis::Descendant => {
            // Subtree intervals of an ascending pre-order scan are nested
            // or disjoint, so one high-water cursor merges them: a position
            // at or below the cursor is already covered in full.
            let mut cur_hi: i64 = -1;
            for p in inner {
                let pre = p.0;
                if i64::from(pre) <= cur_hi {
                    continue;
                }
                let e = idx.end_of_pre(pre);
                if pre < e {
                    out.insert_range(NodeId(pre + 1), NodeId(e));
                }
                cur_hi = i64::from(e);
            }
        }
        Axis::Ancestor => {
            // Climb, stopping as soon as an ancestor is already present —
            // the output is ancestor-closed at every point.
            for p in inner {
                let mut cur = tree.parent(iv.node_at(p.0));
                while let Some(q) = cur {
                    if !out.insert(NodeId(iv.begin(q))) {
                        break;
                    }
                    cur = tree.parent(q);
                }
            }
        }
    }
    out
}

/// Evaluate a plan from one arena context node, returning an arena-space
/// result — the indexed counterpart of `eval_from(tree, path, x)` when
/// `plan = compile_xpath(path)`.
pub fn eval_plan_from(tree: &Tree, idx: &TreeIndex, plan: &IxPlan, x: NodeId) -> NodeSet {
    debug_assert_eq!(idx.len(), tree.len(), "index built for another tree");
    let ctx = NodeSet::from([NodeId(idx.intervals().begin(x))]);
    let pre = eval_plan_pre(tree, idx, plan, &ctx);
    let mut out = NodeSet::with_capacity(tree.len());
    for p in &pre {
        out.insert(idx.intervals().node_at(p.0));
    }
    out
}

/// The indexed twin of `eval_from`: compile and evaluate in one call.
/// Identical results on every tree and query (`tests/index.rs` and the
/// fuzz oracle enforce this); reuse the compiled plan via
/// [`compile_xpath`] + [`eval_plan_from`] when running many contexts.
pub fn select_indexed(tree: &Tree, idx: &TreeIndex, path: &XPath, x: NodeId) -> NodeSet {
    eval_plan_from(tree, idx, &compile_xpath(path), x)
}

/// The indexed twin of [`ExistsFormula::select`], when the formula is in
/// the positive two-variable fragment — `None` means out of fragment (the
/// caller should walk).
pub fn fo_select_indexed(
    tree: &Tree,
    idx: &TreeIndex,
    phi: &ExistsFormula,
    u: NodeId,
) -> Option<NodeSet> {
    compile_exists(phi).map(|plan| eval_plan_from(tree, idx, &plan, u))
}

/// [`fo_select_indexed`] with the walking fallback folded in: always
/// answers, reporting whether the index (`true`) or the backtracking
/// evaluator (`false`) produced the result.
pub fn fo_select_routed(
    tree: &Tree,
    idx: &TreeIndex,
    phi: &ExistsFormula,
    u: NodeId,
) -> (NodeSet, bool) {
    fo_select_routed_with(tree, idx, phi, u, &mut NullCollector)
}

/// [`fo_select_routed`] with instrumentation: each out-of-fragment
/// fallback bumps the `index/fallback` counter through `c`.
pub fn fo_select_routed_with<C: Collector>(
    tree: &Tree,
    idx: &TreeIndex,
    phi: &ExistsFormula,
    u: NodeId,
    c: &mut C,
) -> (NodeSet, bool) {
    match fo_select_indexed(tree, idx, phi, u) {
        Some(out) => (out, true),
        None => {
            if C::ENABLED {
                c.index_counter("index/fallback", 1);
            }
            (phi.select(tree, u), false)
        }
    }
}
