//! The walk-vs-index cost model.
//!
//! Both sides are priced in (approximate) nanoseconds from three
//! calibrated unit costs:
//!
//! * `word_ns` — one 64-bit word touched by a bitset operation;
//! * `row_ns` — one row materialized through a link-following expansion
//!   (child/parent/ancestor steps, conversions);
//! * `walk_node_ns` — one node visit of the walking evaluator (its visit
//!   count comes from [`twq_xpath::walk_cost`]).
//!
//! Index-plan cost and cardinality are estimated bottom-up from postings
//! lengths and the build-time [`IndexStats`]; walking cost mirrors
//! `eval_from`'s recursion symbolically. The defaults are measured against
//! the `index_speedup` bench; [`CostModel::calibrated`] rescales them from
//! the `index/act_*` vs `index/est_*` registry counters a telemetered
//! session accumulates, closing the estimated-vs-actual loop. Estimates
//! only need to *rank* the two evaluators correctly — both sides are
//! priced with the same crudeness.

use twq_obs::Registry;
use twq_xpath::{walk_cost, WalkParams, XPath};

use crate::build::{IndexStats, TreeIndex};
use crate::plan::{Axis, IxPlan};

/// Planner override for equivalence testing and benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Force {
    /// Let the cost model decide.
    Auto,
    /// Always take the index plan.
    Index,
    /// Always walk.
    Walk,
}

/// The planner's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Evaluate the index plan.
    Index,
    /// Run the walking evaluator.
    Walk,
}

/// Cost estimates for one query against one tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated index-plan cost (~ns).
    pub index_ns: f64,
    /// Estimated walking cost (~ns).
    pub walk_ns: f64,
    /// Estimated index-plan result cardinality.
    pub index_card: f64,
}

/// Unit costs plus the plan-size guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// ~ns per bitset word touched.
    pub word_ns: f64,
    /// ~ns per link-expanded row.
    pub row_ns: f64,
    /// ~ns per walking-evaluator node visit.
    pub walk_node_ns: f64,
    /// Plans larger than this (IR nodes) always walk — the guard against
    /// substitution blowup on pathologically nested unions.
    pub max_plan_size: usize,
}

impl Default for CostModel {
    /// Units measured on the `index_speedup` workload (release build);
    /// see DESIGN §16 for the calibration procedure.
    fn default() -> Self {
        CostModel {
            word_ns: 1.0,
            row_ns: 8.0,
            walk_node_ns: 12.0,
            max_plan_size: 4096,
        }
    }
}

impl CostModel {
    /// The walk-side parameters derived from build-time stats.
    pub fn walk_params(stats: &IndexStats) -> WalkParams {
        WalkParams {
            nodes: stats.nodes as f64,
            avg_depth: stats.avg_depth,
            fanout: stats.fanout(),
            avg_subtree: stats.avg_subtree(),
        }
    }

    /// Estimated walking cost (~ns) for `path` from one context node.
    pub fn est_walk(&self, stats: &IndexStats, path: &XPath) -> f64 {
        self.walk_node_ns * walk_cost(path, &Self::walk_params(stats)).visits
    }

    /// Estimated index cost (~ns) and result cardinality for `plan`,
    /// bottom-up from postings lengths. `ctx_card` is the context-set
    /// cardinality (1 for root runs).
    pub fn est_plan(&self, idx: &TreeIndex, plan: &IxPlan, ctx_card: f64) -> (f64, f64) {
        let stats = idx.stats();
        let n = stats.nodes as f64;
        let words = (stats.nodes / 64 + 1) as f64;
        let set_op = self.word_ns * words;
        match plan {
            IxPlan::Context => (0.0, ctx_card),
            IxPlan::Root => (self.row_ns, 1.0),
            IxPlan::All => (set_op, n),
            IxPlan::Empty => (0.0, 0.0),
            IxPlan::ScanLabel(s) => (
                set_op,
                idx.label_posting(*s).map_or(0.0, |p| p.len() as f64),
            ),
            IxPlan::ScanValue(a, v) => (
                set_op,
                idx.value_posting(*a, *v).map_or(0.0, |p| p.len() as f64),
            ),
            IxPlan::ScanAttrBot(a) => (
                2.0 * set_op,
                n - idx.has_attr(*a).map_or(0.0, |p| p.len() as f64),
            ),
            IxPlan::ScanAttrPair(a, b) => {
                if a == b {
                    return (set_op, n);
                }
                let (ga, gb) = (idx.value_groups(*a), idx.value_groups(*b));
                // One word-wide intersect+union per shared value group.
                let common = ga.len().min(gb.len()) as f64;
                let cost =
                    self.word_ns * words * (2.0 * common + 3.0) + (ga.len() + gb.len()) as f64;
                let (ha, hb) = (
                    idx.has_attr(*a).map_or(0.0, |p| p.len() as f64),
                    idx.has_attr(*b).map_or(0.0, |p| p.len() as f64),
                );
                // Matches among valued nodes, plus the jointly-⊥ nodes.
                let card = (ha.min(hb) * 0.5 + (n - ha - hb).max(0.0)).min(n);
                (cost, card)
            }
            IxPlan::ScanLeaf => (set_op, stats.leaves as f64),
            IxPlan::ScanFirst | IxPlan::ScanLast => (set_op, (n / stats.fanout()).min(n)),
            IxPlan::Intersect(ps) => {
                if ps.is_empty() {
                    return (set_op, n);
                }
                let mut cost = 0.0;
                let mut card = f64::INFINITY;
                for p in ps {
                    let (c, k) = self.est_plan(idx, p, ctx_card);
                    cost += c + set_op;
                    card = card.min(k);
                }
                (cost, card)
            }
            IxPlan::Union(ps) => {
                let mut cost = 0.0;
                let mut card = 0.0;
                for p in ps {
                    let (c, k) = self.est_plan(idx, p, ctx_card);
                    cost += c + set_op;
                    card += k;
                }
                (cost, card.min(n))
            }
            IxPlan::Expand(ax, p) => {
                let (c, k) = self.est_plan(idx, p, ctx_card);
                match ax {
                    Axis::Child => (
                        c + self.row_ns * k * stats.fanout(),
                        (k * stats.fanout()).min(n),
                    ),
                    Axis::Parent => (c + self.row_ns * k, k.min(n)),
                    Axis::Descendant => (
                        c + self.row_ns * k + set_op,
                        (k * stats.avg_subtree()).min(n),
                    ),
                    Axis::Ancestor => {
                        let climb = stats.avg_depth.max(1.0);
                        (c + self.row_ns * k * climb, (k * climb).min(n))
                    }
                }
            }
            IxPlan::IfNonEmpty(cond, body) => {
                let (cc, _) = self.est_plan(idx, cond, ctx_card);
                let (cb, kb) = self.est_plan(idx, body, ctx_card);
                (cc + cb, kb)
            }
        }
    }

    /// Both sides of the decision for a root-context run of `path` with
    /// its compiled `plan`.
    pub fn estimate(&self, idx: &TreeIndex, plan: &IxPlan, path: &XPath) -> Estimate {
        // Result conversion back to arena space costs one row per output.
        let (cost, card) = self.est_plan(idx, plan, 1.0);
        Estimate {
            index_ns: cost + self.row_ns * card,
            walk_ns: self.est_walk(idx.stats(), path),
            index_card: card,
        }
    }

    /// Pick an evaluator. `Force` wins; on `Auto` the cheaper estimate
    /// does, with oversized plans always walking.
    pub fn choose(&self, est: &Estimate, plan_size: usize, force: Force) -> Choice {
        match force {
            Force::Index => Choice::Index,
            Force::Walk => Choice::Walk,
            Force::Auto => {
                if plan_size > self.max_plan_size || est.index_ns > est.walk_ns {
                    Choice::Walk
                } else {
                    Choice::Index
                }
            }
        }
    }

    /// Rescale the default units from a session registry's accumulated
    /// actual-vs-estimated counters (`index/act_index_ns` /
    /// `index/est_index_ns` and the walk pair), recorded by
    /// `run_query_indexed_with`. Counters absent ⇒ defaults unchanged.
    pub fn calibrated(reg: &Registry) -> CostModel {
        let mut m = CostModel::default();
        let scale = |act: u64, est: u64| {
            if act > 0 && est > 0 {
                act as f64 / est as f64
            } else {
                1.0
            }
        };
        let si = scale(
            reg.counter("index/act_index_ns"),
            reg.counter("index/est_index_ns"),
        );
        m.word_ns *= si;
        m.row_ns *= si;
        m.walk_node_ns *= scale(
            reg.counter("index/act_walk_ns"),
            reg.counter("index/est_walk_ns"),
        );
        m
    }
}
