//! Per-tree inverted indexes, built in one pre-order pass.
//!
//! A [`TreeIndex`] holds, for one frozen [`Tree`]:
//!
//! * the document-order interval encoding ([`DocIntervals`]), plus an
//!   `end`-by-pre-order table so descendant expansion never touches the
//!   tree;
//! * label postings: one [`NodeSet`] per element symbol;
//! * value postings: per attribute column, a value-sorted list of
//!   `(Value, NodeSet)` groups, plus the set of nodes where the column is
//!   non-`⊥`;
//! * structural postings (leaves, first children, last children);
//! * [`IndexStats`] feeding the cost model.
//!
//! **All postings live in pre-order space**: bit `j` of a posting refers to
//! the node at pre-order position `j`, not to arena id `j`. The two orders
//! differ for randomly grown trees, and pre-order is the one under which a
//! subtree is a contiguous bit range. [`crate::eval_plan_from`] converts at
//! the boundary.

use std::time::Instant;

use twq_exec::Pool;
use twq_obs::{Collector, NullCollector};
use twq_tree::{AttrId, DocIntervals, Label, NodeId, NodeSet, SymId, Tree, Value};

/// Summary statistics recorded at build time, consumed by the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Nodes in the indexed tree.
    pub nodes: usize,
    /// Deepest node's depth (root = 0).
    pub max_depth: usize,
    /// Mean node depth; `avg_depth + 1` is also the mean subtree size
    /// (both count `Σ_u (depth(u)+1) = Σ_u |subtree(u)|`).
    pub avg_depth: f64,
    /// Leaf count (so `nodes - leaves` is the internal-node count).
    pub leaves: usize,
    /// Element symbols with at least one occurrence.
    pub distinct_labels: usize,
    /// Distinct `(attribute, value)` groups across all columns.
    pub distinct_values: usize,
    /// Heap bytes held by all postings bitsets.
    pub postings_bytes: usize,
    /// Wall-clock build time in nanoseconds.
    pub build_ns: u64,
}

impl IndexStats {
    /// Mean children per internal node (1.0 for the single-node tree).
    pub fn fanout(&self) -> f64 {
        let internal = (self.nodes - self.leaves).max(1);
        (self.nodes.saturating_sub(1)).max(1) as f64 / internal as f64
    }

    /// Mean subtree size, by the depth-sum identity.
    pub fn avg_subtree(&self) -> f64 {
        self.avg_depth + 1.0
    }
}

/// Reusable working memory for [`TreeIndex::build_in`] — one sort buffer
/// for the `(value, pre)` pairs of an attribute column. A worker threading
/// one scratch through a batch ([`build_indexes`]) allocates it once.
#[derive(Debug, Default)]
pub struct IndexScratch {
    pairs: Vec<(Value, u32)>,
}

/// The per-tree index. Build once per frozen tree, query many times.
#[derive(Debug, Clone)]
pub struct TreeIndex {
    intervals: DocIntervals,
    /// `end_of_pre[j] = end(node at pre-order position j)` — the subtree
    /// range bound, pre-permuted for the descendant expansion loop.
    end_of_pre: Vec<u32>,
    /// Label postings by `SymId` index (missing tail ⇒ empty postings).
    label_postings: Vec<NodeSet>,
    /// Per attribute column: value-sorted postings groups.
    value_postings: Vec<Vec<(Value, NodeSet)>>,
    /// Per attribute column: nodes with a non-`⊥` value.
    has_attr: Vec<NodeSet>,
    leaves: NodeSet,
    firsts: NodeSet,
    lasts: NodeSet,
    stats: IndexStats,
}

impl TreeIndex {
    /// Build with no instrumentation and fresh scratch.
    pub fn build(tree: &Tree) -> TreeIndex {
        TreeIndex::build_with(tree, &mut NullCollector)
    }

    /// Build with instrumentation: reports `phase("index/build")` and the
    /// `index/postings_bytes` / `index/built` counters through `c`.
    pub fn build_with<C: Collector>(tree: &Tree, c: &mut C) -> TreeIndex {
        TreeIndex::build_in(tree, &mut IndexScratch::default(), c)
    }

    /// Build reusing `scratch`'s allocations (the batch entry point).
    pub fn build_in<C: Collector>(tree: &Tree, scratch: &mut IndexScratch, c: &mut C) -> TreeIndex {
        let t0 = Instant::now();
        let n = tree.len();
        let intervals = DocIntervals::build(tree);

        let mut end_of_pre = vec![0u32; n];
        let mut label_postings: Vec<NodeSet> = Vec::new();
        let mut leaves = NodeSet::with_capacity(n);
        let mut firsts = NodeSet::with_capacity(n);
        let mut lasts = NodeSet::with_capacity(n);
        for pre in 0..n as u32 {
            let u = intervals.node_at(pre);
            end_of_pre[pre as usize] = intervals.end(u);
            let p = NodeId(pre);
            if let Label::Sym(s) = tree.label(u) {
                let slot = s.0 as usize;
                if slot >= label_postings.len() {
                    label_postings.resize_with(slot + 1, NodeSet::new);
                }
                label_postings[slot].insert(p);
            }
            if tree.is_leaf(u) {
                leaves.insert(p);
            }
            if tree.is_first(u) {
                firsts.insert(p);
            }
            if tree.is_last(u) {
                lasts.insert(p);
            }
        }

        // Value postings: sort (value, pre) pairs per column, then group.
        // Groups come out value-sorted for binary search; within a group
        // the pre positions ascend, so inserts never backtrack.
        let mut value_postings: Vec<Vec<(Value, NodeSet)>> = Vec::new();
        let mut has_attr: Vec<NodeSet> = Vec::new();
        let mut distinct_values = 0usize;
        for col in 0..tree.attr_columns() {
            let a = AttrId(col as u16);
            let mut has = NodeSet::with_capacity(n);
            scratch.pairs.clear();
            for pre in 0..n as u32 {
                let v = tree.attr(intervals.node_at(pre), a);
                if !v.is_bot() {
                    scratch.pairs.push((v, pre));
                    has.insert(NodeId(pre));
                }
            }
            scratch.pairs.sort_unstable();
            let mut groups: Vec<(Value, NodeSet)> = Vec::new();
            for &(v, pre) in &scratch.pairs {
                match groups.last_mut() {
                    Some((gv, set)) if *gv == v => {
                        set.insert(NodeId(pre));
                    }
                    _ => {
                        let mut set = NodeSet::new();
                        set.insert(NodeId(pre));
                        groups.push((v, set));
                    }
                }
            }
            distinct_values += groups.len();
            value_postings.push(groups);
            has_attr.push(has);
        }

        // Depths in arena order: the arena appends children after their
        // parent, so one forward pass settles every depth.
        let mut depth = vec![0u32; n];
        let (mut max_depth, mut depth_sum) = (0u32, 0u64);
        for u in tree.node_ids() {
            let i = u.0 as usize;
            if let Some(p) = tree.parent(u) {
                depth[i] = depth[p.0 as usize] + 1;
            }
            max_depth = max_depth.max(depth[i]);
            depth_sum += depth[i] as u64;
        }

        let postings_bytes = 8
            * (label_postings
                .iter()
                .chain(has_attr.iter())
                .chain([&leaves, &firsts, &lasts])
                .map(NodeSet::word_count)
                .sum::<usize>()
                + value_postings
                    .iter()
                    .flatten()
                    .map(|(_, s)| s.word_count())
                    .sum::<usize>());

        let stats = IndexStats {
            nodes: n,
            max_depth: max_depth as usize,
            avg_depth: depth_sum as f64 / n as f64,
            leaves: leaves.len(),
            distinct_labels: label_postings.iter().filter(|s| !s.is_empty()).count(),
            distinct_values,
            postings_bytes,
            build_ns: t0.elapsed().as_nanos() as u64,
        };

        if C::ENABLED {
            c.phase("index/build", stats.build_ns);
            c.index_counter("index/built", 1);
            c.index_counter("index/postings_bytes", postings_bytes as u64);
        }

        TreeIndex {
            intervals,
            end_of_pre,
            label_postings,
            value_postings,
            has_attr,
            leaves,
            firsts,
            lasts,
            stats,
        }
    }

    /// Nodes in the indexed tree.
    pub fn len(&self) -> usize {
        self.stats.nodes
    }

    /// Never true: every tree has a root.
    pub fn is_empty(&self) -> bool {
        self.stats.nodes == 0
    }

    /// The interval encoding.
    pub fn intervals(&self) -> &DocIntervals {
        &self.intervals
    }

    /// `end` of the node at pre-order position `pre`.
    #[inline]
    pub fn end_of_pre(&self, pre: u32) -> u32 {
        self.end_of_pre[pre as usize]
    }

    /// Label postings for `s` (`None` ⇔ empty).
    pub fn label_posting(&self, s: SymId) -> Option<&NodeSet> {
        self.label_postings
            .get(s.0 as usize)
            .filter(|p| !p.is_empty())
    }

    /// Value postings group for `(a, v)` (`None` ⇔ empty). `v` must be a
    /// domain value; `⊥` has no postings by construction.
    pub fn value_posting(&self, a: AttrId, v: Value) -> Option<&NodeSet> {
        let groups = self.value_postings.get(a.0 as usize)?;
        let i = groups.binary_search_by_key(&v, |&(gv, _)| gv).ok()?;
        Some(&groups[i].1)
    }

    /// All value groups of column `a`, value-sorted (empty if the column
    /// does not exist).
    pub fn value_groups(&self, a: AttrId) -> &[(Value, NodeSet)] {
        self.value_postings
            .get(a.0 as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Nodes with a non-`⊥` value in column `a` (`None` ⇔ none).
    pub fn has_attr(&self, a: AttrId) -> Option<&NodeSet> {
        self.has_attr.get(a.0 as usize).filter(|p| !p.is_empty())
    }

    /// Leaf postings.
    pub fn leaves(&self) -> &NodeSet {
        &self.leaves
    }

    /// First-child postings (root included).
    pub fn firsts(&self) -> &NodeSet {
        &self.firsts
    }

    /// Last-child postings (root included).
    pub fn lasts(&self) -> &NodeSet {
        &self.lasts
    }

    /// Build-time statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }
}

/// Build one index per tree across the pool, reusing one
/// [`IndexScratch`] per worker ([`Pool::scoped_scratch`]). Results are in
/// input order; the serial pool builds inline with a single scratch.
pub fn build_indexes(trees: &[Tree], pool: &Pool) -> Vec<TreeIndex> {
    pool.scoped_scratch(trees.len(), IndexScratch::default, |scratch, i| {
        TreeIndex::build_in(&trees[i], scratch, &mut NullCollector)
    })
}
