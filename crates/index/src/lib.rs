//! # twq-index — index-accelerated query evaluation
//!
//! The first evaluator family in the workspace whose asymptotics *beat*
//! walking instead of shaving constants. The paper separates what walking
//! automata compute from what relational evaluation gets "for free"; this
//! crate supplies the free part: per-tree inverted indexes so selective
//! XPath and FO(∃*) selections run as range algebra over word-packed
//! bitsets — the downward-fragment-to-algebra correspondence of Hellings
//! et al. — plus a cost model deciding per query whether that actually
//! pays.
//!
//! Three layers:
//!
//! * [`TreeIndex`] ([`build`] module) — label/value postings, structural
//!   postings, and the document-order interval encoding, built in one
//!   pre-order pass; [`build_indexes`] batches builds across a pool.
//! * [`IxPlan`] ([`plan`] / [`compile`] / [`eval`]) — the index algebra,
//!   compilers from XPath (total) and FO(∃*) (positive two-variable
//!   fragment, `None` ⇒ walk), and the bitset evaluator with its
//!   [`select_indexed`] / [`fo_select_indexed`] twins.
//! * [`CostModel`] ([`cost`]) — calibrated unit costs pricing index plans
//!   against [`twq_xpath::walk_cost`] estimates; `twq-rw`'s
//!   `plan_indexed` routes on the verdict.

pub mod build;
pub mod compile;
pub mod cost;
pub mod eval;
pub mod plan;

pub use build::{build_indexes, IndexScratch, IndexStats, TreeIndex};
pub use compile::{compile_exists, compile_xpath};
pub use cost::{Choice, CostModel, Estimate, Force};
pub use eval::{
    eval_plan_from, eval_plan_pre, fo_select_indexed, fo_select_routed, fo_select_routed_with,
    select_indexed,
};
pub use plan::{Axis, IxPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use twq_tree::{parse_tree, NodeId, Tree, Vocab};
    use twq_xpath::{eval_from, parse_xpath};

    fn doc() -> (Vocab, Tree) {
        let mut v = Vocab::new();
        let t = parse_tree(
            "lib(book[y=1999](title,author,author),book[y=2001](title[y=2001],author))",
            &mut v,
        )
        .unwrap();
        (v, t)
    }

    fn assert_twins(v: &mut Vocab, t: &Tree, expr: &str) {
        let idx = TreeIndex::build(t);
        let p = parse_xpath(expr, v).unwrap();
        for x in t.node_ids() {
            assert_eq!(
                select_indexed(t, &idx, &p, x),
                eval_from(t, &p, x),
                "query `{expr}` from {x:?}"
            );
        }
    }

    #[test]
    fn indexed_matches_walked_on_the_doc_tree() {
        let (mut v, t) = doc();
        for expr in [
            "lib/book/author",
            "lib//author",
            "//title",
            "lib/book[title]",
            "lib/book[@y=1999]",
            "lib/book[@y=@y]",
            "//title | //author",
            "/lib/book",
            "*",
            "//book[//title]",
            "ghost",
        ] {
            assert_twins(&mut v, &t, expr);
        }
    }

    #[test]
    fn interval_postings_line_up() {
        let (_, t) = doc();
        let idx = TreeIndex::build(&t);
        assert_eq!(idx.len(), t.len());
        let stats = idx.stats();
        assert_eq!(stats.nodes, t.len());
        assert!(stats.postings_bytes > 0);
        assert_eq!(stats.distinct_labels, 4); // lib, book, title, author
                                              // Structural postings partition sensibly: root is both first and
                                              // last, leaves + internal = n.
        assert!(idx
            .firsts()
            .contains(NodeId(idx.intervals().begin(t.root()))));
        assert_eq!(stats.leaves, idx.leaves().len());
    }

    #[test]
    fn fo_fragment_roundtrip() {
        use twq_logic::fo::build as fb;
        use twq_logic::{ExistsFormula, Var};
        let (mut v, t) = doc();
        let idx = TreeIndex::build(&t);
        let author = v.sym("author");
        let (x, y) = (Var(0), Var(1));
        // φ(x,y) = desc(x,y) ∧ O_author(y): in fragment.
        let phi = ExistsFormula::new(
            x,
            y,
            vec![],
            fb::and(vec![
                fb::desc(x, y),
                fb::lab(twq_tree::Label::Sym(author), y),
            ]),
        )
        .unwrap();
        for u in t.node_ids() {
            let (got, indexed) = fo_select_routed(&t, &idx, &phi, u);
            assert!(indexed, "positive two-variable formula must be indexed");
            assert_eq!(got, phi.select(&t, u), "from {u:?}");
        }
        // succ leaves the fragment: must fall back, still agreeing.
        let succ = ExistsFormula::new(x, y, vec![], fb::succ(x, y)).unwrap();
        assert!(compile_exists(&succ).is_none());
        for u in t.node_ids() {
            let (got, indexed) = fo_select_routed(&t, &idx, &succ, u);
            assert!(!indexed);
            assert_eq!(got, succ.select(&t, u));
        }
    }

    #[test]
    fn cost_model_prefers_index_on_selective_queries() {
        let (mut v, t) = doc();
        let idx = TreeIndex::build(&t);
        let p = parse_xpath("//author", &mut v).unwrap();
        let plan = compile_xpath(&p);
        let m = CostModel::default();
        let est = m.estimate(&idx, &plan, &p);
        assert!(est.index_ns > 0.0 && est.walk_ns > 0.0);
        assert_eq!(m.choose(&est, plan.size(), Force::Index), Choice::Index);
        assert_eq!(m.choose(&est, plan.size(), Force::Walk), Choice::Walk);
        // Oversized plans always walk under Auto.
        assert_eq!(
            m.choose(&est, m.max_plan_size + 1, Force::Auto),
            Choice::Walk
        );
    }

    #[test]
    fn batch_build_matches_serial() {
        let (_, t) = doc();
        let trees: Vec<Tree> = (0..5).map(|_| t.clone()).collect();
        for workers in [1, 4] {
            let built = build_indexes(&trees, &twq_exec::Pool::new(workers));
            assert_eq!(built.len(), trees.len());
            for idx in &built {
                assert_eq!(idx.len(), t.len());
                assert_eq!(idx.stats().nodes, TreeIndex::build(&t).stats().nodes);
            }
        }
    }
}
