//! The index algebra: a small IR whose operators are exactly the things a
//! [`TreeIndex`](crate::TreeIndex) answers in word-packed time.
//!
//! A plan denotes a function from a *context set* of nodes to a node set.
//! Leaves are either the context itself ([`IxPlan::Context`]), constant
//! sets ([`IxPlan::Root`], [`IxPlan::All`], [`IxPlan::Empty`]), or postings
//! scans; inner nodes are set algebra plus the four axis expansions of
//! [`Axis`]. Every plan produced by the compilers is *union-homomorphic* in
//! its context — `plan(S) = ⋃_{x∈S} plan({x})` — which is what lets
//! [`compile_xpath`](crate::compile_xpath) substitute whole subplans for
//! `Context` when composing steps. The one construct that needs care is
//! `/p` inside a step: its value is context-independent, but an *empty*
//! context must still yield an empty result, which is what
//! [`IxPlan::IfNonEmpty`] encodes.

use twq_tree::{AttrId, SymId, Value, Vocab};

/// An axis step over the interval encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Children of every context node (arena child links).
    Child,
    /// Strict descendants: a pre-order range fill per maximal subtree.
    Descendant,
    /// Parents of every context node.
    Parent,
    /// Strict ancestors: parent-climbing with early cutoff on overlap.
    Ancestor,
}

impl Axis {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "desc",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
        }
    }
}

/// A node of the index algebra. See the module docs for the denotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IxPlan {
    /// The context set, substituted at evaluation time.
    Context,
    /// The singleton root set.
    Root,
    /// Every node of the tree.
    All,
    /// The empty set.
    Empty,
    /// Nodes labelled with the given symbol (label postings).
    ScanLabel(SymId),
    /// Nodes whose attribute equals the given (non-`⊥`) value.
    ScanValue(AttrId, Value),
    /// Nodes whose attribute is unset (`⊥`): the complement of the
    /// column's `has` postings.
    ScanAttrBot(AttrId),
    /// Nodes where two attribute columns agree (including jointly `⊥`).
    ScanAttrPair(AttrId, AttrId),
    /// Leaves (structural postings).
    ScanLeaf,
    /// First children, root included (matches `TreeAtom::First`).
    ScanFirst,
    /// Last children, root included (matches `TreeAtom::Last`).
    ScanLast,
    /// Set intersection of all operands.
    Intersect(Vec<IxPlan>),
    /// Set union of all operands.
    Union(Vec<IxPlan>),
    /// Axis expansion of the operand's result.
    Expand(Axis, Box<IxPlan>),
    /// `if guard ≠ ∅ then body else ∅` — the context-emptiness guard for
    /// context-independent subqueries (`/p` steps, FO facts about `x`).
    IfNonEmpty(Box<IxPlan>, Box<IxPlan>),
}

impl IxPlan {
    /// Replace every [`IxPlan::Context`] leaf with a copy of `inner` — the
    /// step-composition operation of the XPath compiler.
    pub fn subst(self, inner: &IxPlan) -> IxPlan {
        match self {
            IxPlan::Context => inner.clone(),
            IxPlan::Intersect(ps) => {
                IxPlan::Intersect(ps.into_iter().map(|p| p.subst(inner)).collect())
            }
            IxPlan::Union(ps) => IxPlan::Union(ps.into_iter().map(|p| p.subst(inner)).collect()),
            IxPlan::Expand(ax, p) => IxPlan::Expand(ax, Box::new(p.subst(inner))),
            IxPlan::IfNonEmpty(c, t) => {
                IxPlan::IfNonEmpty(Box::new(c.subst(inner)), Box::new(t.subst(inner)))
            }
            leaf => leaf,
        }
    }

    /// Number of IR nodes — the planner's guard against pathological
    /// substitution blowup (nested unions multiply `Context` leaves).
    pub fn size(&self) -> usize {
        match self {
            IxPlan::Intersect(ps) | IxPlan::Union(ps) => {
                1 + ps.iter().map(IxPlan::size).sum::<usize>()
            }
            IxPlan::Expand(_, p) => 1 + p.size(),
            IxPlan::IfNonEmpty(c, t) => 1 + c.size() + t.size(),
            _ => 1,
        }
    }

    /// Render the plan compactly for diagnostics (`lint --index`).
    pub fn display(&self, vocab: &Vocab) -> String {
        match self {
            IxPlan::Context => "ctx".to_owned(),
            IxPlan::Root => "root".to_owned(),
            IxPlan::All => "all".to_owned(),
            IxPlan::Empty => "empty".to_owned(),
            IxPlan::ScanLabel(s) => format!("label({})", vocab.sym_name(*s)),
            IxPlan::ScanValue(a, v) => {
                format!(
                    "value(@{}={})",
                    vocab.attr_name(*a),
                    vocab.value_display(*v)
                )
            }
            IxPlan::ScanAttrBot(a) => format!("value(@{}=⊥)", vocab.attr_name(*a)),
            IxPlan::ScanAttrPair(a, b) => {
                format!(
                    "attrpair(@{}=@{})",
                    vocab.attr_name(*a),
                    vocab.attr_name(*b)
                )
            }
            IxPlan::ScanLeaf => "leaf".to_owned(),
            IxPlan::ScanFirst => "first".to_owned(),
            IxPlan::ScanLast => "last".to_owned(),
            IxPlan::Intersect(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.display(vocab)).collect();
                format!("and({})", parts.join(", "))
            }
            IxPlan::Union(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.display(vocab)).collect();
                format!("or({})", parts.join(", "))
            }
            IxPlan::Expand(ax, p) => format!("{}({})", ax.name(), p.display(vocab)),
            IxPlan::IfNonEmpty(c, t) => {
                format!("if-nonempty({}, {})", c.display(vocab), t.display(vocab))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_replaces_every_context_leaf() {
        let p = IxPlan::Intersect(vec![
            IxPlan::Context,
            IxPlan::Expand(Axis::Child, Box::new(IxPlan::Context)),
            IxPlan::Root,
        ]);
        let got = p.subst(&IxPlan::All);
        assert_eq!(
            got,
            IxPlan::Intersect(vec![
                IxPlan::All,
                IxPlan::Expand(Axis::Child, Box::new(IxPlan::All)),
                IxPlan::Root,
            ])
        );
        assert_eq!(got.size(), 5);
    }

    #[test]
    fn display_is_compact() {
        let mut v = Vocab::new();
        let s = v.sym("sigma");
        let p = IxPlan::Intersect(vec![
            IxPlan::Expand(Axis::Descendant, Box::new(IxPlan::Context)),
            IxPlan::ScanLabel(s),
        ]);
        assert_eq!(p.display(&v), "and(desc(ctx), label(sigma))");
    }
}
