//! Compilers into the index algebra.
//!
//! **XPath** is covered completely: [`compile_xpath`] implements the
//! forward translation `comp(p)` (result set of `p` from a context set)
//! and filters with path predicates go through the backward translation
//! `back(q, T) = {x : comp(q)({x}) ∩ T ≠ ∅}` — the downward-fragment
//! algebra correspondence of Hellings et al. When the planner rejects a
//! plan it is on *cost* grounds, never correctness.
//!
//! **FO(∃*)** is covered on its positive two-variable fragment
//! ([`ExistsFormula::is_positive_xy`] plus an atom whitelist):
//! [`compile_exists`] returns `None` outside it and the caller falls back
//! to the backtracking `select` evaluator. Atoms about `x` alone compile
//! to [`IxPlan::IfNonEmpty`] guards, which is sound because FO plans are
//! only ever evaluated from singleton contexts (`select` runs from one
//! `u`); XPath plans, which *are* substituted into set contexts, never use
//! x-guards.

use twq_logic::{ExistsFormula, Formula, TreeAtom, Var};
use twq_tree::Label;
use twq_xpath::{Pred, XPath};

use crate::plan::{Axis, IxPlan};

/// The forward translation `comp(p)`: a plan whose value on a context set
/// `S` is `⋃_{x∈S} eval_from(p, x)`. Union-homomorphic by construction,
/// which is what makes step composition a [`IxPlan::subst`].
pub fn compile_xpath(path: &XPath) -> IxPlan {
    match path {
        XPath::Name(s) => IxPlan::Intersect(vec![IxPlan::Context, IxPlan::ScanLabel(*s)]),
        XPath::Wild => IxPlan::Context,
        XPath::Child(p1, p2) => {
            compile_xpath(p2).subst(&IxPlan::Expand(Axis::Child, Box::new(compile_xpath(p1))))
        }
        XPath::Descendant(p1, p2) => compile_xpath(p2).subst(&IxPlan::Expand(
            Axis::Descendant,
            Box::new(compile_xpath(p1)),
        )),
        // `/p` is context-independent — except that an empty context must
        // still produce an empty result (eval_from never runs it then).
        XPath::FromRoot(p) => IxPlan::IfNonEmpty(
            Box::new(IxPlan::Context),
            Box::new(compile_xpath(p).subst(&IxPlan::Root)),
        ),
        XPath::FromDesc(p) => {
            compile_xpath(p).subst(&IxPlan::Expand(Axis::Descendant, Box::new(IxPlan::Context)))
        }
        XPath::FromChild(p) => {
            compile_xpath(p).subst(&IxPlan::Expand(Axis::Child, Box::new(IxPlan::Context)))
        }
        XPath::Filter(p, pred) => IxPlan::Intersect(vec![compile_xpath(p), sat(pred)]),
        XPath::Union(p1, p2) => IxPlan::Union(vec![compile_xpath(p1), compile_xpath(p2)]),
    }
}

/// The context-independent satisfaction set of a filter predicate:
/// `{y : pred holds at y}`.
fn sat(pred: &Pred) -> IxPlan {
    match pred {
        Pred::Path(q) => compile_back(q, IxPlan::All),
        Pred::AttrEqConst(a, d) => {
            if d.is_bot() {
                IxPlan::ScanAttrBot(*a)
            } else {
                IxPlan::ScanValue(*a, *d)
            }
        }
        Pred::AttrEqAttr(a, b) => IxPlan::ScanAttrPair(*a, *b),
    }
}

/// The backward translation `back(q, T) = {x : comp(q)({x}) ∩ T ≠ ∅}`,
/// used for existence filters: a path predicate holds at `x` exactly when
/// `back(q, All)` contains `x`.
fn compile_back(path: &XPath, t: IxPlan) -> IxPlan {
    match path {
        XPath::Name(s) => IxPlan::Intersect(vec![IxPlan::ScanLabel(*s), t]),
        XPath::Wild => t,
        XPath::Child(p1, p2) => compile_back(
            p1,
            IxPlan::Expand(Axis::Parent, Box::new(compile_back(p2, t))),
        ),
        XPath::Descendant(p1, p2) => compile_back(
            p1,
            IxPlan::Expand(Axis::Ancestor, Box::new(compile_back(p2, t))),
        ),
        // `/p` succeeds from every context node or from none: test the
        // root once, return All or nothing.
        XPath::FromRoot(p) => IxPlan::IfNonEmpty(
            Box::new(IxPlan::Intersect(vec![IxPlan::Root, compile_back(p, t)])),
            Box::new(IxPlan::All),
        ),
        XPath::FromDesc(p) => IxPlan::Expand(Axis::Ancestor, Box::new(compile_back(p, t))),
        XPath::FromChild(p) => IxPlan::Expand(Axis::Parent, Box::new(compile_back(p, t))),
        XPath::Filter(p, pred) => compile_back(p, IxPlan::Intersect(vec![t, sat(pred)])),
        XPath::Union(p1, p2) => {
            IxPlan::Union(vec![compile_back(p1, t.clone()), compile_back(p2, t)])
        }
    }
}

/// Compile a binary FO(∃*) select into the index algebra, or `None` when
/// the formula leaves the positive two-variable fragment (quantifiers,
/// negation, sibling-order atoms, cross-node value joins, delimiter
/// labels). The resulting plan is valid for **singleton** contexts only —
/// exactly how `fo_select_indexed` evaluates it.
pub fn compile_exists(phi: &ExistsFormula) -> Option<IxPlan> {
    if !phi.is_positive_xy() {
        return None;
    }
    translate(phi.matrix(), phi.x(), phi.y())
}

fn translate(f: &Formula, x: Var, y: Var) -> Option<IxPlan> {
    match f {
        Formula::True => Some(IxPlan::All),
        Formula::False => Some(IxPlan::Empty),
        Formula::Atom(a) => atom_plan(a, x, y),
        Formula::And(fs) => fs
            .iter()
            .map(|g| translate(g, x, y))
            .collect::<Option<Vec<_>>>()
            .map(IxPlan::Intersect),
        Formula::Or(fs) => fs
            .iter()
            .map(|g| translate(g, x, y))
            .collect::<Option<Vec<_>>>()
            .map(IxPlan::Union),
        Formula::Not(_) | Formula::Exists(..) | Formula::Forall(..) => None,
    }
}

/// An x-only fact, lifted to a set of `y`s: everything if the (singleton)
/// context satisfies it, nothing otherwise.
fn guard(p: IxPlan) -> IxPlan {
    IxPlan::IfNonEmpty(Box::new(p), Box::new(IxPlan::All))
}

/// Same fact about the context node itself, as a guard condition.
fn on_ctx(p: IxPlan) -> IxPlan {
    guard(IxPlan::Intersect(vec![IxPlan::Context, p]))
}

fn atom_plan(a: &TreeAtom, x: Var, y: Var) -> Option<IxPlan> {
    Some(match *a {
        TreeAtom::Eq(p, q) if p == q => IxPlan::All,
        TreeAtom::Eq(p, q) if (p, q) == (x, y) || (p, q) == (y, x) => IxPlan::Context,
        TreeAtom::Edge(p, q) | TreeAtom::Desc(p, q) | TreeAtom::SibLess(p, q) if p == q => {
            // All three relations are irreflexive.
            IxPlan::Empty
        }
        TreeAtom::Succ(p, q) if p == q => IxPlan::Empty,
        TreeAtom::Edge(p, q) if (p, q) == (x, y) => {
            IxPlan::Expand(Axis::Child, Box::new(IxPlan::Context))
        }
        TreeAtom::Edge(p, q) if (p, q) == (y, x) => {
            IxPlan::Expand(Axis::Parent, Box::new(IxPlan::Context))
        }
        TreeAtom::Desc(p, q) if (p, q) == (x, y) => {
            IxPlan::Expand(Axis::Descendant, Box::new(IxPlan::Context))
        }
        TreeAtom::Desc(p, q) if (p, q) == (y, x) => {
            IxPlan::Expand(Axis::Ancestor, Box::new(IxPlan::Context))
        }
        TreeAtom::Lab(Label::Sym(s), v) if v == y => IxPlan::ScanLabel(s),
        TreeAtom::Lab(Label::Sym(s), v) if v == x => on_ctx(IxPlan::ScanLabel(s)),
        TreeAtom::ValConst(attr, v, d) if v == y || v == x => {
            let scan = if d.is_bot() {
                IxPlan::ScanAttrBot(attr)
            } else {
                IxPlan::ScanValue(attr, d)
            };
            if v == y {
                scan
            } else {
                on_ctx(scan)
            }
        }
        TreeAtom::ValEq(a1, p, a2, q) if p == q => {
            let scan = IxPlan::ScanAttrPair(a1, a2);
            if p == y {
                scan
            } else {
                on_ctx(scan)
            }
        }
        TreeAtom::Root(v) if v == y => IxPlan::Root,
        TreeAtom::Root(v) if v == x => on_ctx(IxPlan::Root),
        TreeAtom::Leaf(v) if v == y => IxPlan::ScanLeaf,
        TreeAtom::Leaf(v) if v == x => on_ctx(IxPlan::ScanLeaf),
        TreeAtom::First(v) if v == y => IxPlan::ScanFirst,
        TreeAtom::First(v) if v == x => on_ctx(IxPlan::ScanFirst),
        TreeAtom::Last(v) if v == y => IxPlan::ScanLast,
        TreeAtom::Last(v) if v == x => on_ctx(IxPlan::ScanLast),
        // Sibling order, successor, cross-node value joins, and delimiter
        // labels stay with the walking evaluator.
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_xpath::ast::xb;

    #[test]
    fn selective_descendant_query_compiles_to_range_intersect() {
        let s = twq_tree::SymId(3);
        let plan = compile_xpath(&xb::from_desc(xb::name(s)));
        assert_eq!(
            plan,
            IxPlan::Intersect(vec![
                IxPlan::Expand(Axis::Descendant, Box::new(IxPlan::Context)),
                IxPlan::ScanLabel(s),
            ])
        );
    }

    #[test]
    fn from_root_gets_an_emptiness_guard() {
        let s = twq_tree::SymId(0);
        let plan = compile_xpath(&xb::from_root(xb::name(s)));
        match plan {
            IxPlan::IfNonEmpty(c, t) => {
                assert_eq!(*c, IxPlan::Context);
                assert_eq!(
                    *t,
                    IxPlan::Intersect(vec![IxPlan::Root, IxPlan::ScanLabel(s)])
                );
            }
            other => panic!("expected guard, got {other:?}"),
        }
    }

    #[test]
    fn path_filter_uses_the_backward_translation() {
        let s = twq_tree::SymId(1);
        // *[s] — keep context nodes with an s-labelled child. The builder
        // wraps the predicate path in FromChild (child-relative test), so
        // the backward translation contracts it through a parent step.
        let plan = compile_xpath(&xb::filter(xb::wild(), xb::name(s)));
        assert_eq!(
            plan,
            IxPlan::Intersect(vec![
                IxPlan::Context,
                IxPlan::Expand(
                    Axis::Parent,
                    Box::new(IxPlan::Intersect(vec![IxPlan::ScanLabel(s), IxPlan::All])),
                ),
            ])
        );
    }
}
