//! # twq-bench — shared workload builders for the benchmark harness
//!
//! Each Criterion bench under `benches/` regenerates one experiment of
//! `EXPERIMENTS.md`; the builders here keep workload construction
//! consistent between the benches and the `experiments` binary.

use twq_tree::generate::{random_tree, TreeGenConfig};
use twq_tree::{AttrId, DelimTree, SymId, Tree, Vocab};

/// The standard workspace for benchmarks: the Example 3.2 vocabulary with
/// `values` in the attribute pool.
pub struct Bench {
    /// Shared vocabulary.
    pub vocab: Vocab,
    /// `{σ, δ}`.
    pub symbols: Vec<SymId>,
    /// The attribute `a`.
    pub attr: AttrId,
    /// The unique-ID attribute.
    pub id: AttrId,
}

impl Bench {
    /// Set up the standard vocabulary.
    pub fn new() -> Bench {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, 1, &[]);
        let attr = vocab.attr("a");
        let id = vocab.attr("id");
        Bench {
            symbols: cfg.symbols,
            attr,
            id,
            vocab,
        }
    }

    /// A deterministic random tree with `n` nodes and `values` in the
    /// `a`-attribute pool.
    pub fn tree(&mut self, n: usize, values: &[i64], seed: u64) -> Tree {
        let cfg = TreeGenConfig {
            nodes: n,
            max_children: 4,
            symbols: self.symbols.clone(),
            attributes: vec![(
                self.attr,
                values.iter().map(|&v| self.vocab.val_int(v)).collect(),
            )],
            collision_pool: None,
        };
        random_tree(&cfg, seed)
    }

    /// A delimited tree with unique IDs on every node.
    pub fn delim_with_ids(&mut self, t: &Tree) -> DelimTree {
        let mut dt = DelimTree::build(t);
        dt.assign_unique_ids(self.id, &mut self.vocab);
        dt
    }
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}
