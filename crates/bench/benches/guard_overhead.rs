//! Guard overhead — the same long compiled-pebble walk run three ways:
//! through the public ungoverned entry point (`run`, which monomorphizes
//! over `NullGuard`), through `run_guarded` with an explicit `NullGuard`
//! (must be indistinguishable from `run`), and through `run_guarded` with
//! a metering `ResourceGuard`. The first two quantify the zero-cost claim;
//! the third prices full fuel/depth/gauge accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{run, run_guarded, Limits};
use twq_bench::Bench;
use twq_guard::{NullGuard, ResourceGuard};
use twq_sim::compile_logspace;
use twq_xtm::machines;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let machine = machines::leaf_count_even(&b.symbols);
    let symbols = b.symbols.clone();
    let id = b.id;
    let prog = compile_logspace(&machine, &symbols, id, &mut b.vocab).unwrap();
    let mut group = c.benchmark_group("guard_overhead");
    group.sample_size(10);
    for n in [6usize, 8] {
        let t = b.tree(n, &[1], 5);
        let dt = b.delim_with_ids(&t);
        // Sanity: governance must not change the verdict, and the metered
        // fuel must equal the step count.
        let base = run(&prog.program, &dt, Limits::long_walk());
        let mut meter = ResourceGuard::unlimited();
        let governed = run_guarded(&prog.program, &dt, Limits::long_walk(), &mut meter)
            .expect("unlimited guard never trips");
        assert_eq!(base.accepted(), governed.accepted());
        assert_eq!(base.steps, meter.fuel_spent());
        group.bench_with_input(BenchmarkId::new("ungoverned", n), &dt, |bch, dt| {
            bch.iter(|| run(&prog.program, dt, Limits::long_walk()))
        });
        group.bench_with_input(BenchmarkId::new("null_guard", n), &dt, |bch, dt| {
            bch.iter(|| run_guarded(&prog.program, dt, Limits::long_walk(), &mut NullGuard))
        });
        group.bench_with_input(BenchmarkId::new("resource_guard", n), &dt, |bch, dt| {
            bch.iter(|| {
                let mut g = ResourceGuard::unlimited();
                let r = run_guarded(&prog.program, dt, Limits::long_walk(), &mut g);
                (r.is_ok(), g.fuel_spent())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
