//! Observability overhead — the same long compiled-pebble walk run three
//! ways: through the public uninstrumented entry point (`run`, which
//! monomorphizes over `NullCollector`), through `run_with` with an
//! explicit `NullCollector` (must be indistinguishable from `run`), and
//! through `run_with` with a `MetricsCollector`. The first two quantify
//! the zero-cost claim; the third prices full metrics collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{run, run_with, Limits};
use twq_bench::Bench;
use twq_obs::{MetricsCollector, NullCollector};
use twq_sim::compile_logspace;
use twq_xtm::machines;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let machine = machines::leaf_count_even(&b.symbols);
    let symbols = b.symbols.clone();
    let id = b.id;
    let prog = compile_logspace(&machine, &symbols, id, &mut b.vocab).unwrap();
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    for n in [6usize, 8] {
        let t = b.tree(n, &[1], 5);
        let dt = b.delim_with_ids(&t);
        // Sanity: instrumentation must not change the verdict or the count.
        let base = run(&prog.program, &dt, Limits::long_walk());
        let mut mc = MetricsCollector::new();
        let measured = run_with(&prog.program, &dt, Limits::long_walk(), &mut mc);
        assert_eq!(base.accepted(), measured.accepted());
        assert_eq!(base.steps, mc.metrics.steps);
        group.bench_with_input(BenchmarkId::new("uninstrumented", n), &dt, |bch, dt| {
            bch.iter(|| run(&prog.program, dt, Limits::long_walk()))
        });
        group.bench_with_input(BenchmarkId::new("null_collector", n), &dt, |bch, dt| {
            bch.iter(|| run_with(&prog.program, dt, Limits::long_walk(), &mut NullCollector))
        });
        group.bench_with_input(BenchmarkId::new("metrics_collector", n), &dt, |bch, dt| {
            bch.iter(|| {
                let mut mc = MetricsCollector::new();
                run_with(&prog.program, dt, Limits::long_walk(), &mut mc);
                mc.metrics.steps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
