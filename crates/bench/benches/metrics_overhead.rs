//! Observability overhead — the same long compiled-pebble walk run four
//! ways: through the public uninstrumented entry point (`run`, which
//! monomorphizes over `NullCollector`), through `run_with` with an
//! explicit `NullCollector` (must be indistinguishable from `run`),
//! through `run_with` with a `MetricsCollector`, and through a
//! `MetricsCollector` with a `Registry` attached (the `twq-prof` sink).
//! The first two quantify the zero-cost claim — enforced here with a
//! generous runtime assertion, not just eyeballed — and the last two
//! price full metrics collection with and without registry export.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{run, run_with, Limits};
use twq_bench::Bench;
use twq_obs::{MetricsCollector, NullCollector, Registry};
use twq_sim::compile_logspace;
use twq_xtm::machines;

/// Median wall-clock of `samples` runs of `f`, in nanoseconds.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let machine = machines::leaf_count_even(&b.symbols);
    let symbols = b.symbols.clone();
    let id = b.id;
    let prog = compile_logspace(&machine, &symbols, id, &mut b.vocab).unwrap();
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    for n in [6usize, 8] {
        let t = b.tree(n, &[1], 5);
        let dt = b.delim_with_ids(&t);
        // Sanity: instrumentation must not change the verdict or the count.
        let base = run(&prog.program, &dt, Limits::long_walk());
        let mut mc = MetricsCollector::new();
        let measured = run_with(&prog.program, &dt, Limits::long_walk(), &mut mc);
        assert_eq!(base.accepted(), measured.accepted());
        assert_eq!(base.steps, mc.metrics.steps);
        group.bench_with_input(BenchmarkId::new("uninstrumented", n), &dt, |bch, dt| {
            bch.iter(|| run(&prog.program, dt, Limits::long_walk()))
        });
        group.bench_with_input(BenchmarkId::new("null_collector", n), &dt, |bch, dt| {
            bch.iter(|| run_with(&prog.program, dt, Limits::long_walk(), &mut NullCollector))
        });
        group.bench_with_input(BenchmarkId::new("metrics_collector", n), &dt, |bch, dt| {
            bch.iter(|| {
                let mut mc = MetricsCollector::new();
                run_with(&prog.program, dt, Limits::long_walk(), &mut mc);
                mc.metrics.steps
            })
        });
        group.bench_with_input(BenchmarkId::new("with_registry", n), &dt, |bch, dt| {
            let mut reg = Registry::new();
            bch.iter(|| {
                let mut mc = MetricsCollector::with_registry(&mut reg);
                run_with(&prog.program, dt, Limits::long_walk(), &mut mc);
                mc.into_metrics().steps
            })
        });
    }
    group.finish();

    // The zero-cost assertion: with `NullCollector` the instrumented entry
    // point must cost the same as the uninstrumented one. The 2x bound is
    // deliberately generous — it tolerates shared-CI noise while still
    // catching the failure mode that matters (a registry/sink check
    // accidentally leaking onto the `C::ENABLED = false` path, which
    // shows up as an integer multiple, not a few percent).
    let t = b.tree(8, &[1], 5);
    let dt = b.delim_with_ids(&t);
    let uninstrumented = median_ns(7, || {
        run(&prog.program, &dt, Limits::long_walk());
    })
    .max(1);
    let null = median_ns(7, || {
        run_with(&prog.program, &dt, Limits::long_walk(), &mut NullCollector);
    });
    println!(
        "null-collector overhead: {null} ns vs {uninstrumented} ns uninstrumented \
         ({:.2}x)",
        null as f64 / uninstrumented as f64
    );
    assert!(
        null <= uninstrumented.saturating_mul(2),
        "NullCollector run ({null} ns) costs more than 2x the uninstrumented \
         run ({uninstrumented} ns): the zero-cost seam has regressed"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
