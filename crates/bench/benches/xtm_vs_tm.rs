//! E11 — Theorem 6.2: the xTM working directly on the tree vs. the
//! ordinary TM working on the canonical string encoding, recognizing the
//! same language (even leaf count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_bench::Bench;
use twq_xtm::machine::{run_xtm, XtmLimits};
use twq_xtm::tm::tm_leaf_count_even;
use twq_xtm::{encode, machines, run_tm, to_bytes};

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let xtm = machines::leaf_count_even(&b.symbols);
    let tm = tm_leaf_count_even();
    let mut group = c.benchmark_group("e11_xtm_vs_tm");
    group.sample_size(10);
    for n in [30usize, 90, 270] {
        let t = b.tree(n, &[1], 13);
        let dt = twq_tree::DelimTree::build(&t);
        let input = to_bytes(&encode(&t, &[]).unwrap());
        let xr = run_xtm(&xtm, &dt, XtmLimits::default());
        let tr = run_tm(&tm, &input, 100_000_000);
        assert_eq!(xr.accepted(), tr.accepted(), "Theorem 6.2");
        group.bench_with_input(BenchmarkId::new("xtm_on_tree", n), &dt, |bch, dt| {
            bch.iter(|| run_xtm(&xtm, dt, XtmLimits::default()))
        });
        group.bench_with_input(BenchmarkId::new("tm_on_encoding", n), &input, |bch, inp| {
            bch.iter(|| run_tm(&tm, inp, 100_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
