//! Execution-layer scaling — the two speedups the exec layer claims:
//! batch tree runs fanned across the worker pool (the E4-style
//! polynomial-sweep workload), and memoized FO evaluation against the
//! naive recursive evaluator on deep trees.
//!
//! On a single-core host the pool rows collapse to the serial inline
//! path, so the worker sweep then prices pool overhead rather than
//! demonstrating speedup — nothing here asserts a ratio. Verdict
//! equality across worker counts *is* asserted before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{examples, run_batch, Limits};
use twq_bench::Bench;
use twq_exec::Pool;
use twq_logic::fo::build::*;
use twq_logic::{eval_sentence, eval_sentence_memo, eval_sentence_par, select, select_memo};
use twq_tree::Tree;

fn batch_scaling(c: &mut Criterion) {
    let mut b = Bench::new();
    let a = b.attr;
    let prog = examples::parent_child_match_program(&b.symbols, a);
    // Distinct values on every node: no parent-child match exists, so
    // every run performs its full polynomial sweep (the E4 worst case) —
    // uniform per-item cost, the best case for chunked fan-out.
    let trees: Vec<Tree> = (0..8i64)
        .map(|s| {
            let mut t = b.tree(80, &[], 30 + s as u64);
            let ids: Vec<_> = t.node_ids().collect();
            for (i, u) in ids.into_iter().enumerate() {
                let val = b.vocab.val_int(10_000 + s * 1_000 + i as i64);
                t.set_attr(u, a, val);
            }
            t
        })
        .collect();
    let mut group = c.benchmark_group("exec_scaling");
    group.sample_size(10);
    let baseline = run_batch(&prog, &trees, Limits::default(), &Pool::new(1));
    for workers in [1usize, 2, 4] {
        let pool = Pool::new(workers);
        let got = run_batch(&prog, &trees, Limits::default(), &pool);
        for (s, g) in baseline.iter().zip(&got) {
            assert_eq!(s.accepted(), g.accepted());
            assert_eq!(s.steps, g.steps);
        }
        group.bench_with_input(
            BenchmarkId::new("run_batch_workers", workers),
            &pool,
            |bch, pool| bch.iter(|| run_batch(&prog, &trees, Limits::default(), pool)),
        );
    }
    group.finish();
}

fn memo_speedup(c: &mut Criterion) {
    let mut b = Bench::new();
    let t = b.tree(48, &[1, 2], 7);
    let (x, y, z, w, v) = (var(0), var(1), var(2), var(3), var(4));
    // φ(x, y): a *closed* well-formedness clause (every edge is a
    // descendant pair) conjoined with "y is below x and has a leaf below
    // it". The clause is a doubly-universal truth, so proving it scans
    // all n² pairs with no short-circuit; the memoized evaluator pays
    // that once per select, the naive evaluator once per candidate y.
    let closed = forall(w, forall(v, implies(edge(w, v), desc(w, v))));
    let phi = and([
        closed.clone(),
        desc(x, y),
        exists(z, and([desc(y, z), leaf(z)])),
    ]);
    let u = t.root();
    let naive = select(&t, &phi, x, u, y).unwrap();
    let memo = select_memo(&t, &phi, x, u, y).unwrap();
    assert_eq!(naive, memo);

    // The inner clause is closed: memoized it is proven once, naively it
    // is re-proven under every outer leaf binding.
    let sentence = forall(x, implies(leaf(x), closed.clone()));
    let base = eval_sentence(&t, &sentence).unwrap();
    assert_eq!(base, eval_sentence_memo(&t, &sentence).unwrap());
    let pool = Pool::new(4);
    assert_eq!(base, eval_sentence_par(&t, &sentence, &pool).unwrap());

    let mut group = c.benchmark_group("exec_scaling");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("select", "naive"), |bch| {
        bch.iter(|| select(&t, &phi, x, u, y).unwrap())
    });
    group.bench_function(BenchmarkId::new("select", "memo"), |bch| {
        bch.iter(|| select_memo(&t, &phi, x, u, y).unwrap())
    });
    group.bench_function(BenchmarkId::new("sentence", "naive"), |bch| {
        bch.iter(|| eval_sentence(&t, &sentence).unwrap())
    });
    group.bench_function(BenchmarkId::new("sentence", "memo"), |bch| {
        bch.iter(|| eval_sentence_memo(&t, &sentence).unwrap())
    });
    group.bench_function(BenchmarkId::new("sentence", "par4"), |bch| {
        bch.iter(|| eval_sentence_par(&t, &sentence, &pool).unwrap())
    });
    group.finish();
}

criterion_group!(benches, batch_scaling, memo_speedup);
criterion_main!(benches);
