//! Trace overhead — the same long compiled-pebble walk run three ways:
//! through the public uninstrumented entry point (`run`, which
//! monomorphizes over `NullCollector`), through `run_with` with an
//! explicit `NullCollector` (the disabled-trace path, which must stay
//! indistinguishable from `run` even with the trace hooks compiled in),
//! and through a `TraceCollector` recording the full causal span tree.
//! The first two enforce the zero-cost claim for the six hooks the trace
//! layer added (`quant_*`, `axis_*`, `selected`, `trip`); the last
//! prices full trace capture.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{run, run_with, Limits};
use twq_bench::Bench;
use twq_obs::{NullCollector, TraceCollector};
use twq_sim::compile_logspace;
use twq_xtm::machines;

/// Median wall-clock of `samples` runs of `f`, in nanoseconds.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let machine = machines::leaf_count_even(&b.symbols);
    let symbols = b.symbols.clone();
    let id = b.id;
    let prog = compile_logspace(&machine, &symbols, id, &mut b.vocab).unwrap();
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for n in [6usize, 8] {
        let t = b.tree(n, &[1], 5);
        let dt = b.delim_with_ids(&t);
        // Sanity: tracing must not change the verdict, and the recorded
        // root must carry the same halt the report does.
        let base = run(&prog.program, &dt, Limits::long_walk());
        let mut tc = TraceCollector::new();
        let traced = run_with(&prog.program, &dt, Limits::long_walk(), &mut tc);
        assert_eq!(base.accepted(), traced.accepted());
        let trace = tc.finish("bench");
        assert_eq!(
            trace.verdict().and_then(|v| v.accepted()),
            Some(base.accepted())
        );
        group.bench_with_input(BenchmarkId::new("uninstrumented", n), &dt, |bch, dt| {
            bch.iter(|| run(&prog.program, dt, Limits::long_walk()))
        });
        group.bench_with_input(BenchmarkId::new("null_collector", n), &dt, |bch, dt| {
            bch.iter(|| run_with(&prog.program, dt, Limits::long_walk(), &mut NullCollector))
        });
        group.bench_with_input(BenchmarkId::new("trace_collector", n), &dt, |bch, dt| {
            bch.iter(|| {
                let mut tc = TraceCollector::new();
                run_with(&prog.program, dt, Limits::long_walk(), &mut tc);
                tc.finish("bench").size()
            })
        });
    }
    group.finish();

    // The zero-cost assertion for the disabled-trace path: with
    // `NullCollector` the instrumented entry point must cost the same as
    // the uninstrumented one. The 2x bound is deliberately generous — it
    // tolerates shared-CI noise while still catching the failure mode
    // that matters (trace argument preparation leaking onto the
    // `C::ENABLED = false` path, which shows up as an integer multiple).
    let t = b.tree(8, &[1], 5);
    let dt = b.delim_with_ids(&t);
    let uninstrumented = median_ns(7, || {
        run(&prog.program, &dt, Limits::long_walk());
    })
    .max(1);
    let null = median_ns(7, || {
        run_with(&prog.program, &dt, Limits::long_walk(), &mut NullCollector);
    });
    println!(
        "disabled-trace overhead: {null} ns vs {uninstrumented} ns uninstrumented \
         ({:.2}x)",
        null as f64 / uninstrumented as f64
    );
    assert!(
        null <= uninstrumented.saturating_mul(2),
        "NullCollector run ({null} ns) costs more than 2x the uninstrumented \
         run ({uninstrumented} ns): the zero-cost trace seam has regressed"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
