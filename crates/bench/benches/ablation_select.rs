//! Ablation — the DNF-split pruning FO(∃*) evaluator vs. the naive
//! nested-quantifier evaluator, on compiled XPath selectors (the design
//! choice called out in DESIGN.md §4: naive evaluation of a union with k
//! existential variables costs n^k; splitting per-disjunct makes it
//! output-sensitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_bench::Bench;
use twq_logic::eval::select as naive_select;
use twq_xpath::{compile, parse_xpath};

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    // A union query: modest per-branch variable counts, but the naive
    // evaluator must still enumerate the union of both branches' variables
    // (n^8-ish) while the DNF split stays per-branch (n^4-ish).
    let phi = compile(&parse_xpath("sigma/delta | delta/sigma", &mut b.vocab).unwrap());
    let formula = phi.to_formula();
    let mut group = c.benchmark_group("ablation_select");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let t = b.tree(n, &[1], 21);
        // Sanity: both evaluators agree.
        let fast = phi.select(&t, t.root());
        let naive = naive_select(&t, &formula, phi.x(), t.root(), phi.y()).unwrap();
        assert_eq!(fast, naive);
        group.bench_with_input(BenchmarkId::new("dnf_pruning", n), &t, |bch, t| {
            bch.iter(|| phi.select(t, t.root()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &t, |bch, t| {
            bch.iter(|| naive_select(t, &formula, phi.x(), t.root(), phi.y()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
