//! E1 — Example 3.2 at scale: the paper's worked `tw^{r,l}` automaton on
//! growing random trees, direct engine vs. memoized graph evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{examples, run, run_graph, Limits};
use twq_bench::Bench;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let ex = examples::example_32(&mut b.vocab);
    let mut group = c.benchmark_group("e1_example32");
    group.sample_size(10);
    for n in [20usize, 60, 180] {
        let t = b.tree(n, &[1, 2], 7);
        let dt = twq_tree::DelimTree::build(&t);
        group.bench_with_input(BenchmarkId::new("direct", n), &dt, |bch, dt| {
            bch.iter(|| run(&ex.program, dt, Limits::default()))
        });
        group.bench_with_input(BenchmarkId::new("graph", n), &dt, |bch, dt| {
            bch.iter(|| run_graph(&ex.program, dt, Limits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
