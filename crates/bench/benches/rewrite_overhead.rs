//! Rewrite overhead — what query-level static analysis costs and what it
//! buys. Three questions, one group:
//!
//! * `analyze/*` — the price of a full `rewrite()` pass (normalize +
//!   certify + diagnostics) per query shape, the cost a planner pays
//!   before ever touching a tree;
//! * `eval/*` — batch selection over a query mix, direct vs. through the
//!   rewritten twin (`eval_from_rewritten` re-normalizes per call, so
//!   this is the worst-case per-evaluation overhead);
//! * `stream/*` — a streamable query on a deep chain, relational
//!   evaluator vs. the certified one-pass evaluator whose state is
//!   bounded by `max_depth_state`.
//!
//! The analysis must stay cheap relative to a single evaluation over a
//! modest tree, and the rewritten twins must not regress the direct
//! path — both are gated by `bench-diff` against `bench/baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_bench::Bench;
use twq_rw::{eval_from_rewritten, rewrite, stream_select, Certificate};
use twq_tree::generate::chain_tree;
use twq_xpath::{eval_from, random_xpath_shaped, XPath, XPathGenConfig, XPathShape};

fn corpus(b: &mut Bench, shape: XPathShape, n: usize) -> Vec<XPath> {
    let one = b.vocab.val_int(1);
    let cfg = XPathGenConfig {
        symbols: b.symbols.clone(),
        attrs: vec![b.attr],
        values: vec![one],
        max_depth: 3,
    };
    (0..n as u64)
        .map(|s| random_xpath_shaped(&cfg, s, shape))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let mut group = c.benchmark_group("rewrite_overhead");
    group.sample_size(10);

    // Analysis latency per query shape: 64 queries per pass.
    for (label, shape) in [
        ("uniform", XPathShape::Uniform),
        ("union_heavy", XPathShape::UnionHeavy),
        ("filter_heavy", XPathShape::FilterHeavy),
    ] {
        let queries = corpus(&mut b, shape, 64);
        group.bench_with_input(BenchmarkId::new("analyze", label), &queries, |bch, qs| {
            bch.iter(|| qs.iter().map(|q| rewrite(q).fired.len()).sum::<usize>())
        });
    }

    // Direct vs. rewritten batch selection on a mixed corpus. Sanity:
    // the twins must agree before we price them.
    let mix: Vec<XPath> = corpus(&mut b, XPathShape::Uniform, 16)
        .into_iter()
        .chain(corpus(&mut b, XPathShape::UnionHeavy, 16))
        .chain(corpus(&mut b, XPathShape::FilterHeavy, 16))
        .collect();
    let t = b.tree(200, &[1, 2], 5);
    for q in &mix {
        assert_eq!(
            eval_from(&t, q, t.root()),
            eval_from_rewritten(&t, q, t.root()),
            "rewritten twin diverged on `{}`",
            q.display(&b.vocab)
        );
    }
    group.bench_with_input(BenchmarkId::new("eval", "direct"), &mix, |bch, qs| {
        bch.iter(|| {
            qs.iter()
                .map(|q| eval_from(&t, q, t.root()).len())
                .sum::<usize>()
        })
    });
    group.bench_with_input(BenchmarkId::new("eval", "rewritten"), &mix, |bch, qs| {
        bch.iter(|| {
            qs.iter()
                .map(|q| eval_from_rewritten(&t, q, t.root()).len())
                .sum::<usize>()
        })
    });

    // Certified streaming on a deep chain: one streamable query, both
    // evaluators. The certificate is asserted, not assumed.
    let sigma = b.symbols[0];
    let chain = chain_tree(sigma, 512);
    let streamable = corpus(&mut b, XPathShape::Uniform, 64)
        .into_iter()
        .find(|q| matches!(rewrite(q).certificate, Certificate::Streamable { .. }))
        .expect("uniform corpus contains a streamable query");
    let direct = eval_from(&chain, &streamable, chain.root());
    let (streamed, _) =
        stream_select(&chain, &rewrite(&streamable).output).expect("certified query must stream");
    assert_eq!(direct, streamed);
    group.bench_with_input(
        BenchmarkId::new("stream", "relational"),
        &streamable,
        |bch, q| bch.iter(|| eval_from(&chain, q, chain.root()).len()),
    );
    group.bench_with_input(
        BenchmarkId::new("stream", "one_pass"),
        &streamable,
        |bch, q| {
            let nf = rewrite(q).output;
            bch.iter(|| stream_select(&chain, &nf).map(|(s, _)| s.len()))
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
