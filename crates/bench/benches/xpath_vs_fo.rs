//! E2 — XPath ⊆ FO(∃*) (Section 2.3): direct XPath evaluation vs. the
//! compiled FO(∃*) selector on growing documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_bench::Bench;
use twq_xpath::{compile, eval_from, parse_xpath};

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let queries = [
        "sigma/delta",
        "//delta[sigma]",
        "sigma//sigma[@a=1] | delta",
    ];
    let mut group = c.benchmark_group("e2_xpath_vs_fo");
    group.sample_size(10);
    for n in [30usize, 90, 270] {
        let t = b.tree(n, &[1, 2], 3);
        for (qi, q) in queries.iter().enumerate() {
            let path = parse_xpath(q, &mut b.vocab).unwrap();
            let phi = compile(&path);
            group.bench_with_input(
                BenchmarkId::new(format!("direct_q{qi}"), n),
                &t,
                |bch, t| bch.iter(|| eval_from(t, &path, t.root())),
            );
            group.bench_with_input(BenchmarkId::new(format!("fo_q{qi}"), n), &t, |bch, t| {
                bch.iter(|| phi.select(t, t.root()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
