//! E12 — Proposition 7.2: the store-eliminating product construction,
//! benchmarked as construction cost plus folded-vs-source runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{run, Limits};
use twq_bench::Bench;
use twq_sim::{delta_count_mod3, eliminate_store};
use twq_tree::Label;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let sigma = Label::Sym(b.symbols[0]);
    let delta = Label::Sym(b.symbols[1]);
    let src = delta_count_mod3(sigma, delta, &mut b.vocab);
    let folded = eliminate_store(&src, 10_000).unwrap();
    let mut group = c.benchmark_group("e12_prop72");
    group.sample_size(10);
    group.bench_function("eliminate_store", |bch| {
        bch.iter(|| eliminate_store(&src, 10_000).unwrap())
    });
    for n in [30usize, 90, 270] {
        let t = b.tree(n, &[], 17);
        let dt = twq_tree::DelimTree::build(&t);
        let a = run(&src, &dt, Limits::default());
        let f = run(&folded, &dt, Limits::default());
        assert_eq!(a.accepted(), f.accepted(), "Proposition 7.2");
        group.bench_with_input(BenchmarkId::new("source_twr", n), &dt, |bch, dt| {
            bch.iter(|| run(&src, dt, Limits::default()))
        });
        group.bench_with_input(BenchmarkId::new("folded_tw", n), &dt, |bch, dt| {
            bch.iter(|| run(&folded, dt, Limits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
