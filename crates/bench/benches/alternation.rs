//! E13 — alternation (the ALOGSPACE = PTIME bridge of Theorem 7.1(2)):
//! game-semantics evaluation of an alternating xTM on growing trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_bench::Bench;
use twq_xtm::machine::XtmLimits;
use twq_xtm::{machines, run_alternating};

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let m = machines::alt_all_leaves_even_depth(&b.symbols);
    let mut group = c.benchmark_group("e13_alternation");
    group.sample_size(10);
    for n in [20usize, 60, 180] {
        let t = b.tree(n, &[], 19);
        let dt = twq_tree::DelimTree::build(&t);
        group.bench_with_input(BenchmarkId::new("alt_eval", n), &dt, |bch, dt| {
            bch.iter(|| run_alternating(&m, dt, XtmLimits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
