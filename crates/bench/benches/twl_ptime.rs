//! E4 — Theorem 7.1(2): a `tw^l` program (single-node look-ahead) under
//! the memoized configuration-graph evaluator; runtime and configuration
//! count grow polynomially with the tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{examples, run_graph, Limits};
use twq_bench::Bench;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let prog = examples::parent_child_match_program(&b.symbols, b.attr);
    assert_eq!(prog.classify(), twq_automata::TwClass::TwL);
    let mut group = c.benchmark_group("e4_twl_ptime");
    group.sample_size(10);
    for n in [20usize, 60, 180] {
        let t = b.tree(n, &[1, 2, 3, 4, 5, 6, 7, 8], 9);
        let dt = twq_tree::DelimTree::build(&t);
        group.bench_with_input(BenchmarkId::new("graph_eval", n), &dt, |bch, dt| {
            bch.iter(|| run_graph(&prog, dt, Limits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
