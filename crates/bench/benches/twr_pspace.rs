//! E5 — Theorem 7.1(3): the compiled `tw^r` store program vs. the source
//! xTM; the store stays linear while the chain evaluator keeps only one
//! configuration alive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{run, Limits};
use twq_bench::Bench;
use twq_sim::compile_pspace;
use twq_xtm::machine::{run_xtm, XtmLimits};
use twq_xtm::machines;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let machine = machines::leaf_count_even(&b.symbols);
    let symbols = b.symbols.clone();
    let id = b.id;
    let prog = compile_pspace(&machine, &symbols, id, &mut b.vocab).unwrap();
    let mut group = c.benchmark_group("e5_twr_pspace");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let t = b.tree(n, &[1], 5);
        let dt = b.delim_with_ids(&t);
        let xr = run_xtm(&machine, &dt, XtmLimits::default());
        let sr = run(&prog.program, &dt, Limits::long_walk());
        assert_eq!(xr.accepted(), sr.accepted(), "Theorem 7.1(3)");
        group.bench_with_input(BenchmarkId::new("twr_store", n), &dt, |bch, dt| {
            bch.iter(|| run(&prog.program, dt, Limits::long_walk()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
