//! E7 — Lemma 4.2: deciding `L^m` by direct decoding vs. evaluating the
//! constructed FO sentence, for m = 1, 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_logic::eval_sentence;
use twq_protocol::{
    encode, encode_shuffled, in_lm, lm_sentence, random_hyperset, split_string_tree,
    HyperGenConfig, Markers,
};
use twq_tree::Vocab;

fn bench(c: &mut Criterion) {
    let mut vocab = Vocab::new();
    let markers = Markers::new(2, &mut vocab);
    let data: Vec<_> = (100..104).map(|i| vocab.val_int(i)).collect();
    let sym = vocab.sym("s");
    let attr = vocab.attr("a");
    let mut group = c.benchmark_group("e7_lm_fo");
    group.sample_size(10);
    for m in [1usize, 2] {
        let phi = lm_sentence(m, attr, &markers);
        let cfg = HyperGenConfig {
            level: m,
            data: data.clone(),
            max_members: 2,
        };
        let h = random_hyperset(&cfg, 3);
        let f = encode(&h, &markers);
        let g = encode_shuffled(&h, &markers, 5);
        let mut w = f.clone();
        w.push(markers.hash());
        w.extend(g.iter().copied());
        let t = split_string_tree(&f, &g, &markers, sym, attr);
        assert_eq!(in_lm(m, &w, &markers), eval_sentence(&t, &phi).unwrap());
        group.bench_with_input(BenchmarkId::new("decoder", m), &w, |bch, w| {
            bch.iter(|| in_lm(m, w, &markers))
        });
        group.bench_with_input(BenchmarkId::new("fo_sentence", m), &t, |bch, t| {
            bch.iter(|| eval_sentence(t, &phi).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
