//! E8 — Lemma 4.5: protocol execution of a `tw^{r,l}` program on split
//! strings; cost and message traffic as the string grows over a fixed
//! value alphabet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::Limits;
use twq_protocol::{at_most_k_values_program, run_protocol, Markers};
use twq_tree::{Value, Vocab};

fn bench(c: &mut Criterion) {
    let mut vocab = Vocab::new();
    let markers = Markers::new(2, &mut vocab);
    let data: Vec<Value> = (100..103).map(|i| vocab.val_int(i)).collect();
    let sym = vocab.sym("s");
    let attr = vocab.attr("a");
    let prog = at_most_k_values_program(sym, attr, 4);
    let mut group = c.benchmark_group("e8_protocol");
    group.sample_size(10);
    for len in [4usize, 8, 16] {
        let f: Vec<Value> = (0..len).map(|i| data[i % data.len()]).collect();
        let g: Vec<Value> = (0..len).map(|i| data[(i + 1) % data.len()]).collect();
        group.bench_with_input(BenchmarkId::new("run_protocol", len), &len, |bch, _| {
            bch.iter(|| run_protocol(&prog, &f, &g, &markers, sym, attr, Limits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
