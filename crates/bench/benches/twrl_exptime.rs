//! E6 — Theorem 7.1(4): a `tw^{r,l}` program whose register ranges over
//! value *subsets*. The configuration **space** is exponential in the
//! number of distinct values (the EXPTIME bound); the run itself visits
//! only the reachable slice, measured here alongside runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{examples, run, Limits};
use twq_bench::Bench;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let mut group = c.benchmark_group("e6_twrl_exptime");
    group.sample_size(10);
    for k in [2usize, 4, 6] {
        let values: Vec<i64> = (1..=k as i64).collect();
        let prog = examples::distinct_values_at_least(&b.symbols, b.attr, k);
        assert_eq!(prog.classify(), twq_automata::TwClass::TwRL);
        let t = b.tree(30, &values, 11);
        let dt = twq_tree::DelimTree::build(&t);
        group.bench_with_input(BenchmarkId::new("distinct_ge_k", k), &dt, |bch, dt| {
            bch.iter(|| run(&prog, dt, Limits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
