//! E3 — Theorem 7.1(1): the compiled TW pebble walker vs. the source
//! logspace xTM. Correctness is asserted; the timing shows the
//! (polynomial) cost of trading tape cells for walked pebbles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_automata::{run, Limits};
use twq_bench::Bench;
use twq_sim::compile_logspace;
use twq_xtm::machine::{run_xtm, XtmLimits};
use twq_xtm::machines;

fn bench(c: &mut Criterion) {
    let mut b = Bench::new();
    let machine = machines::leaf_count_even(&b.symbols);
    let symbols = b.symbols.clone();
    let id = b.id;
    let prog = compile_logspace(&machine, &symbols, id, &mut b.vocab).unwrap();
    let mut group = c.benchmark_group("e3_pebble_sim");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let t = b.tree(n, &[1], 5);
        let dt = b.delim_with_ids(&t);
        let xr = run_xtm(&machine, &dt, XtmLimits::default());
        let pr = run(&prog.program, &dt, Limits::long_walk());
        assert_eq!(xr.accepted(), pr.accepted(), "Theorem 7.1(1)");
        group.bench_with_input(BenchmarkId::new("xtm", n), &dt, |bch, dt| {
            bch.iter(|| run_xtm(&machine, dt, XtmLimits::default()))
        });
        group.bench_with_input(BenchmarkId::new("tw_pebbles", n), &dt, |bch, dt| {
            bch.iter(|| run(&prog.program, dt, Limits::long_walk()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
