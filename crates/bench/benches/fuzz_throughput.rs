//! Fuzzing throughput — the cost of one seeded differential-oracle case
//! and of a small end-to-end campaign. The per-case group prices the full
//! oracle (generate program + hostile tree + budgets, then run every
//! evaluator pair); the campaign group adds the fan-out and reporting
//! layers the `fuzz` binary uses. Tracked by `bench-diff` so an oracle or
//! generator slowdown shows up as a cases/sec regression, not as a silent
//! shrink of nightly coverage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_exec::Pool;
use twq_fuzz::{run_campaign, run_case, FuzzConfig, Universe};

fn bench(c: &mut Criterion) {
    let uni = Universe::standard();
    let cfg = FuzzConfig {
        seed: 1,
        minimize: false,
        ..FuzzConfig::default()
    };
    let pool = Pool::new(2);
    // Sanity: the benched slice of the case stream must be clean, or the
    // timings would include minimization work.
    for i in 0..32 {
        let out = run_case(&cfg, &uni, i, &pool);
        assert!(out.discrepancy.is_none(), "case {i}: {:?}", out.discrepancy);
    }

    let mut group = c.benchmark_group("fuzz_throughput");
    group.sample_size(10);
    // One case through the full differential oracle (index 0 is a
    // program-shaped case under seed 1).
    group.bench_function("case/one", |b| b.iter(|| run_case(&cfg, &uni, 0, &pool)));
    // A campaign slice: generation + oracle + fan-out + aggregation.
    let cases = 32u64;
    let camp = FuzzConfig {
        cases,
        ..cfg.clone()
    };
    group.bench_with_input(BenchmarkId::new("campaign", cases), &camp, |b, camp| {
        b.iter(|| run_campaign(camp, &uni, &pool))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
