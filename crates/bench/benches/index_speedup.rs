//! Index speedup — what the inverted indexes buy and what they cost.
//! Four questions, one group, all over a 64k-node tree:
//!
//! * `selective_label/*` — `//rare` (one symbol in 64): the walking
//!   evaluator's full document scan vs. the index plan's range
//!   intersection, planner included on the index side;
//! * `selective_value/*` — `//*[@a=v]` (one value in thousands): same
//!   comparison for the value postings;
//! * `unselective/*` — a cross-attribute value join over high-cardinality
//!   columns, where the cost model correctly refuses the index and the
//!   planned run must stay within a few percent of the direct walk;
//! * `build/*` — one full index build, the cost the first query amortizes.
//!
//! The selective entries are the ≥10× speedup claim of DESIGN §16 and the
//! README table; all entries are gated by `bench-diff` against
//! `bench/baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twq_index::{CostModel, Force, TreeIndex};
use twq_rw::{plan_indexed, run_query_indexed, IndexedEvaluator, RewriteCtx};
use twq_tree::generate::{random_tree, TreeGenConfig};
use twq_tree::{Tree, Vocab};
use twq_xpath::ast::xb;
use twq_xpath::{eval_from, XPath};

const NODES: usize = 65_536;

/// 64 symbols, two attribute columns drawing from 4096-value pools: big
/// enough that one label or one value is genuinely selective, and that a
/// cross-column join has far too many groups for the index to win.
fn workload(vocab: &mut Vocab) -> (Tree, TreeGenConfig) {
    let symbols = (0..64).map(|i| vocab.sym(&format!("s{i}"))).collect();
    let a = vocab.attr("a");
    let b = vocab.attr("b");
    let pool_a = (0..4096).map(|i| vocab.val_int(i)).collect();
    let pool_b = (0..4096).map(|i| vocab.val_int(4096 + i)).collect();
    let cfg = TreeGenConfig {
        nodes: NODES,
        max_children: 4,
        symbols,
        attributes: vec![(a, pool_a), (b, pool_b)],
        collision_pool: None,
    };
    (random_tree(&cfg, 42), cfg)
}

fn bench(c: &mut Criterion) {
    let mut vocab = Vocab::new();
    let (tree, cfg) = workload(&mut vocab);
    let idx = TreeIndex::build(&tree);
    let ctx = RewriteCtx::unconstrained();
    let model = CostModel::default();

    let rare = cfg.symbols[17];
    let (attr_a, attr_b) = (cfg.attributes[0].0, cfg.attributes[1].0);
    let rare_val = cfg.attributes[0].1[123];
    let q_label = xb::from_desc(xb::name(rare));
    let q_value = xb::filter_attr_const(xb::from_desc(xb::wild()), attr_a, rare_val);
    let q_join = xb::filter_attr_attr(xb::from_desc(xb::wild()), attr_a, attr_b);

    // Sanity before pricing: the twins agree, the planner picks the index
    // for the selective queries and refuses it for the join.
    for q in [&q_label, &q_value, &q_join] {
        let (got, _) = run_query_indexed(&tree, &idx, q, &ctx, &model, Force::Index);
        assert_eq!(
            got,
            eval_from(&tree, q, tree.root()),
            "indexed twin diverged"
        );
    }
    for q in [&q_label, &q_value] {
        let plan = plan_indexed(q, &ctx, &idx, &model, Force::Auto);
        assert_eq!(
            plan.evaluator,
            IndexedEvaluator::Indexed,
            "selective query must be planned onto the index"
        );
    }
    let join_plan = plan_indexed(&q_join, &ctx, &idx, &model, Force::Auto);
    assert_eq!(
        join_plan.evaluator,
        IndexedEvaluator::Walking,
        "high-cardinality join must fall back to walking"
    );

    let mut group = c.benchmark_group("index_speedup");
    group.sample_size(10);

    let walk_vs_index = |group: &mut criterion::BenchmarkGroup<'_>, label: &str, q: &XPath| {
        group.bench_with_input(BenchmarkId::new(label, "walk"), q, |bch, q| {
            bch.iter(|| eval_from(&tree, q, tree.root()).len())
        });
        group.bench_with_input(BenchmarkId::new(label, "index"), q, |bch, q| {
            bch.iter(|| {
                run_query_indexed(&tree, &idx, q, &ctx, &model, Force::Index)
                    .0
                    .len()
            })
        });
    };
    walk_vs_index(&mut group, "selective_label", &q_label);
    walk_vs_index(&mut group, "selective_value", &q_value);

    // The planner's refusal must be nearly free: direct walk vs. the full
    // planned run (rewrite + compile + estimate + walk).
    group.bench_with_input(
        BenchmarkId::new("unselective", "direct"),
        &q_join,
        |bch, q| bch.iter(|| eval_from(&tree, q, tree.root()).len()),
    );
    group.bench_with_input(
        BenchmarkId::new("unselective", "planned"),
        &q_join,
        |bch, q| {
            bch.iter(|| {
                run_query_indexed(&tree, &idx, q, &ctx, &model, Force::Auto)
                    .0
                    .len()
            })
        },
    );

    // Build amortization: one full index build over the 64k-node tree.
    group.bench_with_input(BenchmarkId::new("build", "64k"), &tree, |bch, t| {
        bch.iter(|| TreeIndex::build(t).stats().postings_bytes)
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
