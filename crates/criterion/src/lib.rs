//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-tree package provides the subset of the criterion 0.5 API the
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple warm-up plus timed batch with mean/min reporting — adequate for
//! the relative comparisons the benches make, with no statistics engine,
//! plots, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock budget per benchmark (warm-up included).
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let label = id.into();
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the target measurement time for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark a closure against a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, samples, self.criterion.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, samples, self.criterion.measurement_time, &mut f);
        self
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Label a benchmark by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// plain strings and explicit ids.
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `iters` times, timing the whole batch.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, samples: usize, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up single iteration; its duration calibrates the batch size so
    // one sample stays within the per-bench budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = budget / (samples.max(1) as u32);
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut measured = 0u64;
    let started = Instant::now();
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / (iters as u32);
        best = best.min(per_iter);
        total += b.elapsed;
        measured += iters;
        // Keep pathological benches bounded: stop once 2x over budget.
        if started.elapsed() > budget * 2 {
            break;
        }
    }
    let mean = total / (measured.max(1) as u32);
    println!(
        "{label:<48} mean {}  min {}  ({measured} iters)",
        fmt_dur(mean),
        fmt_dur(best)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert!(runs >= 2);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
