//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-tree package provides the subset of the criterion 0.5 API the
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple warm-up plus timed batch with mean/min reporting — adequate for
//! the relative comparisons the benches make, with no statistics engine
//! or plots.
//!
//! One piece of persistence real criterion lacks: every [`Criterion`]
//! flushes a machine-readable `BENCH_twq.json` on drop, mapping each
//! benchmark label to its median per-iteration nanoseconds. The file is
//! merged read-modify-write, so the separate bench binaries cargo runs
//! one after another accumulate into a single report. Set the
//! `TWQ_BENCH_JSON` environment variable to relocate it, or to `0` to
//! disable the file entirely.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock budget per benchmark (warm-up included).
    measurement_time: Duration,
    /// Label → median ns/iter, flushed to [`Criterion::out_path`] on drop.
    results: BTreeMap<String, u128>,
    out_path: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let out_path = match std::env::var("TWQ_BENCH_JSON") {
            Err(_) => Some(PathBuf::from("BENCH_twq.json")),
            Ok(s) if s.is_empty() || s == "0" => None,
            Ok(s) => Some(PathBuf::from(s)),
        };
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            results: BTreeMap::new(),
            out_path,
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Some(path) = self.out_path.take() else {
            return;
        };
        if self.results.is_empty() {
            return;
        }
        // Read-modify-write: each bench binary (and each group within
        // one) lands in the same accumulated report.
        let mut all = std::fs::read_to_string(&path)
            .map(|s| parse_flat_json(&s))
            .unwrap_or_default();
        all.append(&mut self.results);
        let _ = std::fs::write(&path, render_flat_json(&all));
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let label = id.into();
        let median = run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self.results.insert(label, median);
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the target measurement time for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark a closure against a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let median = run_one(&label, samples, self.criterion.measurement_time, &mut |b| {
            f(b, input)
        });
        self.criterion.results.insert(label, median);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let median = run_one(&label, samples, self.criterion.measurement_time, &mut f);
        self.criterion.results.insert(label, median);
        self
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Label a benchmark by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// plain strings and explicit ids.
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `iters` times, timing the whole batch.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Run one benchmark: warm-up, timed samples, report. Returns the median
/// per-iteration time in nanoseconds (what `BENCH_twq.json` records).
fn run_one(label: &str, samples: usize, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) -> u128 {
    // Warm-up single iteration; its duration calibrates the batch size so
    // one sample stays within the per-bench budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = budget / (samples.max(1) as u32);
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut measured = 0u64;
    let mut per_iter_ns: Vec<u128> = Vec::with_capacity(samples);
    let started = Instant::now();
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / (iters as u32);
        best = best.min(per_iter);
        total += b.elapsed;
        measured += iters;
        per_iter_ns.push(per_iter.as_nanos());
        // Keep pathological benches bounded: stop once 2x over budget.
        if started.elapsed() > budget * 2 {
            break;
        }
    }
    per_iter_ns.sort_unstable();
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = total / (measured.max(1) as u32);
    println!(
        "{label:<48} mean {}  min {}  ({measured} iters)",
        fmt_dur(mean),
        fmt_dur(best)
    );
    median
}

/// Render `label → ns` as a stable, pretty-printed flat JSON object.
fn render_flat_json(map: &BTreeMap<String, u128>) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in map.iter().enumerate() {
        let sep = if i + 1 == map.len() { "" } else { "," };
        out.push_str(&format!("  \"{}\": {v}{sep}\n", escape_json(k)));
    }
    out.push_str("}\n");
    out
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Parse the flat `{"label": ns, ...}` objects [`render_flat_json`]
/// writes. Tolerant of whitespace; anything unparseable yields an empty
/// map (the report is then rebuilt from scratch).
fn parse_flat_json(s: &str) -> BTreeMap<String, u128> {
    let mut out = BTreeMap::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '"' {
            continue;
        }
        // Key: quoted string with \" and \\ escapes.
        let mut key = String::new();
        loop {
            match chars.next() {
                Some('\\') => {
                    if let Some(e) = chars.next() {
                        key.push(e);
                    }
                }
                Some('"') => break,
                Some(c) => key.push(c),
                None => return out,
            }
        }
        // Separator, then an unsigned integer value.
        while let Some(&c) = chars.peek() {
            if c == ':' || c.is_whitespace() {
                chars.next();
            } else {
                break;
            }
        }
        let mut digits = String::new();
        while let Some(&c) = chars.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                chars.next();
            } else {
                break;
            }
        }
        if let Ok(v) = digits.parse() {
            out.insert(key, v);
        }
    }
    out
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion() -> Criterion {
        Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(10),
            results: BTreeMap::new(),
            out_path: None,
        }
    }

    #[test]
    fn group_and_bench_run() {
        let mut c = test_criterion();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert!(runs >= 2);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn benches_record_median_results() {
        let mut c = test_criterion();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("in", 7), &7u64, |b, &n| b.iter(|| n + 1));
        group.bench_function("fun", |b| b.iter(|| 2 + 2));
        group.finish();
        let labels: Vec<&str> = c.results.keys().map(String::as_str).collect();
        assert_eq!(labels, ["g/fun", "g/in/7", "top"]);
    }

    #[test]
    fn flat_json_round_trips() {
        let mut m = BTreeMap::new();
        m.insert("plain/label".to_string(), 123u128);
        m.insert("quo\"ted\\path".to_string(), 4_567_890u128);
        let rendered = render_flat_json(&m);
        assert_eq!(parse_flat_json(&rendered), m);
        assert!(parse_flat_json("not json at all").is_empty());
        assert!(parse_flat_json("").is_empty());
    }

    #[test]
    fn drop_merges_into_existing_report() {
        let dir = std::env::temp_dir().join(format!("twq_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_twq.json");
        std::fs::write(&path, "{\n  \"old/bench\": 42\n}\n").unwrap();
        {
            let mut c = test_criterion();
            c.out_path = Some(path.clone());
            c.results.insert("new/bench".into(), 7);
        }
        let merged = parse_flat_json(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(merged.get("old/bench"), Some(&42));
        assert_eq!(merged.get("new/bench"), Some(&7));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
