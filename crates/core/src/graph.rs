//! Configuration-graph evaluation — the upper-bound constructions of
//! Theorem 7.1(2) and 7.1(4).
//!
//! For `tw^l` the number of distinct configurations is polynomial in `|t|`
//! (each of the `k` unary registers holds at most one active value), and
//! for `tw^{r,l}` it is exponential. In both cases the run *including all
//! `atp` subcomputations* is a deterministic function of the starting
//! configuration, so the outcome of every configuration can be memoized
//! globally: each configuration is fully evaluated at most once, giving
//! total work `O(#configurations × step cost)` — the paper's
//! "construct the configuration graph in a bottom-up manner" argument made
//! executable. The [`GraphReport::distinct_configs`] counter is exactly
//! the quantity whose growth the E4/E6 experiments plot.

use std::collections::HashMap;

use twq_logic::store::AttrEnv;
use twq_logic::{eval_query, RegId, Relation};
use twq_tree::{DelimTree, Tree};

use crate::engine::{move_dir, Config, Halt, Limits};
use crate::program::{Action, TwProgram};

/// Outcome of a fully evaluated configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Memo {
    /// The chain starting here accepts, with this final first register.
    Accept(Relation),
    /// The chain starting here rejects.
    Reject(Halt),
}

/// Statistics from a memoized run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphReport {
    /// How the run ended.
    pub halt: Halt,
    /// Distinct configurations evaluated (memo table size) — polynomial in
    /// `|t|` for `tw^l`, possibly exponential for `tw^{r,l}` (Thm 7.1).
    pub distinct_configs: usize,
    /// Total transitions taken across all first-time evaluations.
    pub steps: u64,
    /// `atp` invocations (memo hits included).
    pub atp_calls: u64,
    /// Largest store observed.
    pub max_store_tuples: usize,
}

impl GraphReport {
    /// Whether the run accepted.
    pub fn accepted(&self) -> bool {
        self.halt.accepted()
    }
}

struct GraphExec<'a> {
    prog: &'a TwProgram,
    tree: &'a Tree,
    limits: Limits,
    memo: HashMap<Config, Memo>,
    steps: u64,
    atp_calls: u64,
    max_store_tuples: usize,
}

impl<'a> GraphExec<'a> {
    /// Evaluate the chain starting at `cfg`, consulting and filling the
    /// global memo table.
    fn eval(&mut self, start: Config, depth: u32) -> Memo {
        // The configurations of the current chain, in order; they all share
        // the final outcome (the run from each is a suffix of the run from
        // the first).
        let mut path: Vec<Config> = Vec::new();
        let mut path_set: HashMap<Config, ()> = HashMap::new();
        let mut cfg = start;
        let outcome = loop {
            if let Some(m) = self.memo.get(&cfg) {
                break m.clone();
            }
            if path_set.contains_key(&cfg) {
                break Memo::Reject(Halt::Cycle);
            }
            self.max_store_tuples = self.max_store_tuples.max(cfg.store.total_tuples());
            path.push(cfg.clone());
            path_set.insert(cfg.clone(), ());

            // Acceptance check.
            if cfg.state == self.prog.final_state() {
                break Memo::Accept(cfg.store.get(RegId(0)).clone());
            }
            // Rule selection.
            let env = AttrEnv::of(self.tree, cfg.node);
            let label = self.tree.label(cfg.node);
            let mut chosen = None;
            let mut nondet = false;
            for &idx in self.prog.rules_for(label, cfg.state) {
                let rule = &self.prog.rules()[idx];
                if twq_logic::eval_guard(&cfg.store, &env, &rule.guard) {
                    if chosen.is_some() {
                        nondet = true;
                        break;
                    }
                    chosen = Some(idx);
                }
            }
            if nondet {
                break Memo::Reject(Halt::Nondeterministic);
            }
            let Some(rule_idx) = chosen else {
                break Memo::Reject(Halt::Stuck);
            };
            if self.steps >= self.limits.max_steps {
                break Memo::Reject(Halt::StepLimit);
            }
            self.steps += 1;
            let rule = &self.prog.rules()[rule_idx];
            match &rule.action {
                Action::Move(q, d) => match move_dir(self.tree, cfg.node, *d) {
                    Some(v) => {
                        cfg = Config {
                            node: v,
                            state: *q,
                            store: cfg.store,
                        };
                    }
                    None => break Memo::Reject(Halt::Stuck),
                },
                Action::Update(q, psi, i) => {
                    let env = AttrEnv::of(self.tree, cfg.node);
                    let rel = eval_query(&cfg.store, &env, psi);
                    let mut store = cfg.store;
                    store.set(*i, rel);
                    cfg = Config {
                        node: cfg.node,
                        state: *q,
                        store,
                    };
                }
                Action::Atp(q, phi, p, i) => {
                    if depth >= self.limits.max_atp_depth {
                        break Memo::Reject(Halt::AtpDepthLimit);
                    }
                    self.atp_calls += 1;
                    let selected = phi.select(self.tree, cfg.node);
                    let mut acc = Relation::empty(cfg.store.arity(RegId(0)));
                    let mut failed = None;
                    for v in selected {
                        let sub = Config {
                            node: v,
                            state: *p,
                            store: cfg.store.clone(),
                        };
                        match self.eval(sub, depth + 1) {
                            Memo::Accept(rel) => acc.union_with(&rel),
                            Memo::Reject(h) => {
                                failed = Some(if h.is_limit() { h } else { Halt::SubRejected });
                                break;
                            }
                        }
                    }
                    if let Some(h) = failed {
                        break Memo::Reject(h);
                    }
                    let mut store = cfg.store;
                    store.set(*i, acc);
                    cfg = Config {
                        node: cfg.node,
                        state: *q,
                        store,
                    };
                }
            }
        };
        // Every configuration on the path shares the outcome.
        for c in path {
            self.memo.insert(c, outcome.clone());
        }
        outcome
    }
}

/// Run a program via the memoized configuration-graph evaluator.
pub fn run_graph(prog: &TwProgram, delim: &DelimTree, limits: Limits) -> GraphReport {
    let tree = delim.tree();
    let mut exec = GraphExec {
        prog,
        tree,
        limits,
        memo: HashMap::new(),
        steps: 0,
        atp_calls: 0,
        max_store_tuples: 0,
    };
    let init = Config {
        node: tree.root(),
        state: prog.initial(),
        store: prog.initial_store(),
    };
    let halt = match exec.eval(init, 0) {
        Memo::Accept(_) => Halt::Accept,
        Memo::Reject(h) => h,
    };
    GraphReport {
        halt,
        distinct_configs: exec.memo.len(),
        steps: exec.steps,
        atp_calls: exec.atp_calls,
        max_store_tuples: exec.max_store_tuples,
    }
}

/// Convenience: delimit `tree` and run.
pub fn run_graph_on_tree(prog: &TwProgram, tree: &Tree, limits: Limits) -> GraphReport {
    run_graph(prog, &DelimTree::build(tree), limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_on_tree, Limits};
    use crate::examples;
    use twq_tree::generate::{random_tree, TreeGenConfig};
    use twq_tree::Vocab;

    /// The graph evaluator and the direct engine agree on acceptance for
    /// the Example 3.2 program over random trees.
    #[test]
    fn agrees_with_direct_engine() {
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let mixed = TreeGenConfig::example32(&mut vocab, 40, &[1, 2]);
        let uniform = TreeGenConfig::example32(&mut vocab, 40, &[7]);
        let (mut accepts, mut rejects) = (0, 0);
        for seed in 0..10 {
            for cfg in [&mixed, &uniform] {
                let t = random_tree(cfg, seed);
                let direct = run_on_tree(&ex.program, &t, Limits::default());
                let graph = run_graph_on_tree(&ex.program, &t, Limits::default());
                assert_eq!(direct.accepted(), graph.accepted(), "seed {seed}");
                if direct.accepted() {
                    accepts += 1;
                } else {
                    rejects += 1;
                }
            }
        }
        // The workload must exercise both outcomes to be meaningful.
        assert!(accepts > 0 && rejects > 0, "accepts = {accepts}");
    }

    #[test]
    fn memoization_bounds_config_count() {
        // On a tree with many identical leaves, subcomputations from
        // distinct leaf nodes still differ (different node), but repeated
        // visits to the same configuration are free. distinct_configs must
        // not exceed (#states × #nodes × #store-values) for a tw^l-style
        // program with one unary register over one distinct value.
        let mut vocab = Vocab::new();
        let ex = examples::example_32(&mut vocab);
        let s = vocab.sym("sigma");
        let a = vocab.attr("a");
        let val = vocab.val_int(1);
        let mut t = twq_tree::generate::star_tree(s, 30);
        let ids: Vec<_> = t.node_ids().collect();
        for u in ids {
            t.set_attr(u, a, val);
        }
        let report = run_graph_on_tree(&ex.program, &t, Limits::default());
        assert!(report.accepted());
        let delim_size = twq_tree::DelimTree::build(&t).tree().len();
        // Coarse polynomial bound: states × delim nodes × (values+1)².
        let bound = ex.program.state_count() * delim_size * 4;
        assert!(
            report.distinct_configs <= bound,
            "{} > {}",
            report.distinct_configs,
            bound
        );
    }
}
