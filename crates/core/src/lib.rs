//! # twq-automata — tree-walking automata with relational storage and look-ahead
//!
//! The primary contribution of Neven's *On the Power of Walking for
//! Querying Tree-Structured Data* (PODS 2002), implemented as an executable
//! query-automaton library:
//!
//! * [`program`] — the `tw^{r,l}` model (Definition 3.1): states, rules
//!   `(σ, q, ξ) → α`, moves, FO register updates, `atp` look-ahead; the
//!   restriction classes `tw^r`, `tw^l`, `TW` (Definition 5.1) with
//!   syntactic classification and validation;
//! * [`engine`] — direct deterministic execution on delimited trees, with
//!   cycle detection, subcomputation semantics, and full instrumentation;
//! * [`graph`] — the memoized configuration-graph evaluator realizing the
//!   PTIME/EXPTIME upper-bound arguments of Theorem 7.1;
//! * [`twir`] — a structured walker IR (sequences, branches, loops,
//!   pebble macros) compiled to flat `TW` rule sets; the workhorse behind
//!   the Theorem 7.1 simulation compilers in `twq-sim`;
//! * [`examples`] — the paper's Example 3.2 and a library of reference
//!   programs with plain-Rust oracles;
//! * [`caterpillar`] — the caterpillar expressions of Brüggemann-Klein &
//!   Wood (the intro's first tree-walking instance): regular expressions
//!   over moves and tests, evaluated by NFA × tree reachability;
//! * [`twodfa`] — two-way string automata (the model Section 3 opens
//!   with) and their literal embedding into `TW` walkers on monadic
//!   trees.

pub mod caterpillar;
pub mod engine;
pub mod examples;
pub mod graph;
pub mod program;
pub mod twir;
pub mod twodfa;

pub use engine::{
    run, run_batch, run_batch_governed, run_batch_guarded, run_batch_profiled,
    run_batch_with_metrics, run_guarded, run_guarded_with, run_on_tree, run_on_tree_guarded,
    run_on_tree_with, run_traced, run_traced_with, run_with, trace_batch, trace_run,
    trace_run_guarded, Config, Halt, Limits, RunReport, TraceStep,
};
pub use graph::{run_graph, run_graph_on_tree, GraphReport};
pub use program::{Action, Dir, ProgramError, Rule, State, TwClass, TwProgram, TwProgramBuilder};
