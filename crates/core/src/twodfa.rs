//! Two-way deterministic finite automata on strings — the model Section 3
//! opens with ("such devices 'walk' in two directions over a string …
//! Analogously, a tree-walking automaton is a finite state device walking
//! a tree"), plus the embedding of 2DFAs into `TW` walkers on monadic
//! trees that makes the analogy literal.
//!
//! A 2DFA works on `⊢ w ⊣`; transitions depend on the state and the
//! symbol (or endmarker) under the head and move left or right. On the
//! tree side, the string `w = σ₁…σₙ` is the monadic tree `σ₁(σ₂(…σₙ))`,
//! `delim`-ed as usual: moving right is `↓` then `→` (hop over `⊳`, or
//! land on `△` = the right endmarker), moving left is `↑` (landing on `▽`
//! = the left endmarker). [`TwoDfa::to_walker`] performs this translation and the
//! tests confirm 2DFA ≡ compiled walker on random strings.

use std::collections::HashMap;

use twq_guard::{GaugeKind, Guard, NullGuard, TwqError};
use twq_obs::{Collector, HaltKind, NullCollector};
use twq_tree::{Label, SymId, Tree};

use crate::program::{Action, Dir, ProgramError, TwProgram, TwProgramBuilder};

/// A 2DFA state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DState(pub u16);

/// What the head sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// The left endmarker `⊢`.
    LeftEnd,
    /// The right endmarker `⊣`.
    RightEnd,
    /// A proper symbol.
    Sym(SymId),
}

/// A head move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DMove {
    /// One cell left.
    L,
    /// One cell right.
    R,
}

/// A two-way DFA over element symbols.
#[derive(Debug, Clone)]
pub struct TwoDfa {
    state_names: Vec<String>,
    initial: DState,
    accept: DState,
    delta: HashMap<(DState, Cell), (DState, DMove)>,
}

/// Builder for [`TwoDfa`].
#[derive(Debug, Default)]
pub struct TwoDfaBuilder {
    state_names: Vec<String>,
    by_name: HashMap<String, DState>,
    initial: Option<DState>,
    accept: Option<DState>,
    delta: HashMap<(DState, Cell), (DState, DMove)>,
}

impl TwoDfaBuilder {
    /// Start a new automaton.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a state.
    pub fn state(&mut self, name: &str) -> DState {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = DState(u16::try_from(self.state_names.len()).expect("too many states"));
        self.state_names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Declare the initial state (head starts at `⊢`).
    pub fn initial(&mut self, s: DState) -> &mut Self {
        self.initial = Some(s);
        self
    }

    /// Declare the accepting state.
    pub fn accept(&mut self, s: DState) -> &mut Self {
        self.accept = Some(s);
        self
    }

    /// Add a transition.
    pub fn t(&mut self, from: DState, on: Cell, to: DState, mv: DMove) -> &mut Self {
        let prev = self.delta.insert((from, on), (to, mv));
        assert!(prev.is_none(), "duplicate transition");
        self
    }

    /// Freeze.
    pub fn build(self) -> TwoDfa {
        TwoDfa {
            state_names: self.state_names,
            initial: self.initial.expect("initial state required"),
            accept: self.accept.expect("accept state required"),
            delta: self.delta,
        }
    }
}

/// How a 2DFA run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DHalt {
    /// Accept state reached.
    Accept,
    /// No transition.
    Stuck,
    /// Configuration repeated (2DFAs can loop).
    Cycle,
    /// Walked off an endmarker.
    OffTape,
}

impl TwoDfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    /// Run on a word (without endmarkers; they are added internally).
    pub fn run(&self, word: &[SymId]) -> DHalt {
        self.run_with(word, &mut NullCollector)
    }

    /// [`TwoDfa::run`] with instrumentation: one chain span for the whole
    /// run, one step per transition (the tape position plays the node),
    /// and cycle-table bookkeeping. `OffTape` reports as
    /// [`HaltKind::Stuck`] — walking off the tape is the string analogue
    /// of walking off the tree.
    pub fn run_with<C: Collector>(&self, word: &[SymId], c: &mut C) -> DHalt {
        let mut guard = NullGuard;
        self.run_inner(word, c, &mut guard)
            .expect("NullGuard never trips")
    }

    /// [`TwoDfa::run`] under a resource [`Guard`]: one fuel unit per
    /// transition, the visited-configuration table reported as
    /// [`GaugeKind::Configs`].
    pub fn run_guarded<G: Guard>(&self, word: &[SymId], guard: &mut G) -> Result<DHalt, TwqError> {
        self.run_inner(word, &mut NullCollector, guard)
    }

    fn run_inner<C: Collector, G: Guard>(
        &self,
        word: &[SymId],
        c: &mut C,
        g: &mut G,
    ) -> Result<DHalt, TwqError> {
        // Positions: 0 = ⊢, 1..=n = symbols, n+1 = ⊣.
        let n = word.len();
        let cell = |pos: usize| -> Cell {
            if pos == 0 {
                Cell::LeftEnd
            } else if pos == n + 1 {
                Cell::RightEnd
            } else {
                Cell::Sym(word[pos - 1])
            }
        };
        let mut state = self.initial;
        let mut pos = 0usize;
        let mut seen = vec![false; (n + 2) * self.state_count()];
        let mut tracked = 0usize;
        c.chain_enter(pos as u64, state.0 as u32, 0);
        let halt = loop {
            if state == self.accept {
                break DHalt::Accept;
            }
            let key = pos * self.state_count() + state.0 as usize;
            if seen[key] {
                break DHalt::Cycle;
            }
            seen[key] = true;
            tracked += 1;
            c.cycle_bookkeeping(tracked);
            if G::ENABLED {
                if let Err(e) = g.tick() {
                    c.chain_exit(HaltKind::StepLimit, 0);
                    return Err(TwqError::Guard(e));
                }
                if let Err(e) = g.gauge(GaugeKind::Configs, tracked) {
                    c.chain_exit(HaltKind::StepLimit, 0);
                    return Err(TwqError::Guard(e));
                }
            }
            let Some(&(next, mv)) = self.delta.get(&(state, cell(pos))) else {
                break DHalt::Stuck;
            };
            c.step(pos as u64, state.0 as u32, 0);
            // Acceptance is by *entering* the accept state; the final move
            // is irrelevant (and may point off the tape).
            if next == self.accept {
                break DHalt::Accept;
            }
            state = next;
            match mv {
                DMove::L => {
                    if pos == 0 {
                        break DHalt::OffTape;
                    }
                    pos -= 1;
                }
                DMove::R => {
                    if pos == n + 1 {
                        break DHalt::OffTape;
                    }
                    pos += 1;
                }
            }
        };
        let kind = match halt {
            DHalt::Accept => HaltKind::Accept,
            DHalt::Stuck | DHalt::OffTape => HaltKind::Stuck,
            DHalt::Cycle => HaltKind::Cycle,
        };
        c.chain_exit(kind, 0);
        c.halt(kind);
        Ok(halt)
    }

    /// Compile into a `TW` walker over the monadic-tree embedding: state
    /// `q` at string position `i` ↔ walker state `q` at the `i`-th chain
    /// node (`▽` plays `⊢`, `△` plays `⊣`). One 2DFA right-move becomes
    /// two walker moves (`↓` to `⊳`/`△`, then `→` past `⊳`); left-moves
    /// become `↑` (with `△ → ↑↑` to hop back to the last symbol, and
    /// `▽`-adjacent bookkeeping for the `⊢ → first symbol` step).
    pub fn to_walker(&self, alphabet: &[SymId]) -> Result<TwProgram, ProgramError> {
        let mut b = TwProgramBuilder::new();
        // Walker states: per 2DFA state q, a main state and a "hop" state
        // (used mid-right-move while standing on ⊳).
        let q_f = b.state("qF");
        let main: Vec<_> = (0..self.state_count())
            .map(|i| b.state(&format!("{}@{i}", self.state_names[i])))
            .collect();
        let hop: Vec<_> = (0..self.state_count())
            .map(|i| b.state(&format!("hop@{i}")))
            .collect();
        b.initial(main[self.initial.0 as usize]);
        b.final_state(q_f);

        let target = |s: DState| main[s.0 as usize];
        for (&(from, on), &(to, mv)) in &self.delta {
            if from == self.accept {
                continue;
            }
            let from_main = main[from.0 as usize];
            let to_state = if to == self.accept { q_f } else { target(to) };
            // Entering the accept state ends the run; the declared move is
            // irrelevant (it may even point off the tape).
            if to == self.accept {
                match on {
                    Cell::LeftEnd => {
                        b.rule_true(Label::DelimRoot, from_main, Action::Move(q_f, Dir::Stay));
                    }
                    Cell::RightEnd => {
                        b.rule_true(Label::DelimLeaf, from_main, Action::Move(q_f, Dir::Stay));
                        b.rule_true(Label::DelimClose, from_main, Action::Move(q_f, Dir::Stay));
                    }
                    Cell::Sym(sy) => {
                        b.rule_true(Label::Sym(sy), from_main, Action::Move(q_f, Dir::Stay));
                    }
                }
                continue;
            }
            match on {
                Cell::LeftEnd => {
                    // At ▽. Right: ↓ (to ⊳) then → (to the first symbol or
                    // ⊲ for the empty word — treat ⊲ as ⊣ by a dedicated
                    // rule below). Left: off tape → no rule (stuck).
                    if mv == DMove::R {
                        b.rule_true(
                            Label::DelimRoot,
                            from_main,
                            Action::Move(hop[to.0 as usize], Dir::Down),
                        );
                    }
                }
                Cell::RightEnd => {
                    // At △ (or top-level ⊲ for the empty word). Left: ↑ to
                    // the last symbol (or ▽). Right: off tape.
                    if mv == DMove::L {
                        b.rule_true(Label::DelimLeaf, from_main, Action::Move(to_state, Dir::Up));
                        b.rule_true(
                            Label::DelimClose,
                            from_main,
                            Action::Move(to_state, Dir::Up),
                        );
                    }
                }
                Cell::Sym(s) => match mv {
                    DMove::R => {
                        b.rule_true(
                            Label::Sym(s),
                            from_main,
                            Action::Move(hop[to.0 as usize], Dir::Down),
                        );
                    }
                    DMove::L => {
                        b.rule_true(Label::Sym(s), from_main, Action::Move(to_state, Dir::Up));
                    }
                },
            }
        }
        // Hop states: we just moved ↓ and stand on ⊳ (another symbol
        // follows) or △ (we reached ⊣). On ⊳: → lands on the symbol. The
        // empty word's ▽ hop lands on ⊳ whose → is ⊲ — a second hop rule
        // forwards ⊲ to the same state as △ would be... but ⊲ IS where we
        // land, so the ⊲ rules of RightEnd transitions (above) apply.
        for i in 0..self.state_count() {
            let to_state = if DState(i as u16) == self.accept {
                q_f
            } else {
                main[i]
            };
            b.rule_true(Label::DelimOpen, hop[i], Action::Move(to_state, Dir::Right));
            // Landed directly on △: we're at ⊣ already.
            b.rule_true(Label::DelimLeaf, hop[i], Action::Move(to_state, Dir::Stay));
        }
        // Accepting immediately in a hop-target is handled because hop
        // forwards into q_f when the target is the accept state.
        let _ = alphabet;
        b.build()
    }
}

/// The classic genuinely two-way example: **even number of `a`s and even
/// number of `b`s**, by two passes (right pass counting `a`-parity,
/// rewind, right pass counting `b`-parity).
pub fn even_as_and_bs(a: SymId, bsym: SymId) -> TwoDfa {
    let mut b = TwoDfaBuilder::new();
    let pa = [b.state("a_even"), b.state("a_odd")];
    let rew = b.state("rewind");
    let pb = [b.state("b_even"), b.state("b_odd")];
    let acc = b.state("acc");
    b.initial(pa[0]).accept(acc);
    // Pass 1: count a-parity rightwards.
    for p in 0..2 {
        b.t(pa[p], Cell::LeftEnd, pa[p], DMove::R);
        b.t(pa[p], Cell::Sym(a), pa[1 - p], DMove::R);
        b.t(pa[p], Cell::Sym(bsym), pa[p], DMove::R);
    }
    // At ⊣ with even a-count: rewind. Odd: stuck (reject).
    b.t(pa[0], Cell::RightEnd, rew, DMove::L);
    // Rewind to ⊢.
    b.t(rew, Cell::Sym(a), rew, DMove::L);
    b.t(rew, Cell::Sym(bsym), rew, DMove::L);
    b.t(rew, Cell::LeftEnd, pb[0], DMove::R);
    // Pass 2: count b-parity.
    for p in 0..2 {
        b.t(pb[p], Cell::Sym(bsym), pb[1 - p], DMove::R);
        b.t(pb[p], Cell::Sym(a), pb[p], DMove::R);
    }
    b.t(pb[0], Cell::RightEnd, acc, DMove::R);
    b.build()
}

/// Build the monadic tree for a word (requires a non-empty word; the
/// paper's trees are non-empty).
pub fn word_tree(word: &[SymId]) -> Tree {
    assert!(!word.is_empty(), "trees are never empty");
    let mut t = Tree::new(Label::Sym(word[0]));
    let mut cur = t.root();
    for &s in &word[1..] {
        cur = t.add_child(cur, Label::Sym(s));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_on_tree, Limits};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn syms() -> (twq_tree::Vocab, SymId, SymId) {
        let mut v = twq_tree::Vocab::new();
        let a = v.sym("a");
        let b = v.sym("b");
        (v, a, b)
    }

    fn oracle(word: &[SymId], a: SymId, b: SymId) -> bool {
        word.iter().filter(|&&s| s == a).count() % 2 == 0
            && word.iter().filter(|&&s| s == b).count() % 2 == 0
    }

    #[test]
    fn two_way_automaton_decides_double_parity() {
        let (_, a, b) = syms();
        let m = even_as_and_bs(a, b);
        let mut rng = StdRng::seed_from_u64(1);
        for len in 1..=12usize {
            for _ in 0..6 {
                let word: Vec<SymId> = (0..len)
                    .map(|_| if rng.gen_bool(0.5) { a } else { b })
                    .collect();
                let got = m.run(&word) == DHalt::Accept;
                assert_eq!(got, oracle(&word, a, b), "{word:?}");
            }
        }
    }

    #[test]
    fn cycle_detection_on_pathological_automaton() {
        let (_, a, b) = syms();
        let mut bb = TwoDfaBuilder::new();
        let s0 = bb.state("s0");
        let s1 = bb.state("s1");
        let acc = bb.state("acc");
        bb.initial(s0).accept(acc);
        bb.t(s0, Cell::LeftEnd, s1, DMove::R);
        bb.t(s1, Cell::Sym(a), s0, DMove::L);
        bb.t(s0, Cell::Sym(a), s0, DMove::R); // unreachable from ⊢ shape
        let m = bb.build();
        assert_eq!(m.run(&[a, b]), DHalt::Cycle);
    }

    #[test]
    fn walker_embedding_agrees_with_the_2dfa() {
        let (_, a, b) = syms();
        let m = even_as_and_bs(a, b);
        let walker = m.to_walker(&[a, b]).unwrap();
        assert_eq!(walker.reg_count(), 0, "pure finite-state walker");
        let mut rng = StdRng::seed_from_u64(7);
        let (mut acc, mut rej) = (0, 0);
        for len in 1..=10usize {
            for _ in 0..4 {
                let word: Vec<SymId> = (0..len)
                    .map(|_| if rng.gen_bool(0.5) { a } else { b })
                    .collect();
                let t = word_tree(&word);
                let direct = m.run(&word) == DHalt::Accept;
                let walked = run_on_tree(&walker, &t, Limits::default());
                assert_eq!(walked.accepted(), direct, "{word:?}");
                if direct {
                    acc += 1;
                } else {
                    rej += 1;
                }
            }
        }
        assert!(acc > 0 && rej > 0, "acc={acc} rej={rej}");
    }

    #[test]
    fn word_tree_is_a_chain() {
        let (_, a, b) = syms();
        let t = word_tree(&[a, b, a]);
        assert_eq!(t.len(), 3);
        let mut cur = t.root();
        let mut labels = vec![t.label(cur)];
        while let Some(c) = t.first_child(cur) {
            labels.push(t.label(c));
            cur = c;
        }
        assert_eq!(labels, vec![Label::Sym(a), Label::Sym(b), Label::Sym(a)]);
    }
}
