//! Tree-walking programs: the `tw^{r,l}` automaton model of Definition 3.1
//! and its restrictions `tw^r`, `tw^l`, `TW` (Definition 5.1).
//!
//! A `k`-register `tw^{r,l}`-automaton is a tuple `(Q, q₀, q_F, τ₀, P)`
//! where `P` contains rules `(σ, q, ξ) → α`: when the current node carries
//! `σ`, the state is `q`, and the store satisfies the guard `ξ`, the
//! automaton performs `α`, which is one of
//!
//! 1. `(q', d)` — change state and move in direction
//!    `d ∈ {·, ←, →, ↑, ↓}`;
//! 2. `(q', ψ, i)` — change state and replace register `i` with the
//!    relation defined by the store-FO formula `ψ`;
//! 3. `(q', atp(φ(x,y), p), i)` — change state and replace register `i`
//!    with the union of the first registers of subcomputations started in
//!    state `p` at every node selected by the `FO(∃*)` formula `φ` from
//!    the current node.
//!
//! One deliberate generalization: Definition 3.1 types the initial
//! assignment as `τ₀ : {1,…,k} → D ∪ {⊥}` (single values), a leftover from
//! the register model of [Neven–Schwentick–Vianu 2000] — but configurations
//! immediately re-type `τ` as mapping registers to *relations*. We let
//! `τ₀` assign an arbitrary finite relation (usually empty or a singleton),
//! which subsumes the paper's typing.

use std::collections::HashMap;
use std::fmt;

use twq_logic::{ExistsFormula, RegId, Relation, SAtom, SFormula, STerm};
use twq_tree::{Label, Vocab};

/// An automaton state `q ∈ Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State(pub u16);

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A walking direction `d ∈ {·, ←, →, ↑, ↓}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// `·` — stay.
    Stay,
    /// `←` — left sibling.
    Left,
    /// `→` — right sibling.
    Right,
    /// `↑` — parent.
    Up,
    /// `↓` — first child.
    Down,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::Stay => "·",
            Dir::Left => "←",
            Dir::Right => "→",
            Dir::Up => "↑",
            Dir::Down => "↓",
        };
        f.write_str(s)
    }
}

/// The right-hand side `α` of a rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Form 1: `(q', d)`.
    Move(State, Dir),
    /// Form 2: `(q', ψ, i)`.
    Update(State, SFormula, RegId),
    /// Form 3: `(q', atp(φ(x,y), p), i)`.
    Atp(State, ExistsFormula, State, RegId),
}

impl Action {
    /// The successor state `q'`.
    pub fn next_state(&self) -> State {
        match self {
            Action::Move(q, _) | Action::Update(q, _, _) | Action::Atp(q, _, _, _) => *q,
        }
    }
}

/// A rule `(σ, q, ξ) → α`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The label the current node must carry.
    pub label: Label,
    /// The state the automaton must be in.
    pub state: State,
    /// The guard `ξ`, an FO sentence over the store (plus attribute and
    /// data-value constants).
    pub guard: SFormula,
    /// The action.
    pub action: Action,
}

/// The language class of a program (Definition 5.1), ordered by
/// expressiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TwClass {
    /// `TW`: unary single-value registers, quantifier-free single-value
    /// updates, no look-ahead. Captures LOGSPACE^X with unique IDs.
    Tw,
    /// `tw^l`: `TW` plus single-node look-ahead. Captures PTIME^X.
    TwL,
    /// `tw^r`: full relational storage, no look-ahead. Captures PSPACE^X.
    TwR,
    /// `tw^{r,l}`: everything. Captures EXPTIME^X.
    TwRL,
}

impl fmt::Display for TwClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TwClass::Tw => "TW",
            TwClass::TwL => "tw^l",
            TwClass::TwR => "tw^r",
            TwClass::TwRL => "tw^{r,l}",
        };
        f.write_str(s)
    }
}

/// A violation found while building ([`TwProgramBuilder::build`]) or
/// class-checking a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A rule references an unknown state.
    UnknownState(String),
    /// A rule references a register out of range.
    UnknownRegister(String),
    /// An update's free variables don't match the target register arity.
    UpdateArityMismatch(String),
    /// A store formula applies a register at the wrong arity.
    RelationArityMismatch(String),
    /// A guard has free variables.
    GuardNotSentence(String),
    /// A rule fires from the final state (forbidden by Definition 3.1).
    RuleFromFinalState(String),
    /// An `atp` target register is not arity-compatible with register 1.
    AtpResultArity(String),
    /// Class violation: look-ahead used where forbidden.
    LookAheadForbidden(String),
    /// Class violation: non-unary register in a single-value class.
    NonUnaryRegister(String),
    /// Class violation: update not in single-value form.
    UpdateNotSingleValue(String),
    /// Initial register content doesn't match the declared arity.
    InitArityMismatch(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, detail) = match self {
            ProgramError::UnknownState(d) => ("unknown state", d),
            ProgramError::UnknownRegister(d) => ("unknown register", d),
            ProgramError::UpdateArityMismatch(d) => ("update arity mismatch", d),
            ProgramError::RelationArityMismatch(d) => ("relation arity mismatch", d),
            ProgramError::GuardNotSentence(d) => ("guard is not a sentence", d),
            ProgramError::RuleFromFinalState(d) => ("rule from final state", d),
            ProgramError::AtpResultArity(d) => ("atp result arity mismatch", d),
            ProgramError::LookAheadForbidden(d) => ("look-ahead forbidden in class", d),
            ProgramError::NonUnaryRegister(d) => ("non-unary register in class", d),
            ProgramError::UpdateNotSingleValue(d) => ("update not single-value", d),
            ProgramError::InitArityMismatch(d) => ("initial register arity mismatch", d),
        };
        write!(f, "{kind}: {detail}")
    }
}

impl std::error::Error for ProgramError {}

/// A complete tree-walking program `(Q, q₀, q_F, τ₀, P)`.
#[derive(Debug, Clone)]
pub struct TwProgram {
    state_names: Vec<String>,
    initial: State,
    final_state: State,
    reg_arities: Vec<usize>,
    init_regs: Vec<Relation>,
    rules: Vec<Rule>,
    /// Rules indexed by `(label, state)` for O(1) dispatch.
    index: HashMap<(Label, State), Vec<usize>>,
}

impl TwProgram {
    /// Number of states `|Q|`.
    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    /// The initial state `q₀`.
    pub fn initial(&self) -> State {
        self.initial
    }

    /// The final state `q_F`.
    pub fn final_state(&self) -> State {
        self.final_state
    }

    /// The name of a state.
    pub fn state_name(&self, q: State) -> &str {
        &self.state_names[q.0 as usize]
    }

    /// Number of registers `k`.
    pub fn reg_count(&self) -> usize {
        self.reg_arities.len()
    }

    /// Declared register arities.
    pub fn reg_arities(&self) -> &[usize] {
        &self.reg_arities
    }

    /// The initial store `τ₀`.
    pub fn initial_store(&self) -> twq_logic::Store {
        let mut st = twq_logic::Store::with_arities(&self.reg_arities);
        for (i, r) in self.init_regs.iter().enumerate() {
            st.set(RegId(i as u8), r.clone());
        }
        st
    }

    /// All rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Rules matching `(label, state)`.
    pub fn rules_for(&self, label: Label, state: State) -> &[usize] {
        self.index
            .get(&(label, state))
            .map_or(&[], |v| v.as_slice())
    }

    /// The paper's size measure (Definition 3.1):
    /// `|Q| + Σ|τ₀(i)| + Σ_{rules} |ξ|`.
    pub fn size(&self) -> usize {
        self.state_names.len()
            + self.init_regs.iter().map(Relation::len).sum::<usize>()
            + self.rules.iter().map(|r| r.guard.size()).sum::<usize>()
    }

    /// Whether any rule uses look-ahead (`atp`).
    pub fn uses_lookahead(&self) -> bool {
        self.rules
            .iter()
            .any(|r| matches!(r.action, Action::Atp(_, _, _, _)))
    }

    /// The smallest class (Definition 5.1) this program syntactically
    /// belongs to.
    pub fn classify(&self) -> TwClass {
        let unary_single = self.reg_arities.iter().all(|&a| a == 1)
            && self.rules.iter().all(|r| match &r.action {
                Action::Update(_, psi, _) => is_single_value_update(psi),
                // Definition 5.1: tw^l look-ahead must select a single
                // node, so the register stays a singleton.
                Action::Atp(_, phi, _, _) => phi.is_syntactically_single(),
                Action::Move(_, _) => true,
            })
            && self.init_regs.iter().all(|r| r.len() <= 1);
        match (unary_single, self.uses_lookahead()) {
            (true, false) => TwClass::Tw,
            (true, true) => TwClass::TwL,
            (false, false) => TwClass::TwR,
            (false, true) => TwClass::TwRL,
        }
    }

    /// Check this program against a target class; `Ok` iff `classify()` is
    /// at most as powerful (for `TwL` vs `TwR`, which are incomparable,
    /// membership is exact).
    pub fn check_class(&self, class: TwClass) -> Result<(), ProgramError> {
        let actual = self.classify();
        let ok = match class {
            TwClass::TwRL => true,
            TwClass::TwR => !self.uses_lookahead(),
            TwClass::TwL => actual == TwClass::Tw || actual == TwClass::TwL,
            TwClass::Tw => actual == TwClass::Tw,
        };
        if ok {
            Ok(())
        } else if class == TwClass::TwR || class == TwClass::Tw {
            if self.uses_lookahead() {
                return Err(ProgramError::LookAheadForbidden(format!(
                    "program is {actual}, target {class}"
                )));
            }
            Err(ProgramError::NonUnaryRegister(format!(
                "program is {actual}, target {class}"
            )))
        } else {
            Err(ProgramError::NonUnaryRegister(format!(
                "program is {actual}, target {class}"
            )))
        }
    }

    /// Render a human-readable listing.
    pub fn display(&self, vocab: &Vocab) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tw-program: {} states, {} registers (class {})",
            self.state_count(),
            self.reg_count(),
            self.classify()
        );
        let _ = writeln!(
            out,
            "  initial {} ({}), final {} ({})",
            self.initial,
            self.state_name(self.initial),
            self.final_state,
            self.state_name(self.final_state)
        );
        for r in &self.rules {
            let act = match &r.action {
                Action::Move(q, d) => format!("({q}, {d})"),
                Action::Update(q, psi, i) => {
                    format!("({q}, [{}], {i})", psi.display(vocab))
                }
                Action::Atp(q, phi, p, i) => {
                    format!("({q}, atp({}, {p}), {i})", phi.display(vocab))
                }
            };
            let guard = match &r.guard {
                SFormula::True => "true".to_owned(),
                g => g.display(vocab),
            };
            let _ = writeln!(
                out,
                "  ({}, {}, {}) → {}",
                r.label.display(vocab),
                r.state,
                guard,
                act
            );
        }
        out
    }
}

/// Syntactic single-value criterion for `tw^l`/`TW` updates
/// (Definition 5.1: "every formula ψ … is quantifier-free and defines only
/// one value"). With `x` the formula's unique free variable — the builder
/// fixes the free-variable *count* to the register arity but not the
/// variable's *name*, and [`twq_logic::eval_query`] is name-independent —
/// we accept exactly:
///
/// * `x = t` for a term `t` (attribute constant, data constant, or — for
///   register copies — nothing else), defining the singleton `{t}`;
/// * `X_j(x)` with `X_j` unary, copying register `j` (≤ 1 value when the
///   program invariant holds);
/// * `¬(x = x)` — the canonical *clear* (registers "contain at most one
///   data value", Definition 5.1, so the empty register is in range).
///
/// Earlier revisions pattern-matched the literal variable `x₀`, which
/// misclassified semantically identical updates written over `x₁`, `x₂`,
/// … as relational (`tw^r`); the static analyzer's class inference
/// (crate `twq-analyze`) disagreed, and this normalized form is the fix.
pub fn is_single_value_update(psi: &SFormula) -> bool {
    let fv = psi.free_vars();
    let [x] = fv.as_slice() else {
        return false;
    };
    let is_x = |t: &STerm| matches!(t, STerm::Var(v) if v == x);
    match psi {
        SFormula::Atom(SAtom::Eq(s, t)) if is_x(s) || is_x(t) => {
            // `x = t` / `t = x` with `t` not a variable (x = x would
            // define the whole active domain).
            !(matches!(s, STerm::Var(_)) && matches!(t, STerm::Var(_)))
        }
        SFormula::Atom(SAtom::Rel(_, ts)) => matches!(ts.as_slice(), [t] if is_x(t)),
        SFormula::Not(inner) => matches!(
            &**inner,
            SFormula::Atom(SAtom::Eq(STerm::Var(a), STerm::Var(b))) if a == b
        ),
        _ => false,
    }
}

/// Incremental builder for [`TwProgram`].
#[derive(Debug, Default)]
pub struct TwProgramBuilder {
    state_names: Vec<String>,
    by_name: HashMap<String, State>,
    initial: Option<State>,
    final_state: Option<State>,
    reg_arities: Vec<usize>,
    init_regs: Vec<Relation>,
    rules: Vec<Rule>,
}

impl TwProgramBuilder {
    /// Start a new program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a state by name.
    pub fn state(&mut self, name: &str) -> State {
        if let Some(&q) = self.by_name.get(name) {
            return q;
        }
        let q = State(u16::try_from(self.state_names.len()).expect("too many states"));
        self.state_names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), q);
        q
    }

    /// Declare the initial state.
    pub fn initial(&mut self, q: State) -> &mut Self {
        self.initial = Some(q);
        self
    }

    /// Declare the final state.
    pub fn final_state(&mut self, q: State) -> &mut Self {
        self.final_state = Some(q);
        self
    }

    /// Declare a register with the given arity and initial content, and
    /// return its id.
    pub fn register(&mut self, arity: usize, init: Relation) -> RegId {
        assert_eq!(init.arity(), arity, "initial relation arity mismatch");
        let id = RegId(u8::try_from(self.reg_arities.len()).expect("too many registers"));
        self.reg_arities.push(arity);
        self.init_regs.push(init);
        id
    }

    /// Declare an empty unary register (the common case).
    pub fn unary_register(&mut self) -> RegId {
        self.register(1, Relation::empty(1))
    }

    /// Add a rule.
    pub fn rule(
        &mut self,
        label: Label,
        state: State,
        guard: SFormula,
        action: Action,
    ) -> &mut Self {
        self.rules.push(Rule {
            label,
            state,
            guard,
            action,
        });
        self
    }

    /// Shorthand: unguarded rule (guard `true`).
    pub fn rule_true(&mut self, label: Label, state: State, action: Action) -> &mut Self {
        self.rule(label, state, SFormula::True, action)
    }

    /// Validate and freeze the program.
    pub fn build(self) -> Result<TwProgram, ProgramError> {
        let initial = self
            .initial
            .ok_or_else(|| ProgramError::UnknownState("no initial state declared".into()))?;
        let final_state = self
            .final_state
            .ok_or_else(|| ProgramError::UnknownState("no final state declared".into()))?;
        let nstates = self.state_names.len();
        let nregs = self.reg_arities.len();
        let check_state = |q: State, ctx: &str| -> Result<(), ProgramError> {
            if (q.0 as usize) < nstates {
                Ok(())
            } else {
                Err(ProgramError::UnknownState(format!("{q} in {ctx}")))
            }
        };
        let check_reg = |i: RegId, ctx: &str| -> Result<(), ProgramError> {
            if (i.0 as usize) < nregs {
                Ok(())
            } else {
                Err(ProgramError::UnknownRegister(format!("{i} in {ctx}")))
            }
        };
        let check_sformula_regs = |f: &SFormula, ctx: &str| -> Result<(), ProgramError> {
            for r in f.registers() {
                check_reg(r, ctx)?;
            }
            Ok(())
        };
        for (idx, rule) in self.rules.iter().enumerate() {
            let ctx = format!("rule #{idx}");
            check_state(rule.state, &ctx)?;
            check_state(rule.action.next_state(), &ctx)?;
            if rule.state == final_state {
                return Err(ProgramError::RuleFromFinalState(ctx));
            }
            if !rule.guard.free_vars().is_empty() {
                return Err(ProgramError::GuardNotSentence(ctx));
            }
            check_sformula_regs(&rule.guard, &ctx)?;
            match &rule.action {
                Action::Move(_, _) => {}
                Action::Update(_, psi, i) => {
                    check_reg(*i, &ctx)?;
                    check_sformula_regs(psi, &ctx)?;
                    let free = psi.free_vars().len();
                    if free != self.reg_arities[i.0 as usize] {
                        return Err(ProgramError::UpdateArityMismatch(format!(
                            "{ctx}: ψ has {free} free vars, register {i} has arity {}",
                            self.reg_arities[i.0 as usize]
                        )));
                    }
                }
                Action::Atp(_, _phi, p, i) => {
                    check_state(*p, &ctx)?;
                    check_reg(*i, &ctx)?;
                    // atp returns the *first* register of subcomputations;
                    // the receiving register must share its arity.
                    if nregs == 0 {
                        return Err(ProgramError::UnknownRegister(format!(
                            "{ctx}: atp requires at least one register"
                        )));
                    }
                    if self.reg_arities[i.0 as usize] != self.reg_arities[0] {
                        return Err(ProgramError::AtpResultArity(format!(
                            "{ctx}: register {i} arity {} ≠ register X1 arity {}",
                            self.reg_arities[i.0 as usize], self.reg_arities[0]
                        )));
                    }
                }
            }
        }
        check_state(initial, "initial")?;
        check_state(final_state, "final")?;
        for (i, (r, &a)) in self.init_regs.iter().zip(&self.reg_arities).enumerate() {
            if r.arity() != a {
                return Err(ProgramError::InitArityMismatch(format!(
                    "register X{}",
                    i + 1
                )));
            }
        }
        let mut index: HashMap<(Label, State), Vec<usize>> = HashMap::new();
        for (i, r) in self.rules.iter().enumerate() {
            index.entry((r.label, r.state)).or_default().push(i);
        }
        Ok(TwProgram {
            state_names: self.state_names,
            initial,
            final_state,
            reg_arities: self.reg_arities,
            init_regs: self.init_regs,
            rules: self.rules,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_logic::exists::selectors;
    use twq_logic::store::sbuild::*;

    fn sigma() -> Label {
        Label::Sym(twq_tree::SymId(0))
    }

    fn trivial_builder() -> (TwProgramBuilder, State, State) {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        (b, q0, qf)
    }

    #[test]
    fn build_minimal_acceptor() {
        let (mut b, q0, qf) = trivial_builder();
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        assert_eq!(p.state_count(), 2);
        assert_eq!(p.reg_count(), 0);
        assert_eq!(p.classify(), TwClass::Tw);
        assert_eq!(p.initial(), q0);
        assert_eq!(p.final_state(), qf);
        assert_eq!(p.rules_for(Label::DelimRoot, q0).len(), 1);
        assert!(p.rules_for(sigma(), q0).is_empty());
    }

    #[test]
    fn classification_matrix() {
        // TW: unary registers, single-value updates, no atp.
        let (mut b, q0, qf) = trivial_builder();
        let r = b.unary_register();
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Update(qf, eq(v(0), attr(a)), r),
        );
        assert_eq!(b.build().unwrap().classify(), TwClass::Tw);

        // tw^l: same + atp.
        let (mut b, q0, qf) = trivial_builder();
        let r = b.unary_register();
        let q1 = b.state("q1");
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(q1, selectors::first_child(), qf, r),
        );
        b.rule_true(Label::DelimRoot, q1, Action::Move(qf, Dir::Stay));
        assert_eq!(b.build().unwrap().classify(), TwClass::TwL);

        // tw^r: binary register, no atp.
        let (mut b, q0, qf) = trivial_builder();
        let r2 = b.register(2, Relation::empty(2));
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Update(qf, rel(r2, [v(0), v(1)]), r2),
        );
        assert_eq!(b.build().unwrap().classify(), TwClass::TwR);

        // tw^{r,l}: binary register + atp (needs register X1 arity match).
        let (mut b, q0, qf) = trivial_builder();
        let r1 = b.unary_register();
        let q1 = b.state("q1");
        b.register(2, Relation::empty(2));
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(q1, selectors::first_child(), qf, r1),
        );
        b.rule_true(Label::DelimRoot, q1, Action::Move(qf, Dir::Stay));
        assert_eq!(b.build().unwrap().classify(), TwClass::TwRL);
    }

    #[test]
    fn check_class_reports_violations() {
        let (mut b, q0, qf) = trivial_builder();
        let r = b.unary_register();
        let q1 = b.state("q1");
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(q1, selectors::first_child(), qf, r),
        );
        b.rule_true(Label::DelimRoot, q1, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        assert!(p.check_class(TwClass::TwRL).is_ok());
        assert!(p.check_class(TwClass::TwL).is_ok());
        assert!(matches!(
            p.check_class(TwClass::Tw),
            Err(ProgramError::LookAheadForbidden(_))
        ));
        assert!(matches!(
            p.check_class(TwClass::TwR),
            Err(ProgramError::LookAheadForbidden(_))
        ));
    }

    #[test]
    fn rejects_rule_from_final_state() {
        let (mut b, _q0, qf) = trivial_builder();
        b.rule_true(sigma(), qf, Action::Move(qf, Dir::Stay));
        assert!(matches!(
            b.build(),
            Err(ProgramError::RuleFromFinalState(_))
        ));
    }

    #[test]
    fn rejects_guard_with_free_vars() {
        let (mut b, q0, qf) = trivial_builder();
        let r = b.unary_register();
        b.rule(
            sigma(),
            q0,
            rel(r, [v(0)]), // free x0: not a sentence
            Action::Move(qf, Dir::Stay),
        );
        assert!(matches!(b.build(), Err(ProgramError::GuardNotSentence(_))));
    }

    #[test]
    fn rejects_update_arity_mismatch() {
        let (mut b, q0, qf) = trivial_builder();
        let r2 = b.register(2, Relation::empty(2));
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        b.rule_true(sigma(), q0, Action::Update(qf, eq(v(0), attr(a)), r2));
        assert!(matches!(
            b.build(),
            Err(ProgramError::UpdateArityMismatch(_))
        ));
    }

    #[test]
    fn rejects_atp_without_register() {
        let (mut b, q0, qf) = trivial_builder();
        let q1 = b.state("q1");
        // No registers at all — atp has nowhere to put results.
        let phi = selectors::first_child();
        b.rule_true(sigma(), q0, Action::Atp(q1, phi, qf, RegId(0)));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_unknown_register_in_guard() {
        let (mut b, q0, qf) = trivial_builder();
        b.rule(
            sigma(),
            q0,
            SFormula::Exists(twq_logic::Var(0), Box::new(rel(RegId(5), [v(0)]))),
            Action::Move(qf, Dir::Stay),
        );
        assert!(matches!(b.build(), Err(ProgramError::UnknownRegister(_))));
    }

    #[test]
    fn single_value_update_forms() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let d = vocab.val_int(3);
        assert!(is_single_value_update(&eq(v(0), attr(a))));
        assert!(is_single_value_update(&eq(attr(a), v(0))));
        assert!(is_single_value_update(&eq(v(0), cst(d))));
        assert!(is_single_value_update(&rel(RegId(1), [v(0)])));
        assert!(!is_single_value_update(&eq(v(0), v(0))));
        assert!(!is_single_value_update(&not(eq(v(0), cst(d)))));
        assert!(!is_single_value_update(&SFormula::True));
        // The canonical clear is a (≤1)-value update.
        assert!(is_single_value_update(&not(eq(v(0), v(0)))));
    }

    #[test]
    fn single_value_update_is_variable_name_independent() {
        // Regression: the builder only checks the free-variable *count*
        // against the register arity, and `eval_query` binds by value,
        // not by name — so ψ(x₂) means the same update as ψ(x₀). The
        // classifier used to pattern-match the literal x₀ and demote
        // these to relational.
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let d = vocab.val_int(3);
        assert!(is_single_value_update(&eq(v(1), attr(a))));
        assert!(is_single_value_update(&eq(attr(a), v(2))));
        assert!(is_single_value_update(&eq(v(5), cst(d))));
        assert!(is_single_value_update(&rel(RegId(1), [v(2)])));
        assert!(is_single_value_update(&not(eq(v(3), v(3)))));
        // Genuinely relational shapes stay relational regardless of names.
        assert!(!is_single_value_update(&eq(v(0), v(1))));
        assert!(!is_single_value_update(&not(eq(v(1), cst(d)))));
        assert!(!is_single_value_update(&rel(RegId(1), [v(0), v(1)])));
    }

    #[test]
    fn classify_is_variable_name_independent() {
        // Program-level regression for the same bug: an update written
        // over x₁ must classify exactly like its x₀ spelling.
        for var in [0u16, 1, 4] {
            let (mut b, q0, qf) = trivial_builder();
            let r = b.unary_register();
            let mut vocab = Vocab::new();
            let a = vocab.attr("a");
            b.rule_true(
                Label::DelimRoot,
                q0,
                Action::Update(qf, eq(v(var), attr(a)), r),
            );
            assert_eq!(b.build().unwrap().classify(), TwClass::Tw, "x{var}");
        }
    }

    #[test]
    fn size_measure() {
        let (mut b, q0, qf) = trivial_builder();
        let mut vocab = Vocab::new();
        let dv = vocab.val_int(1);
        b.register(1, Relation::singleton(dv));
        b.rule_true(sigma(), q0, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        // 2 states + 1 initial tuple + guard size 1.
        assert_eq!(p.size(), 4);
    }

    #[test]
    fn display_lists_rules() {
        let (mut b, q0, qf) = trivial_builder();
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Up));
        let p = b.build().unwrap();
        let vocab = Vocab::new();
        let s = p.display(&vocab);
        assert!(s.contains("▽"), "{s}");
        assert!(s.contains("↑"), "{s}");
    }
}
