//! Caterpillar expressions — the first instance of the tree-walking
//! paradigm the paper's introduction cites (Brüggemann-Klein & Wood, the
//! paper's reference \[7\]).
//!
//! A caterpillar expression is a regular expression over an alphabet of
//! atomic *moves* (`up`, `down` = first child, `left`, `right`) and
//! *tests* (`isRoot`, `isLeaf`, `isFirst`, `isLast`, `label = σ`). It
//! denotes a binary relation on `Dom(t)`: `(u, v)` is in the relation iff
//! some word of the expression's language describes a walk from `u` to
//! `v` (tests don't move; a failing test kills the walk).
//!
//! Caterpillars are the *nondeterministic* cousins of the paper's
//! deterministic `tw` walkers. Evaluation here is the standard product
//! construction: Thompson NFA × tree, reachability over
//! `(node, NFA-state)` pairs — linear in `|t|·|e|`.

use std::collections::VecDeque;
use std::fmt;

use twq_tree::{Label, NodeId, Tree, Vocab};

/// An atomic move or test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatAtom {
    /// Move to the parent.
    Up,
    /// Move to the first child.
    Down,
    /// Move to the left sibling.
    Left,
    /// Move to the right sibling.
    Right,
    /// Test: the current node is the root.
    IsRoot,
    /// Test: the current node is a leaf.
    IsLeaf,
    /// Test: the current node is a first child.
    IsFirst,
    /// Test: the current node is a last child.
    IsLast,
    /// Test: the current node carries this label.
    LabelIs(Label),
}

impl CatAtom {
    /// Apply the atom at `u`: `Some(target)` (tests stay in place when
    /// they succeed), `None` when the move/test fails.
    pub fn apply(self, tree: &Tree, u: NodeId) -> Option<NodeId> {
        match self {
            CatAtom::Up => tree.parent(u),
            CatAtom::Down => tree.first_child(u),
            CatAtom::Left => tree.prev_sibling(u),
            CatAtom::Right => tree.next_sibling(u),
            CatAtom::IsRoot => tree.is_root(u).then_some(u),
            CatAtom::IsLeaf => tree.is_leaf(u).then_some(u),
            CatAtom::IsFirst => tree.is_first(u).then_some(u),
            CatAtom::IsLast => tree.is_last(u).then_some(u),
            CatAtom::LabelIs(l) => (tree.label(u) == l).then_some(u),
        }
    }
}

/// A caterpillar expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatExpr {
    /// An atom.
    Atom(CatAtom),
    /// The empty walk (matches without moving).
    Epsilon,
    /// Concatenation.
    Seq(Vec<CatExpr>),
    /// Alternation.
    Alt(Vec<CatExpr>),
    /// Kleene star.
    Star(Box<CatExpr>),
    /// One or more.
    Plus(Box<CatExpr>),
    /// Zero or one.
    Opt(Box<CatExpr>),
}

impl CatExpr {
    /// Syntactic size.
    pub fn size(&self) -> usize {
        match self {
            CatExpr::Atom(_) | CatExpr::Epsilon => 1,
            CatExpr::Seq(es) | CatExpr::Alt(es) => 1 + es.iter().map(CatExpr::size).sum::<usize>(),
            CatExpr::Star(e) | CatExpr::Plus(e) | CatExpr::Opt(e) => 1 + e.size(),
        }
    }

    /// Render (parser-compatible for `Sym` labels).
    pub fn display(&self, vocab: &Vocab) -> String {
        match self {
            CatExpr::Atom(a) => match a {
                CatAtom::Up => "up".into(),
                CatAtom::Down => "down".into(),
                CatAtom::Left => "left".into(),
                CatAtom::Right => "right".into(),
                CatAtom::IsRoot => "isRoot".into(),
                CatAtom::IsLeaf => "isLeaf".into(),
                CatAtom::IsFirst => "isFirst".into(),
                CatAtom::IsLast => "isLast".into(),
                CatAtom::LabelIs(l) => format!("#{}", l.display(vocab)),
            },
            CatExpr::Epsilon => "()".into(),
            CatExpr::Seq(es) => es
                .iter()
                .map(|e| match e {
                    CatExpr::Alt(_) => format!("({})", e.display(vocab)),
                    _ => e.display(vocab),
                })
                .collect::<Vec<_>>()
                .join(" "),
            CatExpr::Alt(es) => es
                .iter()
                .map(|e| e.display(vocab))
                .collect::<Vec<_>>()
                .join(" | "),
            CatExpr::Star(e) => format!("({})*", e.display(vocab)),
            CatExpr::Plus(e) => format!("({})+", e.display(vocab)),
            CatExpr::Opt(e) => format!("({})?", e.display(vocab)),
        }
    }
}

/// Ergonomic constructors.
pub mod cat {
    use super::*;

    /// One atom.
    pub fn atom(a: CatAtom) -> CatExpr {
        CatExpr::Atom(a)
    }

    /// Sequence.
    pub fn seq(es: impl IntoIterator<Item = CatExpr>) -> CatExpr {
        CatExpr::Seq(es.into_iter().collect())
    }

    /// Alternation.
    pub fn alt(es: impl IntoIterator<Item = CatExpr>) -> CatExpr {
        CatExpr::Alt(es.into_iter().collect())
    }

    /// Kleene star.
    pub fn star(e: CatExpr) -> CatExpr {
        CatExpr::Star(Box::new(e))
    }

    /// One or more.
    pub fn plus(e: CatExpr) -> CatExpr {
        CatExpr::Plus(Box::new(e))
    }

    /// The "strict descendant" caterpillar: `(down right*)+`.
    pub fn descendants() -> CatExpr {
        plus(seq([atom(CatAtom::Down), star(atom(CatAtom::Right))]))
    }

    /// The "leftmost leaf" caterpillar: `down* isLeaf`.
    pub fn leftmost_leaf() -> CatExpr {
        seq([star(atom(CatAtom::Down)), atom(CatAtom::IsLeaf)])
    }

    /// The classic caterpillar walk: the document-order traversal
    /// footprint `(down | right | isLeaf up)* isRoot`-ish is expressible,
    /// but the *relation* "u to its document-order successor" needs
    /// guarded branches:
    /// `down isFirst | right | (isLast up)+ right` — successor for
    /// non-last inner nodes, with the delimiters of `delim(t)` this is
    /// what `twir::macros::doc_next` walks.
    pub fn doc_successor() -> CatExpr {
        alt([
            seq([atom(CatAtom::Down), atom(CatAtom::IsFirst)]),
            seq([atom(CatAtom::IsLeaf), atom(CatAtom::Right)]),
            seq([
                atom(CatAtom::IsLeaf),
                plus(seq([atom(CatAtom::IsLast), atom(CatAtom::Up)])),
                atom(CatAtom::Right),
            ]),
        ])
    }
}

// ----- Thompson construction + product reachability ----------------------

#[derive(Debug, Clone)]
struct Nfa {
    /// `eps[q]` = ε-successors of q.
    eps: Vec<Vec<usize>>,
    /// `step[q]` = (atom, target) edges of q.
    step: Vec<Vec<(CatAtom, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    fn new() -> Nfa {
        Nfa {
            eps: Vec::new(),
            step: Vec::new(),
            start: 0,
            accept: 0,
        }
    }

    fn fresh(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.step.push(Vec::new());
        self.eps.len() - 1
    }

    /// Compile `e` with the given entry state; returns the exit state.
    fn compile(&mut self, e: &CatExpr, entry: usize) -> usize {
        match e {
            CatExpr::Atom(a) => {
                let exit = self.fresh();
                self.step[entry].push((*a, exit));
                exit
            }
            CatExpr::Epsilon => entry,
            CatExpr::Seq(es) => {
                let mut cur = entry;
                for sub in es {
                    cur = self.compile(sub, cur);
                }
                cur
            }
            CatExpr::Alt(es) => {
                let exit = self.fresh();
                for sub in es {
                    let sub_entry = self.fresh();
                    self.eps[entry].push(sub_entry);
                    let sub_exit = self.compile(sub, sub_entry);
                    self.eps[sub_exit].push(exit);
                }
                exit
            }
            CatExpr::Star(sub) => {
                let hub = self.fresh();
                self.eps[entry].push(hub);
                let sub_exit = self.compile(sub, hub);
                self.eps[sub_exit].push(hub);
                hub
            }
            CatExpr::Plus(sub) => {
                let first_exit = self.compile(sub, entry);
                let hub = self.fresh();
                self.eps[first_exit].push(hub);
                let rep_exit = self.compile(sub, hub);
                self.eps[rep_exit].push(hub);
                hub
            }
            CatExpr::Opt(sub) => {
                let exit = self.fresh();
                self.eps[entry].push(exit);
                let sub_exit = self.compile(sub, entry);
                self.eps[sub_exit].push(exit);
                exit
            }
        }
    }

    fn build(e: &CatExpr) -> Nfa {
        let mut nfa = Nfa::new();
        let entry = nfa.fresh();
        nfa.start = entry;
        nfa.accept = nfa.compile(e, entry);
        nfa
    }
}

/// All nodes reachable from `start` by a walk matching `e` —
/// `{v | (start, v) ∈ ⟦e⟧}`.
pub fn select(tree: &Tree, e: &CatExpr, start: NodeId) -> Vec<NodeId> {
    let nfa = Nfa::build(e);
    let nstates = nfa.eps.len();
    let idx = |u: NodeId, q: usize| u.0 as usize * nstates + q;
    let mut seen = vec![false; tree.len() * nstates];
    let mut queue = VecDeque::new();
    seen[idx(start, nfa.start)] = true;
    queue.push_back((start, nfa.start));
    let mut out = Vec::new();
    while let Some((u, q)) = queue.pop_front() {
        if q == nfa.accept && !out.contains(&u) {
            out.push(u);
        }
        for &q2 in &nfa.eps[q] {
            if !seen[idx(u, q2)] {
                seen[idx(u, q2)] = true;
                queue.push_back((u, q2));
            }
        }
        for &(a, q2) in &nfa.step[q] {
            if let Some(v) = a.apply(tree, u) {
                if !seen[idx(v, q2)] {
                    seen[idx(v, q2)] = true;
                    queue.push_back((v, q2));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether `(u, v) ∈ ⟦e⟧`.
pub fn relates(tree: &Tree, e: &CatExpr, u: NodeId, v: NodeId) -> bool {
    select(tree, e, u).contains(&v)
}

// ----- parser -------------------------------------------------------------

/// A caterpillar parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatParseError {
    /// Byte offset.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for CatParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "caterpillar parse error at byte {}: {}",
            self.at, self.msg
        )
    }
}

impl std::error::Error for CatParseError {}

/// Parse the concrete syntax:
///
/// ```text
/// expr   := branch ('|' branch)*
/// branch := factor+                         (juxtaposition = sequence)
/// factor := base ('*' | '+' | '?')*
/// base   := '(' expr ')' | atom
/// atom   := up | down | left | right
///         | isRoot | isLeaf | isFirst | isLast | '#' ident
/// ```
pub fn parse_caterpillar(src: &str, vocab: &mut Vocab) -> Result<CatExpr, CatParseError> {
    let mut p = CatP {
        src: src.as_bytes(),
        pos: 0,
        vocab,
    };
    let e = p.expr()?;
    p.ws();
    if p.pos != p.src.len() {
        return p.err("trailing input");
    }
    Ok(e)
}

struct CatP<'s, 'v> {
    src: &'s [u8],
    pos: usize,
    vocab: &'v mut Vocab,
}

impl CatP<'_, '_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CatParseError> {
        Err(CatParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<CatExpr, CatParseError> {
        let mut branches = vec![self.branch()?];
        loop {
            self.ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                branches.push(self.branch()?);
            } else {
                break;
            }
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            CatExpr::Alt(branches)
        })
    }

    fn branch(&mut self) -> Result<CatExpr, CatParseError> {
        let mut parts = Vec::new();
        loop {
            self.ws();
            match self.peek() {
                Some(b'|') | Some(b')') | None => break,
                _ => parts.push(self.factor()?),
            }
        }
        match parts.len() {
            0 => Ok(CatExpr::Epsilon),
            1 => Ok(parts.pop().expect("one part")),
            _ => Ok(CatExpr::Seq(parts)),
        }
    }

    fn factor(&mut self) -> Result<CatExpr, CatParseError> {
        let mut base = self.base()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    base = CatExpr::Star(Box::new(base));
                }
                Some(b'+') => {
                    self.pos += 1;
                    base = CatExpr::Plus(Box::new(base));
                }
                Some(b'?') => {
                    self.pos += 1;
                    base = CatExpr::Opt(Box::new(base));
                }
                _ => return Ok(base),
            }
        }
    }

    fn base(&mut self) -> Result<CatExpr, CatParseError> {
        self.ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let e = self.expr()?;
            self.ws();
            if self.peek() != Some(b')') {
                return self.err("expected ')'");
            }
            self.pos += 1;
            return Ok(e);
        }
        if self.peek() == Some(b'#') {
            self.pos += 1;
            let name = self.ident()?;
            let sym = self.vocab.sym(&name);
            return Ok(CatExpr::Atom(CatAtom::LabelIs(Label::Sym(sym))));
        }
        let word = self.ident()?;
        let atom = match word.as_str() {
            "up" => CatAtom::Up,
            "down" => CatAtom::Down,
            "left" => CatAtom::Left,
            "right" => CatAtom::Right,
            "isRoot" => CatAtom::IsRoot,
            "isLeaf" => CatAtom::IsLeaf,
            "isFirst" => CatAtom::IsFirst,
            "isLast" => CatAtom::IsLast,
            other => return self.err(format!("unknown atom '{other}'")),
        };
        Ok(CatExpr::Atom(atom))
    }

    fn ident(&mut self) -> Result<String, CatParseError> {
        self.ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected atom");
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::cat::*;
    use super::*;
    use twq_tree::parse_tree;

    fn sample() -> (Vocab, Tree) {
        let mut v = Vocab::new();
        let t = parse_tree("a(b(c,d),e(f))", &mut v).unwrap();
        (v, t)
    }

    #[test]
    fn atoms_move_and_test() {
        let (_, t) = sample();
        let r = t.root();
        let b = t.node_at_path(&[1]).unwrap();
        assert_eq!(CatAtom::Down.apply(&t, r), Some(b));
        assert_eq!(CatAtom::Up.apply(&t, b), Some(r));
        assert_eq!(CatAtom::Up.apply(&t, r), None);
        assert_eq!(CatAtom::IsRoot.apply(&t, r), Some(r));
        assert_eq!(CatAtom::IsRoot.apply(&t, b), None);
        assert_eq!(CatAtom::IsLeaf.apply(&t, b), None);
    }

    #[test]
    fn descendants_caterpillar_equals_desc_relation() {
        let (_, t) = sample();
        let e = descendants();
        for u in t.node_ids() {
            let selected = select(&t, &e, u);
            let expected: Vec<NodeId> = t
                .node_ids()
                .filter(|&v| t.is_strict_ancestor(u, v))
                .collect();
            assert_eq!(selected, expected, "from {u}");
        }
    }

    #[test]
    fn leftmost_leaf_caterpillar() {
        let (_, t) = sample();
        let e = leftmost_leaf();
        // From the root: down* isLeaf can stop at any leftmost-path node
        // that is a leaf — only c on this tree.
        let c = t.node_at_path(&[1, 1]).unwrap();
        assert_eq!(select(&t, &e, t.root()), vec![c]);
        // From a leaf, the empty down* matches.
        assert_eq!(select(&t, &e, c), vec![c]);
    }

    #[test]
    fn alternation_and_star_semantics() {
        let (_, t) = sample();
        // (right | left)* from b reaches b and e.
        let e = star(alt([atom(CatAtom::Right), atom(CatAtom::Left)]));
        let b = t.node_at_path(&[1]).unwrap();
        let ee = t.node_at_path(&[2]).unwrap();
        assert_eq!(select(&t, &e, b), vec![b, ee]);
    }

    #[test]
    fn tests_kill_walks() {
        let (mut v, t) = sample();
        // down #e — descend to the first child, require label e: fails
        // (first child is b).
        let e = parse_caterpillar("down #e", &mut v).unwrap();
        assert!(select(&t, &e, t.root()).is_empty());
        // down right #e succeeds.
        let e2 = parse_caterpillar("down right #e", &mut v).unwrap();
        assert_eq!(e2.size(), 4);
        assert_eq!(select(&t, &e2, t.root()).len(), 1);
    }

    #[test]
    fn parser_round_trip() {
        let mut v = Vocab::new();
        v.sym("a");
        for src in [
            "down",
            "down right",
            "(down right*)+",
            "up | down",
            "isLeaf (up isLast)* right?",
            "#a down",
        ] {
            let e = parse_caterpillar(src, &mut v).unwrap();
            let shown = e.display(&v);
            let e2 = parse_caterpillar(&shown, &mut v).unwrap();
            // Displayed form may differ syntactically; semantics must
            // agree — compare on a tree.
            let t = parse_tree("a(a(a),a)", &mut v).unwrap();
            for u in t.node_ids() {
                assert_eq!(select(&t, &e, u), select(&t, &e2, u), "{src} → {shown}");
            }
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        let mut v = Vocab::new();
        for src in ["(", "down)", "wiggle", "#", "down |"] {
            // "down |" parses an empty right branch = epsilon — accept it;
            // the others must fail.
            if src == "down |" {
                assert!(parse_caterpillar(src, &mut v).is_ok());
            } else {
                assert!(parse_caterpillar(src, &mut v).is_err(), "{src}");
            }
        }
    }

    #[test]
    fn epsilon_matches_in_place() {
        let (_, t) = sample();
        assert_eq!(select(&t, &CatExpr::Epsilon, t.root()), vec![t.root()]);
    }

    #[test]
    fn relates_api() {
        let (_, t) = sample();
        let b = t.node_at_path(&[1]).unwrap();
        assert!(relates(&t, &descendants(), t.root(), b));
        assert!(!relates(&t, &descendants(), b, t.root()));
    }
}
