//! `twir` — a structured intermediate representation for walker programs.
//!
//! The constructive directions of Theorem 7.1 ("place a finite number of
//! pebbles … let them walk towards each other …") describe walkers far too
//! large to write as flat rule tables. This module provides a tiny
//! structured language — sequences, conditionals, loops, register
//! assignments, moves — together with a compiler to flat class-`TW`
//! programs (unary registers, single-value updates, no look-ahead), plus
//! the navigation macros (document-order successor, go-to-root, go-to-
//! pebble) the simulations are built from.
//!
//! Compilation is standard: every instruction boundary becomes a state;
//! conditions are partially evaluated per node label (rules dispatch on the
//! label) with the residual store condition becoming the rule guard.
//!
//! The macros operate on **original** (element-labeled) nodes of a
//! delimited tree and use the canonical document order of
//! `twq_tree::order`; delimiters make every boundary test a label test.

use twq_guard::{DepthKind, Guard, GuardError, NullGuard, TwqError};
use twq_logic::store::sbuild;
use twq_logic::{RegId, Relation, SFormula, Var};
use twq_obs::{Collector, NullCollector, PhaseTimer};
use twq_tree::{AttrId, Label, Value};

use crate::program::{Action, Dir, ProgramError, State, TwProgram, TwProgramBuilder};

/// A single-value source for register assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The current node's value of this attribute.
    Attr(AttrId),
    /// A constant.
    Const(Value),
    /// The (singleton) content of another register.
    Reg(RegId),
}

/// A branch condition. Label conditions are resolved at compile time per
/// rule label; register conditions become rule guards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// The current node carries this label.
    LabelIs(Label),
    /// Register `i` (a singleton) equals the source value.
    RegEq(RegId, Source),
    /// Register `i` is empty.
    RegEmpty(RegId),
    /// Escape hatch: an arbitrary store-FO sentence as the condition.
    /// Used by the `tw^r` compilers; programs using it are no longer
    /// class `TW`-checkable by syntax alone.
    Guard(SFormula),
    /// Negation.
    Not(Box<Cond>),
    /// Conjunction.
    All(Vec<Cond>),
    /// Disjunction.
    Any(Vec<Cond>),
}

impl Cond {
    /// Convenience negation.
    pub fn negate(self) -> Cond {
        Cond::Not(Box::new(self))
    }
}

/// A structured walker instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Move in a direction (the target must exist or the walk is stuck).
    Move(Dir),
    /// `reg := {source}`.
    Set(RegId, Source),
    /// Empty register `reg`.
    Clear(RegId),
    /// Escape hatch: replace `reg` with the relation defined by an
    /// arbitrary store-FO query (Definition 3.1, form 2, in full
    /// generality). Used by the `tw^r` compilers.
    UpdateRel(RegId, SFormula),
    /// Two-way branch.
    If(Cond, Vec<Instr>, Vec<Instr>),
    /// Loop while the condition holds.
    While(Cond, Vec<Instr>),
    /// Enter the final state (accept).
    Accept,
    /// Halt without accepting (deliberately stuck).
    Fail,
}

/// Shorthand for a one-armed conditional.
pub fn when(c: Cond, then: Vec<Instr>) -> Instr {
    Instr::If(c, then, vec![])
}

/// A walker module under construction: a fixed label universe plus unary
/// registers, compiled into a [`TwProgram`] by [`WalkerBuilder::compile`].
#[derive(Debug, Clone)]
pub struct WalkerBuilder {
    labels: Vec<Label>,
    regs: Vec<Relation>,
}

impl WalkerBuilder {
    /// Start a walker over the given element symbols (the four delimiter
    /// labels are always included).
    pub fn new(syms: &[twq_tree::SymId]) -> Self {
        let mut labels: Vec<Label> = syms.iter().map(|&s| Label::Sym(s)).collect();
        labels.extend([
            Label::DelimRoot,
            Label::DelimOpen,
            Label::DelimClose,
            Label::DelimLeaf,
        ]);
        WalkerBuilder {
            labels,
            regs: Vec::new(),
        }
    }

    /// Declare a unary register, optionally pre-loaded with one value.
    pub fn register(&mut self, init: Option<Value>) -> RegId {
        let id = RegId(u8::try_from(self.regs.len()).expect("too many registers"));
        self.regs.push(match init {
            Some(v) => Relation::singleton(v),
            None => Relation::empty(1),
        });
        id
    }

    /// Declare a register of arbitrary arity with initial content — the
    /// relational store of `tw^r` walkers.
    pub fn rel_register(&mut self, init: Relation) -> RegId {
        let id = RegId(u8::try_from(self.regs.len()).expect("too many registers"));
        self.regs.push(init);
        id
    }

    /// The label universe.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Compile a body into a flat `TW` program. The walk starts at the root
    /// of the delimited tree; falling off the end of the body is a reject
    /// (end with [`Instr::Accept`] to accept).
    pub fn compile(&self, body: &[Instr]) -> Result<TwProgram, ProgramError> {
        self.compile_with(body, &mut NullCollector)
    }

    /// [`WalkerBuilder::compile`] with instrumentation: reports the
    /// `twir.compile` phase timing and the `twir.states` / `twir.rules`
    /// counters of the produced program.
    pub fn compile_with<C: Collector>(
        &self,
        body: &[Instr],
        collector: &mut C,
    ) -> Result<TwProgram, ProgramError> {
        let mut guard = NullGuard;
        let timer = C::ENABLED.then(|| PhaseTimer::start("twir.compile"));
        let mut c = Compiler {
            b: TwProgramBuilder::new(),
            labels: &self.labels,
            counter: 0,
            guard: &mut guard,
            trip: None,
        };
        for init in &self.regs {
            c.b.register(init.arity(), init.clone());
        }
        let q_f = c.b.state("qF");
        c.b.final_state(q_f);
        // Fall-through continuation: a state with no rules (reject).
        let dead = c.b.state("halt");
        let entry = c.compile_seq(body, dead, q_f);
        c.b.initial(entry);
        let prog = c.b.build();
        if let Some(timer) = timer {
            timer.stop(collector);
        }
        if let Ok(p) = &prog {
            collector.counter("twir.states", p.state_count() as u64);
            collector.counter("twir.rules", p.rules().len() as u64);
        }
        prog
    }

    /// [`WalkerBuilder::compile`] under a resource [`Guard`]: one fuel unit
    /// per compiled instruction, body nesting tracked as
    /// [`DepthKind::Compile`]. Compiled walkers can be enormous (the
    /// Theorem 7.1 pebble constructions emit thousands of states), so
    /// compilation itself is a governed phase.
    pub fn compile_guarded<G: Guard>(
        &self,
        body: &[Instr],
        guard: &mut G,
    ) -> Result<TwProgram, TwqError> {
        let mut c = Compiler {
            b: TwProgramBuilder::new(),
            labels: &self.labels,
            counter: 0,
            guard,
            trip: None,
        };
        for init in &self.regs {
            c.b.register(init.arity(), init.clone());
        }
        let q_f = c.b.state("qF");
        c.b.final_state(q_f);
        let dead = c.b.state("halt");
        let entry = c.compile_seq(body, dead, q_f);
        c.b.initial(entry);
        if let Some(e) = c.trip {
            return Err(TwqError::Guard(e));
        }
        c.b.build()
            .map_err(|e| TwqError::invalid("twir::compile", e.to_string()))
    }
}

struct Compiler<'l, 'g, G: Guard> {
    b: TwProgramBuilder,
    labels: &'l [Label],
    counter: u32,
    guard: &'g mut G,
    /// First guard trip; once set, compilation short-circuits.
    trip: Option<GuardError>,
}

impl<G: Guard> Compiler<'_, '_, G> {
    fn fresh(&mut self, tag: &str) -> State {
        self.counter += 1;
        let name = format!("{tag}{}", self.counter);
        self.b.state(&name)
    }

    /// Compile a sequence with the given continuation; returns its entry.
    /// Under a real guard, nesting is charged as [`DepthKind::Compile`] and
    /// a trip short-circuits the remaining instructions (the partial
    /// program is discarded by the caller).
    fn compile_seq(&mut self, body: &[Instr], cont: State, q_f: State) -> State {
        if G::ENABLED {
            if self.trip.is_some() {
                return cont;
            }
            if let Err(e) = self.guard.enter(DepthKind::Compile) {
                self.trip.get_or_insert(e);
                return cont;
            }
        }
        let mut next = cont;
        for instr in body.iter().rev() {
            if G::ENABLED {
                if self.trip.is_some() {
                    break;
                }
                if let Err(e) = self.guard.tick() {
                    self.trip.get_or_insert(e);
                    break;
                }
            }
            next = self.compile_instr(instr, next, q_f);
        }
        if G::ENABLED {
            self.guard.exit(DepthKind::Compile);
        }
        next
    }

    fn emit_for_all_labels(&mut self, q: State, mut mk: impl FnMut(Label) -> Action) {
        for &l in self.labels {
            let action = mk(l);
            self.b.rule_true(l, q, action);
        }
    }

    fn compile_instr(&mut self, instr: &Instr, cont: State, q_f: State) -> State {
        match instr {
            Instr::Move(d) => {
                let q = self.fresh("mv");
                self.emit_for_all_labels(q, |_| Action::Move(cont, *d));
                q
            }
            Instr::Set(reg, src) => {
                let q = self.fresh("set");
                let psi = match src {
                    Source::Attr(a) => sbuild::eq(sbuild::v(0), sbuild::attr(*a)),
                    Source::Const(d) => sbuild::eq(sbuild::v(0), sbuild::cst(*d)),
                    Source::Reg(j) => sbuild::rel(*j, [sbuild::v(0)]),
                };
                self.emit_for_all_labels(q, |_| Action::Update(cont, psi.clone(), *reg));
                q
            }
            Instr::Clear(reg) => {
                let q = self.fresh("clr");
                // ψ(x₀) = x₀ ≠ x₀ defines the empty set.
                let psi = sbuild::not(sbuild::eq(sbuild::v(0), sbuild::v(0)));
                self.emit_for_all_labels(q, |_| Action::Update(cont, psi.clone(), *reg));
                q
            }
            Instr::UpdateRel(reg, psi) => {
                let q = self.fresh("rupd");
                self.emit_for_all_labels(q, |_| Action::Update(cont, psi.clone(), *reg));
                q
            }
            Instr::Accept => {
                let q = self.fresh("acc");
                self.emit_for_all_labels(q, |_| Action::Move(q_f, Dir::Stay));
                q
            }
            Instr::Fail => {
                // A state with no rules.
                self.fresh("fail")
            }
            Instr::If(cond, then_b, else_b) => {
                let q = self.fresh("if");
                let then_entry = self.compile_seq(then_b, cont, q_f);
                let else_entry = self.compile_seq(else_b, cont, q_f);
                for &l in self.labels {
                    match residual(cond, l) {
                        Residual::True => {
                            self.b.rule_true(l, q, Action::Move(then_entry, Dir::Stay));
                        }
                        Residual::False => {
                            self.b.rule_true(l, q, Action::Move(else_entry, Dir::Stay));
                        }
                        Residual::Guard(g) => {
                            self.b
                                .rule(l, q, g.clone(), Action::Move(then_entry, Dir::Stay));
                            self.b
                                .rule(l, q, sbuild::not(g), Action::Move(else_entry, Dir::Stay));
                        }
                    }
                }
                q
            }
            Instr::While(cond, body) => {
                let q = self.fresh("wh");
                let body_entry = self.compile_seq(body, q, q_f);
                for &l in self.labels {
                    match residual(cond, l) {
                        Residual::True => {
                            self.b.rule_true(l, q, Action::Move(body_entry, Dir::Stay));
                        }
                        Residual::False => {
                            self.b.rule_true(l, q, Action::Move(cont, Dir::Stay));
                        }
                        Residual::Guard(g) => {
                            self.b
                                .rule(l, q, g.clone(), Action::Move(body_entry, Dir::Stay));
                            self.b
                                .rule(l, q, sbuild::not(g), Action::Move(cont, Dir::Stay));
                        }
                    }
                }
                q
            }
        }
    }
}

/// A condition partially evaluated at a fixed label.
enum Residual {
    True,
    False,
    Guard(SFormula),
}

fn residual(cond: &Cond, label: Label) -> Residual {
    match cond {
        Cond::LabelIs(l) => {
            if *l == label {
                Residual::True
            } else {
                Residual::False
            }
        }
        Cond::RegEq(i, src) => Residual::Guard(match src {
            Source::Attr(a) => sbuild::rel(*i, [sbuild::attr(*a)]),
            Source::Const(d) => sbuild::rel(*i, [sbuild::cst(*d)]),
            Source::Reg(j) => SFormula::Exists(
                Var(0),
                Box::new(sbuild::and([
                    sbuild::rel(*i, [sbuild::v(0)]),
                    sbuild::rel(*j, [sbuild::v(0)]),
                ])),
            ),
        }),
        Cond::RegEmpty(i) => Residual::Guard(sbuild::not(SFormula::Exists(
            Var(0),
            Box::new(sbuild::rel(*i, [sbuild::v(0)])),
        ))),
        Cond::Guard(g) => Residual::Guard(g.clone()),
        Cond::Not(c) => match residual(c, label) {
            Residual::True => Residual::False,
            Residual::False => Residual::True,
            Residual::Guard(g) => Residual::Guard(sbuild::not(g)),
        },
        Cond::All(cs) => {
            let mut guards = Vec::new();
            for c in cs {
                match residual(c, label) {
                    Residual::True => {}
                    Residual::False => return Residual::False,
                    Residual::Guard(g) => guards.push(g),
                }
            }
            if guards.is_empty() {
                Residual::True
            } else {
                Residual::Guard(sbuild::and(guards))
            }
        }
        Cond::Any(cs) => {
            let mut guards = Vec::new();
            for c in cs {
                match residual(c, label) {
                    Residual::True => return Residual::True,
                    Residual::False => {}
                    Residual::Guard(g) => guards.push(g),
                }
            }
            if guards.is_empty() {
                Residual::False
            } else {
                Residual::Guard(sbuild::or(guards))
            }
        }
    }
}

/// Navigation macros over delimited trees. All assume the walker currently
/// stands on an *original* (element-labeled) node unless stated otherwise,
/// and leave it on one (or on `▽` where documented).
pub mod macros {
    use super::*;

    /// From any original node (or `▽`): climb to `▽`, then descend to the
    /// original root. Ancestors of original nodes are original nodes, so
    /// the climb sees no delimiters.
    pub fn goto_root() -> Vec<Instr> {
        vec![
            Instr::While(
                Cond::Not(Box::new(Cond::LabelIs(Label::DelimRoot))),
                vec![Instr::Move(Dir::Up)],
            ),
            Instr::Move(Dir::Down),  // ⊳
            Instr::Move(Dir::Right), // original root
        ]
    }

    /// Advance from the current original node to its document-order
    /// successor among original nodes. If there is none (we were at the
    /// last node), the walker ends at `▽` with `end_flag := {end_marker}`;
    /// otherwise the flag is untouched.
    pub fn doc_next(end_flag: RegId, end_marker: Value) -> Vec<Instr> {
        let at = Cond::LabelIs;
        vec![
            Instr::Move(Dir::Down), // ⊳ (has children) or △ (leaf)
            Instr::If(
                at(Label::DelimOpen),
                // First child exists: it is ⊳'s right sibling.
                vec![Instr::Move(Dir::Right)],
                // Leaf: back to the node, then right/up until a sibling.
                vec![
                    Instr::Move(Dir::Up),
                    Instr::Move(Dir::Right), // sibling or ⊲
                    Instr::While(
                        at(Label::DelimClose),
                        vec![
                            Instr::Move(Dir::Up), // original parent or ▽
                            Instr::If(
                                at(Label::DelimRoot),
                                vec![Instr::Set(end_flag, Source::Const(end_marker))],
                                vec![Instr::Move(Dir::Right)], // parent's sibling or ⊲
                            ),
                        ],
                    ),
                ],
            ),
        ]
    }

    /// Walk to the node whose `id_attr` equals the (singleton) content of
    /// `pebble`: scan from the root in document order. The pebble value
    /// must be present or the walk fails.
    pub fn goto_pebble(
        pebble: RegId,
        id_attr: AttrId,
        scratch_flag: RegId,
        end_marker: Value,
    ) -> Vec<Instr> {
        let mut v = goto_root();
        v.push(Instr::While(
            Cond::Not(Box::new(Cond::RegEq(pebble, Source::Attr(id_attr)))),
            {
                let mut body = doc_next(scratch_flag, end_marker);
                // Falling off the end means the pebble vanished: fail.
                body.push(when(
                    Cond::RegEq(scratch_flag, Source::Const(end_marker)),
                    vec![Instr::Fail],
                ));
                body
            },
        ));
        v
    }

    /// Drop the pebble on the current node: `pebble := {id_attr(here)}`.
    pub fn pebble_here(pebble: RegId, id_attr: AttrId) -> Vec<Instr> {
        vec![Instr::Set(pebble, Source::Attr(id_attr))]
    }

    // ----- delimiter-inclusive navigation ------------------------------
    //
    // The Theorem 7.1 pebble constructions number *all* nodes of the
    // delimited tree by pre-order (`▽` is position 0) and slide pebbles
    // along that order. Leafness is label-determined in `delim(t)`
    // (`⊳/⊲/△` are the only leaves), so the pre-order successor needs no
    // "has a child / has a sibling" probe.

    /// Climb from anywhere to `▽` (pre-order position 0).
    pub fn goto_delim_root() -> Vec<Instr> {
        vec![Instr::While(
            Cond::Not(Box::new(Cond::LabelIs(Label::DelimRoot))),
            vec![Instr::Move(Dir::Up)],
        )]
    }

    /// Advance to the pre-order successor **including delimiter nodes**.
    /// At the overall last node, sets `end_flag := {end_marker}` and
    /// leaves the walker at `▽`.
    pub fn delim_doc_next(end_flag: RegId, end_marker: Value) -> Vec<Instr> {
        let at = Cond::LabelIs;
        let internal = Cond::Not(Box::new(Cond::Any(vec![
            at(Label::DelimOpen),
            at(Label::DelimClose),
            at(Label::DelimLeaf),
        ])));
        vec![Instr::If(
            internal,
            // ▽ and element nodes always have a first child.
            vec![Instr::Move(Dir::Down)],
            vec![Instr::If(
                at(Label::DelimClose),
                // ⊲ is a last child: climb, then step right (the parent is
                // an element node with a guaranteed right sibling, or ▽ —
                // in which case the traversal is over).
                vec![
                    Instr::Move(Dir::Up),
                    Instr::If(
                        at(Label::DelimRoot),
                        vec![Instr::Set(end_flag, Source::Const(end_marker))],
                        vec![Instr::Move(Dir::Right)],
                    ),
                ],
                // ⊳ always has a right sibling; △ is an only child whose
                // parent (an element node inside a child list) always has
                // a right sibling.
                vec![Instr::If(
                    at(Label::DelimLeaf),
                    vec![Instr::Move(Dir::Up), Instr::Move(Dir::Right)],
                    vec![Instr::Move(Dir::Right)],
                )],
            )],
        )]
    }

    /// Walk to the delimited-tree node whose `id_attr` equals the pebble:
    /// pre-order scan from `▽` over *all* nodes. Fails if absent.
    pub fn goto_pebble_delim(
        pebble: RegId,
        id_attr: AttrId,
        scratch_flag: RegId,
        end_marker: Value,
    ) -> Vec<Instr> {
        let mut v = goto_delim_root();
        v.push(Instr::While(
            Cond::Not(Box::new(Cond::RegEq(pebble, Source::Attr(id_attr)))),
            {
                let mut body = delim_doc_next(scratch_flag, end_marker);
                body.push(when(
                    Cond::RegEq(scratch_flag, Source::Const(end_marker)),
                    vec![Instr::Fail],
                ));
                body
            },
        ));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::macros::*;
    use super::*;
    use crate::engine::{run_on_tree, Limits};
    use crate::program::TwClass;
    use twq_tree::generate::{random_tree, TreeGenConfig};
    use twq_tree::Vocab;

    fn setup(nodes: usize, seed: u64) -> (Vocab, twq_tree::Tree, Vec<twq_tree::SymId>, AttrId) {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, nodes, &[1, 2]);
        let mut t = random_tree(&cfg, seed);
        let id = vocab.attr("id");
        t.assign_unique_ids(id, &mut vocab);
        (vocab, t, cfg.symbols, id)
    }

    #[test]
    fn accept_compiles_and_accepts() {
        let (_, t, syms, _) = setup(10, 0);
        let w = WalkerBuilder::new(&syms);
        let p = w.compile(&[Instr::Accept]).unwrap();
        assert_eq!(p.classify(), TwClass::Tw);
        assert!(run_on_tree(&p, &t, Limits::default()).accepted());
    }

    #[test]
    fn fail_and_fallthrough_reject() {
        let (_, t, syms, _) = setup(5, 0);
        let w = WalkerBuilder::new(&syms);
        let p = w.compile(&[Instr::Fail]).unwrap();
        assert!(!run_on_tree(&p, &t, Limits::default()).accepted());
        let p2 = w.compile(&[]).unwrap();
        assert!(!run_on_tree(&p2, &t, Limits::default()).accepted());
    }

    #[test]
    fn label_branching() {
        // Accept iff the original root (▽'s middle child) is labeled σ.
        let (vocab, t, syms, _) = setup(12, 1);
        let sigma = Label::Sym(vocab.sym_opt("sigma").unwrap());
        let w = WalkerBuilder::new(&syms);
        let body = vec![
            Instr::Move(Dir::Down),  // ⊳
            Instr::Move(Dir::Right), // original root
            Instr::If(Cond::LabelIs(sigma), vec![Instr::Accept], vec![Instr::Fail]),
        ];
        let p = w.compile(&body).unwrap();
        let got = run_on_tree(&p, &t, Limits::default()).accepted();
        assert_eq!(got, t.label(t.root()) == sigma);
    }

    #[test]
    fn register_set_and_test() {
        let mut vocab = Vocab::new();
        let t = twq_tree::parse_tree("s[a=5](s[a=5],s[a=7])", &mut vocab).unwrap();
        let syms = vec![vocab.sym_opt("s").unwrap()];
        let a = vocab.attr_opt("a").unwrap();
        let mut w = WalkerBuilder::new(&syms);
        let r = w.register(None);
        let body = vec![
            Instr::Move(Dir::Down),  // ⊳
            Instr::Move(Dir::Right), // original root
            Instr::Set(r, Source::Attr(a)),
            Instr::Move(Dir::Down),  // ⊳ of root's children
            Instr::Move(Dir::Right), // first child
            Instr::If(
                Cond::RegEq(r, Source::Attr(a)),
                vec![Instr::Accept],
                vec![Instr::Fail],
            ),
        ];
        let p = w.compile(&body).unwrap();
        assert_eq!(p.classify(), TwClass::Tw);
        assert!(run_on_tree(&p, &t, Limits::default()).accepted());

        // Same program rejects when the first child differs.
        let t2 = twq_tree::parse_tree("s[a=5](s[a=7],s[a=5])", &mut vocab).unwrap();
        assert!(!run_on_tree(&p, &t2, Limits::default()).accepted());
    }

    #[test]
    fn clear_empties_register() {
        let mut vocab = Vocab::new();
        let t = twq_tree::parse_tree("s[a=5]", &mut vocab).unwrap();
        let syms = vec![vocab.sym_opt("s").unwrap()];
        let a = vocab.attr_opt("a").unwrap();
        let mut w = WalkerBuilder::new(&syms);
        let r = w.register(None);
        let body = vec![
            Instr::Move(Dir::Down),
            Instr::Move(Dir::Right),
            Instr::Set(r, Source::Attr(a)),
            Instr::Clear(r),
            Instr::If(Cond::RegEmpty(r), vec![Instr::Accept], vec![Instr::Fail]),
        ];
        let p = w.compile(&body).unwrap();
        assert!(run_on_tree(&p, &t, Limits::default()).accepted());
    }

    #[test]
    fn reg_eq_reg_condition() {
        let mut vocab = Vocab::new();
        let t = twq_tree::parse_tree("s[a=5]", &mut vocab).unwrap();
        let syms = vec![vocab.sym_opt("s").unwrap()];
        let a = vocab.attr_opt("a").unwrap();
        let mut w = WalkerBuilder::new(&syms);
        let r1 = w.register(None);
        let r2 = w.register(None);
        let body = vec![
            Instr::Move(Dir::Down),
            Instr::Move(Dir::Right),
            Instr::Set(r1, Source::Attr(a)),
            Instr::Set(r2, Source::Reg(r1)),
            Instr::If(
                Cond::RegEq(r1, Source::Reg(r2)),
                vec![Instr::Accept],
                vec![Instr::Fail],
            ),
        ];
        let p = w.compile(&body).unwrap();
        assert!(run_on_tree(&p, &t, Limits::default()).accepted());
    }

    #[test]
    fn doc_next_walks_whole_tree_in_order() {
        // Walk doc order from the root until the end flag fires; the
        // traversal must terminate and accept for every tree.
        let (mut vocab, t, syms, _) = setup(25, 3);
        let end = vocab.val_str("#end");
        let mut w = WalkerBuilder::new(&syms);
        let flag = w.register(None);
        let mut body = vec![
            Instr::Move(Dir::Down),
            Instr::Move(Dir::Right), // original root
        ];
        body.push(Instr::While(
            Cond::Not(Box::new(Cond::RegEq(flag, Source::Const(end)))),
            doc_next(flag, end),
        ));
        body.push(Instr::Accept);
        let p = w.compile(&body).unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
        // Steps must be at least linear in the tree size.
        assert!(report.steps as usize >= t.len());
    }

    #[test]
    fn goto_pebble_finds_marked_node() {
        // Drop a pebble on the doc-order 7th node by walking, then return
        // to the root and navigate back to the pebble.
        let (mut vocab, t, syms, id) = setup(20, 4);
        let end = vocab.val_str("#end");
        let mut w = WalkerBuilder::new(&syms);
        let pebble = w.register(None);
        let flag = w.register(None);
        let mut body = vec![Instr::Move(Dir::Down), Instr::Move(Dir::Right)];
        for _ in 0..6 {
            body.extend(doc_next(flag, end));
        }
        body.extend(pebble_here(pebble, id));
        body.extend(goto_root());
        body.extend(goto_pebble(pebble, id, flag, end));
        body.push(Instr::If(
            Cond::RegEq(pebble, Source::Attr(id)),
            vec![Instr::Accept],
            vec![Instr::Fail],
        ));
        let p = w.compile(&body).unwrap();
        assert_eq!(p.classify(), TwClass::Tw);
        let report = run_on_tree(&p, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
    }

    #[test]
    fn delim_doc_next_covers_all_nodes() {
        // Scan all delimited nodes; the walk must visit exactly
        // |delim(t)| - 1 successors before the end flag fires. We verify
        // termination + acceptance; the count is implied by goto_pebble
        // finding ids assigned to delimiters below.
        let (mut vocab, t, syms, _) = setup(18, 9);
        let id = vocab.attr("id");
        let mut dt = twq_tree::DelimTree::build(&t);
        dt.assign_unique_ids(id, &mut vocab);
        let end = vocab.val_str("#end");
        let mut w = WalkerBuilder::new(&syms);
        let flag = w.register(None);
        let mut body = vec![Instr::While(
            Cond::Not(Box::new(Cond::RegEq(flag, Source::Const(end)))),
            delim_doc_next(flag, end),
        )];
        body.push(Instr::If(
            Cond::LabelIs(Label::DelimRoot),
            vec![Instr::Accept],
            vec![Instr::Fail],
        ));
        let p = w.compile(&body).unwrap();
        let report = crate::engine::run(&p, &dt, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
        let dn = dt.tree().len();
        assert!(report.steps as usize >= dn, "visited fewer than all nodes");
    }

    #[test]
    fn goto_pebble_delim_reaches_delimiters() {
        // Pebble the 5th node in delimited pre-order (often a delimiter),
        // jump away, navigate back, verify.
        let (mut vocab, t, syms, _) = setup(10, 2);
        let id = vocab.attr("id");
        let mut dt = twq_tree::DelimTree::build(&t);
        dt.assign_unique_ids(id, &mut vocab);
        let end = vocab.val_str("#end");
        let mut w = WalkerBuilder::new(&syms);
        let pebble = w.register(None);
        let flag = w.register(None);
        let mut body = vec![];
        for _ in 0..5 {
            body.extend(delim_doc_next(flag, end));
        }
        body.extend(pebble_here(pebble, id));
        body.extend(goto_delim_root());
        body.extend(goto_pebble_delim(pebble, id, flag, end));
        body.push(Instr::If(
            Cond::RegEq(pebble, Source::Attr(id)),
            vec![Instr::Accept],
            vec![Instr::Fail],
        ));
        let p = w.compile(&body).unwrap();
        let report = crate::engine::run(&p, &dt, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
    }

    #[test]
    fn goto_root_from_anywhere() {
        let (mut vocab, t, syms, _) = setup(15, 5);
        let end = vocab.val_str("#end");
        let mut w = WalkerBuilder::new(&syms);
        let flag = w.register(None);
        // Walk three nodes in, then goto_root, then verify the parent is ▽.
        let mut body = vec![Instr::Move(Dir::Down), Instr::Move(Dir::Right)];
        for _ in 0..3 {
            body.extend(doc_next(flag, end));
        }
        body.extend(goto_root());
        body.push(Instr::Move(Dir::Up)); // ▽
        body.push(Instr::If(
            Cond::LabelIs(Label::DelimRoot),
            vec![Instr::Accept],
            vec![Instr::Fail],
        ));
        let p = w.compile(&body).unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
    }
}
