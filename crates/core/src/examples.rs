//! A library of concrete tree-walking programs with reference oracles,
//! headlined by the paper's Example 3.2.
//!
//! Each constructor interns its symbols into the caller's [`Vocab`] and
//! returns both the program and the interned ids, so callers can generate
//! matching workloads. Every program comes with a plain-Rust oracle used by
//! the test suites to validate the automaton semantics.

use twq_logic::exists::selectors;
use twq_logic::fo::build as fob;
use twq_logic::store::sbuild::*;
use twq_logic::{ExistsFormula, SFormula, Var};
use twq_tree::{AttrId, Label, SymId, Tree, Vocab};

use crate::program::{Action, Dir, State, TwClass, TwProgram, TwProgramBuilder};

/// The paper's Example 3.2, packaged with its interned symbols.
///
/// Over `Σ = {σ, δ}` and `A = {a}`, the automaton accepts a tree iff **for
/// every δ-labeled node, all of its leaf-descendants have the same
/// `a`-attribute** (leaf-descendants being parents of `△`-nodes in the
/// delimited tree, i.e. the original leaves below the node).
#[derive(Debug, Clone)]
pub struct Example32 {
    /// The `tw^{r,l}` program (one unary register holding a *set*).
    pub program: TwProgram,
    /// `σ`.
    pub sigma: SymId,
    /// `δ`.
    pub delta: SymId,
    /// The attribute `a`.
    pub attr: AttrId,
}

/// Build Example 3.2. Rules (reconstructed from the paper's garbled OCR of
/// the rule table, preserving its stated behavior step by step):
///
/// 1. `(▽, q₀, true) → (q₁, atp(φ₁, q_sel), 1)` — select all δ-descendants
///    of the root and start a subcomputation at each;
/// 2. `(▽, q₁, true) → accept` — when all subcomputations return;
/// 3. `(δ, q_sel, true) → (q_chk, atp(φ₂, q_leaf), 1)` — every δ-node
///    selects its leaf-descendants;
/// 4. `(δ, q_chk, ξ) → accept` — accept iff the returned set is (at most)
///    a singleton, `ξ ≡ ∀x∀y (X₁(x) ∧ X₁(y) → x = y)`; otherwise the
///    subcomputation is stuck and the main computation rejects;
/// 5. `(σ, q_leaf, true) → (q_F, x = a, 1)` and
/// 6. `(δ, q_leaf, true) → (q_F, x = a, 1)` — every leaf returns the value
///    of its `a`-attribute.
pub fn example_32(vocab: &mut Vocab) -> Example32 {
    let sigma = vocab.sym("sigma");
    let delta = vocab.sym("delta");
    let a_attr = vocab.attr("a");
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q_sel = b.state("q_sel");
    let q_chk = b.state("q_chk");
    let q_leaf = b.state("q_leaf");
    let q_f = b.state("qF");
    b.initial(q0).final_state(q_f);
    let x1 = b.unary_register();

    // φ₁(x, y) = x ≺ y ∧ O_δ(y).
    let phi1 = selectors::descendants_labeled(Label::Sym(delta));
    // φ₂(x, y) = ∃z (x ≺ y ∧ E(y, z) ∧ O_△(z)).
    let phi2 = selectors::delim_leaf_descendants();
    // ξ ≡ ∀x∀y (X₁(x) ∧ X₁(y) → x = y).
    let xi = forall(
        Var(0),
        forall(
            Var(1),
            implies(and([rel(x1, [v(0)]), rel(x1, [v(1)])]), eq(v(0), v(1))),
        ),
    );

    b.rule_true(Label::DelimRoot, q0, Action::Atp(q1, phi1, q_sel, x1));
    b.rule_true(Label::DelimRoot, q1, Action::Move(q_f, Dir::Stay));
    b.rule_true(
        Label::Sym(delta),
        q_sel,
        Action::Atp(q_chk, phi2, q_leaf, x1),
    );
    b.rule(Label::Sym(delta), q_chk, xi, Action::Move(q_f, Dir::Stay));
    for l in [Label::Sym(sigma), Label::Sym(delta)] {
        b.rule_true(l, q_leaf, Action::Update(q_f, eq(v(0), attr(a_attr)), x1));
    }
    let program = b.build().expect("Example 3.2 is well-formed");
    // X₁ is a *set* and both selectors pick many nodes: this is a genuine
    // tw^{r,l} program (the paper introduces it before the restrictions).
    debug_assert_eq!(program.classify(), TwClass::TwRL);
    Example32 {
        program,
        sigma,
        delta,
        attr: a_attr,
    }
}

/// Reference oracle for Example 3.2.
pub fn oracle_example_32(tree: &Tree, delta: SymId, a: AttrId) -> bool {
    for u in tree.node_ids() {
        if tree.label(u) != Label::Sym(delta) {
            continue;
        }
        let mut val = None;
        for w in tree.node_ids() {
            if tree.is_leaf(w) && tree.is_strict_ancestor(u, w) {
                let x = tree.attr(w, a);
                match val {
                    None => val = Some(x),
                    Some(y) if y != x => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

/// Rules implementing the canonical document-order traversal of a delimited
/// tree, shared by several programs. `fwd` = first visit (descend), `next`
/// = subtree finished (move right / close). The traversal works because in
/// `delim(t)` the label alone determines leafness: `⊳/⊲/△` are always
/// leaves, `▽` and element symbols never are.
fn traversal_rules(b: &mut TwProgramBuilder, alphabet: &[SymId], fwd: State, next: State) {
    b.rule_true(Label::DelimRoot, fwd, Action::Move(fwd, Dir::Down));
    b.rule_true(Label::DelimOpen, fwd, Action::Move(fwd, Dir::Right));
    b.rule_true(Label::DelimClose, fwd, Action::Move(next, Dir::Up));
    b.rule_true(Label::DelimLeaf, fwd, Action::Move(next, Dir::Up));
    for &s in alphabet {
        b.rule_true(Label::Sym(s), fwd, Action::Move(fwd, Dir::Down));
        b.rule_true(Label::Sym(s), next, Action::Move(fwd, Dir::Right));
    }
}

/// A pure finite-state `TW` program (no registers) that walks the entire
/// delimited tree in document order and accepts back at `▽`. Visits every
/// node — the baseline walker for traversal benchmarks.
pub fn traversal_program(alphabet: &[SymId]) -> TwProgram {
    let mut b = TwProgramBuilder::new();
    let fwd = b.state("fwd");
    let next = b.state("next");
    let q_f = b.state("qF");
    b.initial(fwd).final_state(q_f);
    traversal_rules(&mut b, alphabet, fwd, next);
    b.rule_true(Label::DelimRoot, next, Action::Move(q_f, Dir::Stay));
    b.build().expect("traversal program is well-formed")
}

/// A `TW` program accepting iff the number of leaves is **even** — parity
/// lives in the state (two copies of the traversal). Demonstrates that
/// plain walking computes nontrivial counting-free regular properties.
pub fn even_leaves_program(alphabet: &[SymId]) -> TwProgram {
    let mut b = TwProgramBuilder::new();
    let fwd = [b.state("fwd0"), b.state("fwd1")];
    let next = [b.state("next0"), b.state("next1")];
    let q_f = b.state("qF");
    b.initial(fwd[0]).final_state(q_f);
    for p in 0..2 {
        b.rule_true(Label::DelimRoot, fwd[p], Action::Move(fwd[p], Dir::Down));
        b.rule_true(Label::DelimOpen, fwd[p], Action::Move(fwd[p], Dir::Right));
        b.rule_true(Label::DelimClose, fwd[p], Action::Move(next[p], Dir::Up));
        // Visiting a △ means one more original leaf: flip parity.
        b.rule_true(Label::DelimLeaf, fwd[p], Action::Move(next[1 - p], Dir::Up));
        for &s in alphabet {
            b.rule_true(Label::Sym(s), fwd[p], Action::Move(fwd[p], Dir::Down));
            b.rule_true(Label::Sym(s), next[p], Action::Move(fwd[p], Dir::Right));
        }
    }
    // Accept only with even parity back at ▽.
    b.rule_true(Label::DelimRoot, next[0], Action::Move(q_f, Dir::Stay));
    b.build().expect("even-leaves program is well-formed")
}

/// Oracle for [`even_leaves_program`].
pub fn oracle_even_leaves(tree: &Tree) -> bool {
    tree.node_ids().filter(|&u| tree.is_leaf(u)).count() % 2 == 0
}

/// A class-`TW` register program accepting iff **all leaves carry the same
/// value of `a`**: the traversal stores the first leaf value in `X₁` and
/// guards every later leaf against it. One unique-ID-free register suffices
/// because only equality with the running value is ever needed.
pub fn all_leaves_equal_program(alphabet: &[SymId], a: AttrId) -> TwProgram {
    let mut b = TwProgramBuilder::new();
    let fwd = b.state("fwd");
    let next = b.state("next");
    let chk = b.state("chk");
    let q_f = b.state("qF");
    b.initial(fwd).final_state(q_f);
    let x1 = b.unary_register();

    let empty = not(SFormula::Exists(Var(0), Box::new(rel(x1, [v(0)]))));
    let matches = rel(x1, [attr(a)]);

    b.rule_true(Label::DelimRoot, fwd, Action::Move(fwd, Dir::Down));
    b.rule_true(Label::DelimOpen, fwd, Action::Move(fwd, Dir::Right));
    b.rule_true(Label::DelimClose, fwd, Action::Move(next, Dir::Up));
    // △ sends us up to the leaf in checking state.
    b.rule_true(Label::DelimLeaf, fwd, Action::Move(chk, Dir::Up));
    for &s in alphabet {
        b.rule_true(Label::Sym(s), fwd, Action::Move(fwd, Dir::Down));
        b.rule_true(Label::Sym(s), next, Action::Move(fwd, Dir::Right));
        // First leaf: record its value. Later leaves: must match (else no
        // rule applies and the run is stuck = reject).
        b.rule(
            Label::Sym(s),
            chk,
            empty.clone(),
            Action::Update(next, eq(v(0), attr(a)), x1),
        );
        b.rule(
            Label::Sym(s),
            chk,
            matches.clone(),
            Action::Move(next, Dir::Stay),
        );
    }
    b.rule_true(Label::DelimRoot, next, Action::Move(q_f, Dir::Stay));
    let p = b.build().expect("all-leaves-equal program is well-formed");
    debug_assert_eq!(p.classify(), TwClass::Tw);
    p
}

/// Oracle for [`all_leaves_equal_program`].
pub fn oracle_all_leaves_equal(tree: &Tree, a: AttrId) -> bool {
    let mut val = None;
    for u in tree.node_ids() {
        if tree.is_leaf(u) {
            let x = tree.attr(u, a);
            match val {
                None => val = Some(x),
                Some(y) if y != x => return false,
                Some(_) => {}
            }
        }
    }
    true
}

/// A genuine `tw^l` program (Definition 5.1: unary single-value registers,
/// **single-node** look-ahead): accept iff **some node carries the same
/// `a`-value as its parent**. The traversal probes each node's parent via
/// `atp(parent, ·)` — the selector shape the definition itself suggests
/// ("for instance, select parent or first child").
pub fn parent_child_match_program(alphabet: &[SymId], a: AttrId) -> TwProgram {
    let mut b = TwProgramBuilder::new();
    let fwd = b.state("fwd");
    let next = b.state("next");
    let probe = b.state("probe");
    let judge = b.state("judge");
    let q_par = b.state("q_par");
    let q_f = b.state("qF");
    b.initial(fwd).final_state(q_f);
    let x1 = b.unary_register();

    b.rule_true(Label::DelimRoot, fwd, Action::Move(fwd, Dir::Down));
    b.rule_true(Label::DelimOpen, fwd, Action::Move(fwd, Dir::Right));
    b.rule_true(Label::DelimClose, fwd, Action::Move(next, Dir::Up));
    b.rule_true(Label::DelimLeaf, fwd, Action::Move(next, Dir::Up));
    for &s in alphabet {
        // First visit: look up the parent's value, then judge.
        b.rule_true(
            Label::Sym(s),
            fwd,
            Action::Atp(judge, selectors::parent(), q_par, x1),
        );
        // The parent subcomputation returns its a-value (▽ returns ⊥ for
        // the original root's image — never equal to a proper value).
        b.rule_true(
            Label::Sym(s),
            q_par,
            Action::Update(q_f, eq(v(0), attr(a)), x1),
        );
        // Match → accept; mismatch → descend and continue.
        b.rule(
            Label::Sym(s),
            judge,
            rel(x1, [attr(a)]),
            Action::Move(q_f, Dir::Stay),
        );
        b.rule(
            Label::Sym(s),
            judge,
            not(rel(x1, [attr(a)])),
            Action::Move(probe, Dir::Stay),
        );
        b.rule_true(Label::Sym(s), probe, Action::Move(fwd, Dir::Down));
        b.rule_true(Label::Sym(s), next, Action::Move(fwd, Dir::Right));
    }
    b.rule_true(
        Label::DelimRoot,
        q_par,
        Action::Update(q_f, eq(v(0), attr(a)), x1),
    );
    // Full traversal without a match: stuck at ▽ in `next` → reject.
    let p = b.build().expect("parent-match program is well-formed");
    debug_assert_eq!(p.classify(), TwClass::TwL);
    p
}

/// Oracle for [`parent_child_match_program`].
pub fn oracle_parent_child_match(tree: &Tree, a: AttrId) -> bool {
    tree.node_ids().any(|u| {
        tree.parent(u)
            .is_some_and(|p| tree.attr(p, a) == tree.attr(u, a))
    })
}

/// A `tw^{r,l}` program that accumulates the **set of distinct `a`-values
/// of all nodes** into a register via nested look-ahead and accepts iff at
/// least `threshold` distinct values occur — used by the EXPTIME scaling
/// experiment (E6), since its configuration space grows with the number of
/// value subsets the register ranges over.
pub fn distinct_values_at_least(alphabet: &[SymId], a: AttrId, threshold: usize) -> TwProgram {
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q_node = b.state("q_node");
    let q_f = b.state("qF");
    b.initial(q0).final_state(q_f);
    let x1 = b.unary_register();

    // Select all original nodes: descendants of ▽ labeled by Σ.
    let any_sym: Vec<twq_logic::Formula> = alphabet
        .iter()
        .map(|&s| fob::lab(Label::Sym(s), fob::var(1)))
        .collect();
    let phi = ExistsFormula::new(
        fob::var(0),
        fob::var(1),
        vec![],
        fob::and([fob::desc(fob::var(0), fob::var(1)), fob::or(any_sym)]),
    )
    .expect("selector is valid FO(∃*)");

    b.rule_true(Label::DelimRoot, q0, Action::Atp(q1, phi, q_node, x1));
    for &s in alphabet {
        b.rule_true(
            Label::Sym(s),
            q_node,
            Action::Update(q_f, eq(v(0), attr(a)), x1),
        );
    }
    // Guard: ∃x₁…x_n (pairwise distinct ∧ all in X₁).
    let vars: Vec<Var> = (0..threshold as u16).map(Var).collect();
    let term = |x: Var| twq_logic::STerm::Var(x);
    let mut conj: Vec<SFormula> = vars.iter().map(|&x| rel(x1, [term(x)])).collect();
    for i in 0..vars.len() {
        for j in i + 1..vars.len() {
            conj.push(not(eq(term(vars[i]), term(vars[j]))));
        }
    }
    let mut guard = and(conj);
    for &x in vars.iter().rev() {
        guard = SFormula::Exists(x, Box::new(guard));
    }
    b.rule(Label::DelimRoot, q1, guard, Action::Move(q_f, Dir::Stay));
    b.build().expect("distinct-values program is well-formed")
}

/// Oracle for [`distinct_values_at_least`].
pub fn oracle_distinct_values_at_least(tree: &Tree, a: AttrId, threshold: usize) -> bool {
    let mut vals: Vec<_> = tree.node_ids().map(|u| tree.attr(u, a)).collect();
    vals.sort_unstable();
    vals.dedup();
    vals.len() >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_on_tree, Limits};
    use twq_tree::generate::{random_tree, TreeGenConfig};
    use twq_tree::parse_tree;

    #[test]
    fn example_32_paper_semantics_positive() {
        let mut vocab = Vocab::new();
        let ex = example_32(&mut vocab);
        // δ with all leaf-descendants carrying 1.
        let t = parse_tree(
            "sigma[a=9](delta[a=9](sigma[a=1],sigma[a=1]),sigma[a=2])",
            &mut vocab,
        )
        .unwrap();
        assert!(oracle_example_32(&t, ex.delta, ex.attr));
        let report = run_on_tree(&ex.program, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
    }

    #[test]
    fn example_32_paper_semantics_negative() {
        let mut vocab = Vocab::new();
        let ex = example_32(&mut vocab);
        let t = parse_tree("sigma[a=9](delta[a=9](sigma[a=1],sigma[a=2]))", &mut vocab).unwrap();
        assert!(!oracle_example_32(&t, ex.delta, ex.attr));
        let report = run_on_tree(&ex.program, &t, Limits::default());
        assert!(!report.accepted());
    }

    #[test]
    fn example_32_delta_leaf_is_fine() {
        // A δ that is itself a leaf has no leaf-descendants: accept.
        let mut vocab = Vocab::new();
        let ex = example_32(&mut vocab);
        let t = parse_tree("sigma[a=1](delta[a=2])", &mut vocab).unwrap();
        assert!(oracle_example_32(&t, ex.delta, ex.attr));
        let report = run_on_tree(&ex.program, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
    }

    #[test]
    fn example_32_no_delta_accepts() {
        let mut vocab = Vocab::new();
        let ex = example_32(&mut vocab);
        let t = parse_tree("sigma[a=1](sigma[a=2],sigma[a=3])", &mut vocab).unwrap();
        let report = run_on_tree(&ex.program, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
    }

    #[test]
    fn example_32_matches_oracle_on_random_trees() {
        let mut vocab = Vocab::new();
        let ex = example_32(&mut vocab);
        // Half the trials use a single-value pool (always accepted) so the
        // workload exercises both verdicts regardless of the RNG stream.
        let mixed = TreeGenConfig::example32(&mut vocab, 30, &[1, 2]);
        let uniform = TreeGenConfig::example32(&mut vocab, 30, &[7]);
        let mut accepted = 0;
        for seed in 0..40 {
            let cfg = if seed % 2 == 0 { &mixed } else { &uniform };
            let t = random_tree(cfg, seed);
            let expect = oracle_example_32(&t, ex.delta, ex.attr);
            let got = run_on_tree(&ex.program, &t, Limits::default());
            assert_eq!(got.accepted(), expect, "seed {seed}");
            accepted += usize::from(expect);
        }
        assert!(accepted > 0 && accepted < 40, "workload must be mixed");
    }

    #[test]
    fn traversal_visits_and_accepts() {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, 60, &[1]);
        let alphabet = cfg.symbols.clone();
        let p = traversal_program(&alphabet);
        assert_eq!(p.classify(), TwClass::Tw);
        assert_eq!(p.reg_count(), 0);
        for seed in 0..5 {
            let t = random_tree(&cfg, seed);
            let report = run_on_tree(&p, &t, Limits::default());
            assert!(report.accepted());
            // Traversal visits every delimited node at least once: steps
            // must be ≥ delimited size.
            let dn = twq_tree::DelimTree::build(&t).tree().len();
            assert!(report.steps as usize >= dn);
        }
    }

    #[test]
    fn even_leaves_matches_oracle() {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, 25, &[1]);
        let p = even_leaves_program(&cfg.symbols);
        for seed in 0..30 {
            let t = random_tree(&cfg, seed);
            let report = run_on_tree(&p, &t, Limits::default());
            assert_eq!(report.accepted(), oracle_even_leaves(&t), "seed {seed}");
        }
    }

    #[test]
    fn all_leaves_equal_matches_oracle() {
        let mut vocab = Vocab::new();
        let mixed = TreeGenConfig::example32(&mut vocab, 20, &[1, 2]);
        let uniform = TreeGenConfig::example32(&mut vocab, 20, &[1]);
        let a = vocab.attr_opt("a").unwrap();
        let p = all_leaves_equal_program(&mixed.symbols, a);
        let (mut accepted, mut rejected) = (0, 0);
        for seed in 0..20 {
            for cfg in [&mixed, &uniform] {
                let t = random_tree(cfg, seed);
                let report = run_on_tree(&p, &t, Limits::default());
                let expect = oracle_all_leaves_equal(&t, a);
                assert_eq!(report.accepted(), expect, "seed {seed}");
                if expect {
                    accepted += 1;
                } else {
                    rejected += 1;
                }
            }
        }
        assert!(accepted > 0 && rejected > 0, "workload must be mixed");
    }

    #[test]
    fn parent_child_match_is_class_twl_and_correct() {
        let mut vocab = Vocab::new();
        // A wide value pool keeps both outcomes likely on small trees.
        let cfg = TreeGenConfig::example32(&mut vocab, 8, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let a = vocab.attr_opt("a").unwrap();
        let p = parent_child_match_program(&cfg.symbols, a);
        assert_eq!(p.classify(), TwClass::TwL);
        let (mut yes, mut no) = (0, 0);
        for seed in 0..30 {
            let t = random_tree(&cfg, seed);
            let report = run_on_tree(&p, &t, Limits::default());
            let expect = oracle_parent_child_match(&t, a);
            assert_eq!(report.accepted(), expect, "seed {seed}");
            if expect {
                yes += 1;
            } else {
                no += 1;
            }
        }
        assert!(yes > 0 && no > 0, "yes={yes} no={no}");
    }

    #[test]
    fn distinct_values_thresholds() {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, 15, &[1, 2, 3]);
        let a = vocab.attr_opt("a").unwrap();
        for threshold in 1..=4 {
            let p = distinct_values_at_least(&cfg.symbols, a, threshold);
            // Multi-node atp selection exceeds tw^l (Definition 5.1).
            assert_eq!(p.classify(), TwClass::TwRL);
            let t = random_tree(&cfg, 11);
            let report = run_on_tree(&p, &t, Limits::default());
            assert_eq!(
                report.accepted(),
                oracle_distinct_values_at_least(&t, a, threshold),
                "threshold {threshold}"
            );
        }
    }
}
