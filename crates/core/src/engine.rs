//! Direct execution of tree-walking programs (the transition relation `⊢`
//! of Definition 3.1).
//!
//! The engine runs on the **delimited** tree `delim(t)` (Section 3). A
//! computation is a deterministic chain of configurations `[u, q, τ]`; an
//! `atp(φ, p)` action suspends the chain, runs one subcomputation per node
//! selected by `φ`, and resumes with register `i` replaced by the union of
//! the subcomputations' first registers. Per the paper, *"when one
//! subcomputation rejects, the whole computation rejects"*.
//!
//! Because `tw` programs may diverge, every run takes explicit [`Limits`]
//! and reports a definite [`Halt`] — a query engine never hangs:
//!
//! * a repeated configuration within one chain is a **cycle** (reject);
//! * two simultaneously applicable rules violate the paper's determinism
//!   assumption and halt the run with [`Halt::Nondeterministic`];
//! * a move off the tree (the paper assumes automata never do this) is
//!   [`Halt::Stuck`], as is having no applicable rule in a non-final state.

use twq_exec::{BatchProfile, Pool};
use twq_guard::{
    DepthKind, FaultKind, FaultSite, GaugeKind, Guard, GuardError, GuardStats, NullGuard,
    ResourceGuard, TripReason, TwqError,
};
use twq_logic::store::AttrEnv;
use twq_logic::{eval_query, RegId, Relation, Store};
use twq_obs::{
    Collector, FoEval, HaltKind, MetricsCollector, NullCollector, RunMetrics, Trace, TraceCollector,
};
use twq_tree::{DelimTree, NodeId, Tree};

use crate::program::{Action, Dir, State, TwProgram};

/// A configuration `[u, q, τ]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// The current node (in the delimited tree).
    pub node: NodeId,
    /// The current state.
    pub state: State,
    /// The register contents.
    pub store: Store,
}

/// Resource limits for a run.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum total transitions across the main computation and all
    /// subcomputations.
    pub max_steps: u64,
    /// Maximum `atp` nesting depth.
    pub max_atp_depth: u32,
    /// Cycle-detection sampling interval: `1` records every configuration
    /// (exact, the default), `k > 1` records every `k`-th — a cycle of
    /// length `L` is still caught within `O(L·k)` steps, at `1/k` of the
    /// bookkeeping cost. `0` disables cycle detection entirely: no
    /// configurations are recorded, a looping run is stopped only by
    /// `max_steps` (or a guard budget), and it reports [`Halt::StepLimit`]
    /// — never [`Halt::Cycle`]. Long-running compiled pebble walkers use a
    /// sparse interval.
    pub cycle_check_interval: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 10_000_000,
            max_atp_depth: 64,
            cycle_check_interval: 1,
        }
    }
}

impl Limits {
    /// Limits tuned for very long deterministic walks (compiled pebble
    /// programs): high step budget, sparse cycle sampling.
    pub fn long_walk() -> Self {
        Limits {
            max_steps: 500_000_000,
            max_atp_depth: 64,
            cycle_check_interval: 4096,
        }
    }
}

/// Why a run halted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The final state was reached.
    Accept,
    /// No rule applied in a non-final state (includes moves off the tree).
    Stuck,
    /// A configuration repeated within one computation chain.
    Cycle,
    /// Two rules applied simultaneously — the program is not deterministic.
    Nondeterministic,
    /// A subcomputation rejected, rejecting the whole computation.
    SubRejected,
    /// The step budget was exhausted.
    StepLimit,
    /// The `atp` nesting budget was exhausted.
    AtpDepthLimit,
}

impl Halt {
    /// Whether this halt means acceptance.
    pub fn accepted(self) -> bool {
        self == Halt::Accept
    }

    /// Whether this is a resource-limit halt (result unknown) rather than a
    /// definite accept/reject.
    pub fn is_limit(self) -> bool {
        matches!(self, Halt::StepLimit | Halt::AtpDepthLimit)
    }

    /// The evaluator-agnostic [`HaltKind`] reported to collectors.
    pub fn kind(self) -> HaltKind {
        match self {
            Halt::Accept => HaltKind::Accept,
            Halt::Stuck => HaltKind::Stuck,
            Halt::Cycle => HaltKind::Cycle,
            Halt::Nondeterministic => HaltKind::Nondeterministic,
            Halt::SubRejected => HaltKind::SubRejected,
            Halt::StepLimit => HaltKind::StepLimit,
            Halt::AtpDepthLimit => HaltKind::AtpDepthLimit,
        }
    }
}

/// Execution statistics and outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// How the run ended.
    pub halt: Halt,
    /// Total transitions taken (main + subcomputations).
    pub steps: u64,
    /// Number of `atp` invocations.
    pub atp_calls: u64,
    /// Number of subcomputations started.
    pub subcomputations: u64,
    /// Largest store (total tuples) observed in any configuration.
    pub max_store_tuples: usize,
    /// Most cycle-detection samples examined in one chain (one per
    /// `cycle_check_interval` steps; 0 when detection is disabled).
    pub max_chain_configs: usize,
}

impl RunReport {
    /// Whether the run accepted.
    pub fn accepted(&self) -> bool {
        self.halt.accepted()
    }
}

/// The move function `m_d` on the delimited tree.
pub fn move_dir(tree: &Tree, u: NodeId, d: Dir) -> Option<NodeId> {
    match d {
        Dir::Stay => Some(u),
        Dir::Left => tree.prev_sibling(u),
        Dir::Right => tree.next_sibling(u),
        Dir::Up => tree.parent(u),
        Dir::Down => tree.first_child(u),
    }
}

/// Trace recording attached to an [`Exec`]: a caller-owned buffer plus the
/// entry cap that bounds pathological runs.
struct TraceBuf<'a> {
    buf: &'a mut Vec<TraceStep>,
    cap: usize,
}

pub(crate) struct Exec<'a, C: Collector, G: Guard> {
    pub prog: &'a TwProgram,
    pub tree: &'a Tree,
    pub limits: Limits,
    pub steps: u64,
    pub atp_calls: u64,
    pub subcomputations: u64,
    pub max_store_tuples: usize,
    pub max_chain_configs: usize,
    collector: &'a mut C,
    guard: &'a mut G,
    /// First guard trip, if any — surfaced as `Err(TwqError::Guard)` by the
    /// guarded entry points; internally it unwinds as a limit-style [`Halt`].
    trip: Option<GuardError>,
    trace: Option<TraceBuf<'a>>,
}

/// What happened to one computation chain.
pub(crate) enum ChainEnd {
    /// Reached the final state with this store.
    Accept(Store),
    /// Halted without accepting.
    Reject(Halt),
}

impl ChainEnd {
    fn halt(&self) -> Halt {
        match self {
            ChainEnd::Accept(_) => Halt::Accept,
            ChainEnd::Reject(h) => *h,
        }
    }
}

impl<'a, C: Collector, G: Guard> Exec<'a, C, G> {
    pub(crate) fn new(
        prog: &'a TwProgram,
        tree: &'a Tree,
        limits: Limits,
        collector: &'a mut C,
        guard: &'a mut G,
    ) -> Self {
        Exec {
            prog,
            tree,
            limits,
            steps: 0,
            atp_calls: 0,
            subcomputations: 0,
            max_store_tuples: 0,
            max_chain_configs: 0,
            collector,
            guard,
            trip: None,
            trace: None,
        }
    }

    /// Record a guard trip and translate it into the limit-style [`Halt`]
    /// that unwinds the chain (mirroring `Halt::is_limit()`).
    fn record_trip(&mut self, e: GuardError) -> Halt {
        let halt = match e.reason {
            TripReason::Depth { .. } => Halt::AtpDepthLimit,
            _ => Halt::StepLimit,
        };
        if C::ENABLED {
            self.collector.trip(&e.reason.to_string());
        }
        if self.trip.is_none() {
            self.trip = Some(e);
        }
        halt
    }

    /// Select the unique applicable rule for `cfg`, or report why none /
    /// several apply. `None` = accept (final state).
    fn pick_rule(&mut self, cfg: &Config) -> Result<Option<usize>, Halt> {
        if cfg.state == self.prog.final_state() {
            return Ok(None);
        }
        let env = AttrEnv::of(self.tree, cfg.node);
        let label = self.tree.label(cfg.node);
        let mut chosen = None;
        for &idx in self.prog.rules_for(label, cfg.state) {
            let rule = &self.prog.rules()[idx];
            self.collector.fo_eval(FoEval::Guard);
            if twq_logic::eval_guard(&cfg.store, &env, &rule.guard) {
                if chosen.is_some() {
                    return Err(Halt::Nondeterministic);
                }
                chosen = Some(idx);
            }
        }
        match chosen {
            Some(idx) => Ok(Some(idx)),
            None => Err(Halt::Stuck),
        }
    }

    /// Charge one transition: enforce the step budget and the guard's fuel
    /// budget, count the step, and notify the collector. The single place
    /// step accounting happens.
    fn tick(&mut self, cfg: &Config, depth: u32) -> Result<(), Halt> {
        if self.steps >= self.limits.max_steps {
            return Err(Halt::StepLimit);
        }
        self.steps += 1;
        self.collector
            .step(cfg.node.0 as u64, cfg.state.0 as u32, depth);
        if G::ENABLED {
            if let Err(e) = self.guard.tick() {
                return Err(self.record_trip(e));
            }
        }
        Ok(())
    }

    /// Run one computation chain to completion.
    pub(crate) fn run_chain(&mut self, cfg: Config, depth: u32) -> ChainEnd {
        self.collector
            .chain_enter(cfg.node.0 as u64, cfg.state.0 as u32, depth);
        let end = self.chain_loop(cfg, depth);
        self.collector.chain_exit(end.halt().kind(), depth);
        end
    }

    fn chain_loop(&mut self, mut cfg: Config, depth: u32) -> ChainEnd {
        // Brent's cycle detection over the sampled configuration sequence:
        // one retained configuration (the "teleporting tortoise") and a
        // comparison per sample, O(1) memory where a seen-set grows with the
        // chain. The tortoise is re-anchored at every power of two, so a
        // chain with preperiod μ and period λ is caught within
        // O(μ + λ) samples. Chains that terminate are unaffected — the only
        // behavioural difference from exact first-revisit detection is that
        // a cycling chain may take a few more (bounded) steps to be called.
        let interval = self.limits.cycle_check_interval as u64;
        let mut tortoise: Option<Config> = None;
        let mut power: u64 = 1;
        let mut lam: u64 = 0;
        let mut tracked: usize = 0;
        let mut local_step = 0u64;
        loop {
            if let Some(tr) = &mut self.trace {
                if tr.buf.len() < tr.cap {
                    tr.buf.push(TraceStep {
                        depth,
                        config: cfg.clone(),
                    });
                }
            }
            let tuples = cfg.store.total_tuples();
            self.max_store_tuples = self.max_store_tuples.max(tuples);
            self.collector.store_size(tuples);
            if G::ENABLED {
                if let Err(e) = self.guard.gauge(GaugeKind::StoreTuples, tuples) {
                    return ChainEnd::Reject(self.record_trip(e));
                }
            }
            if interval > 0 && local_step.is_multiple_of(interval) {
                tracked += 1;
                match &tortoise {
                    Some(t) if *t == cfg => return ChainEnd::Reject(Halt::Cycle),
                    Some(_) => {
                        lam += 1;
                        if lam == power {
                            tortoise = Some(cfg.clone());
                            power *= 2;
                            lam = 0;
                        }
                    }
                    None => tortoise = Some(cfg.clone()),
                }
                self.collector.cycle_bookkeeping(tracked);
                if G::ENABLED {
                    if let Err(e) = self.guard.gauge(GaugeKind::Configs, tracked) {
                        return ChainEnd::Reject(self.record_trip(e));
                    }
                }
            }
            local_step += 1;
            self.max_chain_configs = self.max_chain_configs.max(tracked);
            let rule_idx = match self.pick_rule(&cfg) {
                Ok(None) => return ChainEnd::Accept(cfg.store),
                Ok(Some(i)) => i,
                Err(h) => return ChainEnd::Reject(h),
            };
            if let Err(h) = self.tick(&cfg, depth) {
                return ChainEnd::Reject(h);
            }
            if G::ENABLED
                && self.guard.fault_at(FaultSite::Transition) == Some(FaultKind::DropTransition)
            {
                // Injected fault: the selected rule is lost, as if no rule
                // had applied — the chain ends stuck instead of progressing.
                return ChainEnd::Reject(Halt::Stuck);
            }
            let rule = &self.prog.rules()[rule_idx];
            match &rule.action {
                Action::Move(q, d) => {
                    match move_dir(self.tree, cfg.node, *d) {
                        Some(v) => {
                            cfg.node = v;
                            cfg.state = *q;
                        }
                        // The paper assumes the automaton never moves off
                        // the tree; doing so halts the run.
                        None => return ChainEnd::Reject(Halt::Stuck),
                    }
                }
                Action::Update(q, psi, i) => {
                    self.collector.fo_eval(FoEval::Update);
                    let env = AttrEnv::of(self.tree, cfg.node);
                    let rel = eval_query(&cfg.store, &env, psi);
                    if G::ENABLED
                        && self.guard.fault_at(FaultSite::Store) == Some(FaultKind::CorruptStore)
                    {
                        // Injected fault: the write lands on a store reset
                        // to its initial contents, wiping accumulated state.
                        cfg.store = self.prog.initial_store();
                    }
                    cfg.store.set(*i, rel);
                    cfg.state = *q;
                }
                Action::Atp(q, phi, p, i) => {
                    if depth >= self.limits.max_atp_depth {
                        return ChainEnd::Reject(Halt::AtpDepthLimit);
                    }
                    if G::ENABLED {
                        if let Err(e) = self.guard.enter(DepthKind::Atp) {
                            return ChainEnd::Reject(self.record_trip(e));
                        }
                    }
                    self.atp_calls += 1;
                    let selected = phi.select_with(self.tree, cfg.node, self.collector);
                    self.collector
                        .atp_enter(cfg.node.0 as u64, selected.len(), depth);
                    if C::ENABLED {
                        let ids: Vec<u64> = selected.iter().map(|v| v.0 as u64).collect();
                        self.collector.selected(&ids);
                    }
                    let mut acc = Relation::empty(cfg.store.arity(RegId(0)));
                    for v in selected {
                        self.subcomputations += 1;
                        let sub = Config {
                            node: v,
                            state: *p,
                            store: cfg.store.clone(),
                        };
                        match self.run_chain(sub, depth + 1) {
                            ChainEnd::Accept(st) => acc.union_with(st.get(RegId(0))),
                            ChainEnd::Reject(h) => {
                                // "When one subcomputation rejects, the
                                // whole computation rejects."
                                let h = if h.is_limit() { h } else { Halt::SubRejected };
                                self.collector.atp_exit(depth);
                                if G::ENABLED {
                                    self.guard.exit(DepthKind::Atp);
                                }
                                return ChainEnd::Reject(h);
                            }
                        }
                    }
                    self.collector.atp_exit(depth);
                    if G::ENABLED {
                        self.guard.exit(DepthKind::Atp);
                    }
                    cfg.store.set(*i, acc);
                    cfg.state = *q;
                }
            }
        }
    }

    /// Run from the initial configuration `γ₀ = [root, q₀, τ₀]`, report the
    /// halt to the collector, and surface any guard trip as a [`TwqError`]
    /// enriched with the engine's own progress counters.
    pub(crate) fn drive(&mut self) -> Result<RunReport, TwqError> {
        let init = Config {
            node: self.tree.root(),
            state: self.prog.initial(),
            store: self.prog.initial_store(),
        };
        let halt = self.run_chain(init, 0).halt();
        self.collector.halt(halt.kind());
        let report = self.report(halt);
        match self.trip.take() {
            None => Ok(report),
            Some(mut e) => {
                e.partial.fuel_spent = e.partial.fuel_spent.max(report.steps);
                e.partial.max_gauge = e.partial.max_gauge.max(report.max_store_tuples);
                Err(TwqError::Guard(e))
            }
        }
    }

    pub(crate) fn report(&self, halt: Halt) -> RunReport {
        RunReport {
            halt,
            steps: self.steps,
            atp_calls: self.atp_calls,
            subcomputations: self.subcomputations,
            max_store_tuples: self.max_store_tuples,
            max_chain_configs: self.max_chain_configs,
        }
    }
}

/// Run a program on a delimited tree from the initial configuration
/// `γ₀ = [root, q₀, τ₀]`.
pub fn run(prog: &TwProgram, delim: &DelimTree, limits: Limits) -> RunReport {
    run_with(prog, delim, limits, &mut NullCollector)
}

/// [`run`] with instrumentation: the collector sees every step (with node,
/// state, and `atp` depth), chain and `atp` spans, guard/update
/// evaluations, store sizes, and cycle-check bookkeeping.
pub fn run_with<C: Collector>(
    prog: &TwProgram,
    delim: &DelimTree,
    limits: Limits,
    collector: &mut C,
) -> RunReport {
    let mut guard = NullGuard;
    let mut exec = Exec::new(prog, delim.tree(), limits, collector, &mut guard);
    exec.drive().expect("NullGuard never trips")
}

/// [`run`] under a resource [`Guard`]: the guard's fuel budget is charged
/// once per transition, `atp` nesting is tracked as [`DepthKind::Atp`],
/// store sizes and cycle-table sizes feed [`GaugeKind::StoreTuples`] /
/// [`GaugeKind::Configs`], and fault plans may drop transitions or corrupt
/// the store.
///
/// On a trip the run stops where it was and returns
/// `Err(TwqError::Guard(_))` whose [`twq_guard::Partial`] records the steps
/// taken and the store high-water mark — the `Result` analogue of a
/// [`RunReport`] with `halt.is_limit()`.
pub fn run_guarded<G: Guard>(
    prog: &TwProgram,
    delim: &DelimTree,
    limits: Limits,
    guard: &mut G,
) -> Result<RunReport, TwqError> {
    run_guarded_with(prog, delim, limits, guard, &mut NullCollector)
}

/// [`run_guarded`] with instrumentation: governance and observability
/// compose — the collector sees every step up to the trip.
pub fn run_guarded_with<C: Collector, G: Guard>(
    prog: &TwProgram,
    delim: &DelimTree,
    limits: Limits,
    guard: &mut G,
    collector: &mut C,
) -> Result<RunReport, TwqError> {
    let mut exec = Exec::new(prog, delim.tree(), limits, collector, guard);
    exec.drive()
}

/// Convenience: delimit `tree` and run.
pub fn run_on_tree(prog: &TwProgram, tree: &Tree, limits: Limits) -> RunReport {
    run(prog, &DelimTree::build(tree), limits)
}

/// [`run_on_tree`] with instrumentation.
pub fn run_on_tree_with<C: Collector>(
    prog: &TwProgram,
    tree: &Tree,
    limits: Limits,
    collector: &mut C,
) -> RunReport {
    run_with(prog, &DelimTree::build(tree), limits, collector)
}

/// Convenience: delimit `tree` and run under a guard.
pub fn run_on_tree_guarded<G: Guard>(
    prog: &TwProgram,
    tree: &Tree,
    limits: Limits,
    guard: &mut G,
) -> Result<RunReport, TwqError> {
    run_guarded(prog, &DelimTree::build(tree), limits, guard)
}

/// Run `prog` on every tree in `trees`, fanned across `pool`. Reports come
/// back in input order and are identical to a serial [`run_on_tree`] loop —
/// with a 1-worker pool it *is* that loop.
pub fn run_batch(prog: &TwProgram, trees: &[Tree], limits: Limits, pool: &Pool) -> Vec<RunReport> {
    pool.scoped(trees.len(), |i| run_on_tree(prog, &trees[i], limits))
}

/// [`run_batch`] with per-run instrumentation: each tree gets its own
/// metrics collector and the per-worker results are
/// [merged](RunMetrics::merge) in input order, so the aggregate equals what
/// one collector observing the serial loop would report (up to phase
/// ordering).
pub fn run_batch_with_metrics(
    prog: &TwProgram,
    trees: &[Tree],
    limits: Limits,
    pool: &Pool,
) -> (Vec<RunReport>, RunMetrics) {
    let runs = pool.scoped(trees.len(), |i| {
        let mut c = MetricsCollector::new();
        let report = run_on_tree_with(prog, &trees[i], limits, &mut c);
        (report, c.into_metrics())
    });
    let mut merged = RunMetrics::new();
    let mut reports = Vec::with_capacity(runs.len());
    for (report, m) in runs {
        merged.merge(&m);
        reports.push(report);
    }
    (reports, merged)
}

/// [`run_batch`] under per-run resource guards: every tree runs under a
/// fresh guard from `make_guard`, so each item's verdict — including any
/// [`TwqError::Guard`] trip — is exactly what the serial loop produces with
/// the same factory.
pub fn run_batch_guarded<G, F>(
    prog: &TwProgram,
    trees: &[Tree],
    limits: Limits,
    pool: &Pool,
    make_guard: F,
) -> Vec<Result<RunReport, TwqError>>
where
    G: Guard,
    F: Fn() -> G + Sync,
{
    pool.scoped(trees.len(), |i| {
        let mut g = make_guard();
        run_on_tree_guarded(prog, &trees[i], limits, &mut g)
    })
}

/// [`run_batch_with_metrics`] plus a [`BatchProfile`]: per-item wall-clock
/// latencies (input order) and the pool's per-worker telemetry. Reports
/// and merged metrics are identical to the unprofiled entry points; only
/// the timing and scheduling bookkeeping is extra.
pub fn run_batch_profiled(
    prog: &TwProgram,
    trees: &[Tree],
    limits: Limits,
    pool: &Pool,
) -> (Vec<RunReport>, RunMetrics, BatchProfile) {
    let (runs, stats) = pool.scoped_with_stats(trees.len(), |i| {
        let mut c = MetricsCollector::new();
        let t0 = std::time::Instant::now();
        let report = run_on_tree_with(prog, &trees[i], limits, &mut c);
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        (report, c.into_metrics(), ns)
    });
    let mut merged = RunMetrics::new();
    let mut reports = Vec::with_capacity(runs.len());
    let mut latencies_ns = Vec::with_capacity(runs.len());
    for (report, m, ns) in runs {
        merged.merge(&m);
        reports.push(report);
        latencies_ns.push(ns);
    }
    (
        reports,
        merged,
        BatchProfile {
            latencies_ns,
            stats,
        },
    )
}

/// [`run_batch_guarded`] specialized to [`ResourceGuard`]s, additionally
/// returning the items' [`GuardStats`] merged in input order — fuel
/// charged and trips by reason across the whole batch.
pub fn run_batch_governed<F>(
    prog: &TwProgram,
    trees: &[Tree],
    limits: Limits,
    pool: &Pool,
    make_guard: F,
) -> (Vec<Result<RunReport, TwqError>>, GuardStats)
where
    F: Fn() -> ResourceGuard + Sync,
{
    let runs = pool.scoped(trees.len(), |i| {
        let mut g = make_guard();
        let verdict = run_on_tree_guarded(prog, &trees[i], limits, &mut g);
        (verdict, g.stats())
    });
    let mut merged = GuardStats::default();
    let mut verdicts = Vec::with_capacity(runs.len());
    for (verdict, s) in runs {
        merged.merge(&s);
        verdicts.push(verdict);
    }
    (verdicts, merged)
}

/// One step of a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// `atp` nesting depth (0 = main computation).
    pub depth: u32,
    /// The configuration *before* the step.
    pub config: Config,
}

/// Run while recording the visited configurations (capped at `max_trace`
/// entries to keep pathological runs bounded). Intended for debugging and
/// teaching — the trace makes the walking visible.
pub fn run_traced(
    prog: &TwProgram,
    delim: &DelimTree,
    limits: Limits,
    max_trace: usize,
) -> (RunReport, Vec<TraceStep>) {
    run_traced_with(prog, delim, limits, max_trace, &mut NullCollector)
}

/// [`run_traced`] with instrumentation. One single pass drives the chain
/// runner with its trace hook armed, so the report and the trace come from
/// the same execution.
pub fn run_traced_with<C: Collector>(
    prog: &TwProgram,
    delim: &DelimTree,
    limits: Limits,
    max_trace: usize,
    collector: &mut C,
) -> (RunReport, Vec<TraceStep>) {
    let mut trace = Vec::new();
    let mut guard = NullGuard;
    let mut exec = Exec::new(prog, delim.tree(), limits, collector, &mut guard);
    exec.trace = Some(TraceBuf {
        buf: &mut trace,
        cap: max_trace,
    });
    let report = exec.drive().expect("NullGuard never trips");
    (report, trace)
}

/// Run while recording a causal [`Trace`] span tree: chain and `atp`
/// spans with walk paths, atp selection frontiers, and subtree verdicts,
/// each addressed by a deterministic causal ID. Recording happens on one
/// thread, so the trace is a pure function of `(prog, delim, limits)`.
pub fn trace_run(prog: &TwProgram, delim: &DelimTree, limits: Limits) -> (RunReport, Trace) {
    let mut c = TraceCollector::new();
    let report = run_with(prog, delim, limits, &mut c);
    (report, c.finish("run"))
}

/// [`trace_run`] under a resource [`Guard`]: the trace additionally
/// carries a `Trip` span (with the rendered [`TripReason`]) at the exact
/// point the guard fired.
pub fn trace_run_guarded<G: Guard>(
    prog: &TwProgram,
    delim: &DelimTree,
    limits: Limits,
    guard: &mut G,
) -> (Result<RunReport, TwqError>, Trace) {
    let mut c = TraceCollector::new();
    let verdict = run_guarded_with(prog, delim, limits, guard, &mut c);
    (verdict, c.finish("run_guarded"))
}

/// [`run_batch`] while recording one causal trace for the whole batch:
/// each tree is traced independently on whichever worker runs it, then
/// the per-item traces are merged in input order ([`Pool::scoped`]
/// returns results positionally) — so the merged trace is byte-identical
/// for any pool size, including the serial one.
pub fn trace_batch(
    prog: &TwProgram,
    trees: &[Tree],
    limits: Limits,
    pool: &Pool,
) -> (Vec<RunReport>, Trace) {
    let runs = pool.scoped(trees.len(), |i| {
        let mut c = TraceCollector::new();
        let report = run_on_tree_with(prog, &trees[i], limits, &mut c);
        (report, c.finish("run"))
    });
    let mut reports = Vec::with_capacity(runs.len());
    let mut traces = Vec::with_capacity(runs.len());
    for (report, trace) in runs {
        reports.push(report);
        traces.push(trace);
    }
    (reports, Trace::merge_batch("run_batch", traces))
}

/// Render a trace for human reading.
pub fn display_trace(
    trace: &[TraceStep],
    prog: &TwProgram,
    delim: &DelimTree,
    vocab: &twq_tree::Vocab,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for step in trace {
        let label = delim.tree().label(step.config.node).display(vocab);
        let _ = writeln!(
            out,
            "{}[{} @ {} ({label})] store: {} tuples",
            "  ".repeat(step.depth as usize),
            prog.state_name(step.config.state),
            step.config.node,
            step.config.store.total_tuples(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, TwProgramBuilder};
    use twq_logic::exists::selectors;
    use twq_logic::store::sbuild::*;
    use twq_tree::{parse_tree, Label, Vocab};

    fn accept_all() -> TwProgram {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        b.build().unwrap()
    }

    #[test]
    fn minimal_acceptor_accepts() {
        let mut v = Vocab::new();
        let t = parse_tree("a(b,c)", &mut v).unwrap();
        let report = run_on_tree(&accept_all(), &t, Limits::default());
        assert!(report.accepted());
        assert_eq!(report.steps, 1);
    }

    #[test]
    fn program_with_no_rules_is_stuck() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let p = b.build().unwrap();
        let mut v = Vocab::new();
        let t = parse_tree("a", &mut v).unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert_eq!(report.halt, Halt::Stuck);
        assert!(!report.accepted());
    }

    #[test]
    fn two_way_cycle_detected() {
        // ▽ → down to ⊳ → up to ▽ → down … never terminates: cycle.
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(q0, Dir::Down));
        b.rule_true(Label::DelimOpen, q0, Action::Move(q0, Dir::Up));
        let p = b.build().unwrap();
        let mut v = Vocab::new();
        let t = parse_tree("a", &mut v).unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert_eq!(report.halt, Halt::Cycle);
    }

    #[test]
    fn nondeterminism_reported() {
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Stay));
        b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Down));
        let p = b.build().unwrap();
        let mut v = Vocab::new();
        let t = parse_tree("a", &mut v).unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert_eq!(report.halt, Halt::Nondeterministic);
    }

    #[test]
    fn guards_disambiguate_rules() {
        // Accept iff the root's attribute equals 1, by guarding on the
        // register that the first rule loads.
        let mut vocab = Vocab::new();
        let t = parse_tree("a[k=1](b)", &mut vocab).unwrap();
        let k = vocab.attr_opt("k").unwrap();
        let one = vocab.val_int(1);

        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let q2 = b.state("q2");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let r = b.unary_register();
        // Walk ▽ ↓ ⊳ → a; load k; test.
        b.rule_true(Label::DelimRoot, q0, Action::Move(q0, Dir::Down));
        b.rule_true(Label::DelimOpen, q0, Action::Move(q1, Dir::Right));
        let a_sym = Label::Sym(vocab.sym_opt("a").unwrap());
        b.rule_true(a_sym, q1, Action::Update(q2, eq(v(0), attr(k)), r));
        b.rule(a_sym, q2, rel(r, [cst(one)]), Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();

        let report = run_on_tree(&p, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);

        // Same program on k=2 gets stuck at the guard.
        let t2 = parse_tree("a[k=2](b)", &mut vocab).unwrap();
        let report2 = run_on_tree(&p, &t2, Limits::default());
        assert_eq!(report2.halt, Halt::Stuck);
    }

    #[test]
    fn atp_unions_subcomputation_results() {
        // Main: at ▽, atp over all original leaves (parents of △); each
        // subcomputation stores its a-attribute in X1 and accepts. The
        // main register ends with the set of all leaf values — we verify
        // by guarding acceptance on a specific value being present.
        let mut vocab = Vocab::new();
        let t = parse_tree("s[a=9](s[a=1],s[a=2])", &mut vocab).unwrap();
        let a = vocab.attr_opt("a").unwrap();
        let one = vocab.val_int(1);
        let two = vocab.val_int(2);
        let nine = vocab.val_int(9);
        let s_sym = Label::Sym(vocab.sym_opt("s").unwrap());

        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let qleaf = b.state("qleaf");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let r = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(q1, selectors::delim_leaf_descendants(), qleaf, r),
        );
        // Leaves: store own a-value, accept.
        b.rule_true(s_sym, qleaf, Action::Update(qf, eq(v(0), attr(a)), r));
        // Main resumes at ▽ in q1: accept iff X1 contains 1 and 2 but not 9.
        b.rule(
            Label::DelimRoot,
            q1,
            and([
                rel(r, [cst(one)]),
                rel(r, [cst(two)]),
                not(rel(r, [cst(nine)])),
            ]),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert!(report.accepted(), "{:?}", report.halt);
        assert_eq!(report.atp_calls, 1);
        assert_eq!(report.subcomputations, 2);
    }

    #[test]
    fn rejecting_subcomputation_rejects_whole_run() {
        // The leaf subcomputation has no rule → stuck → whole run rejects.
        let mut vocab = Vocab::new();
        let t = parse_tree("s(s)", &mut vocab).unwrap();
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let qleaf = b.state("qleaf");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let r = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(q1, selectors::delim_leaf_descendants(), qleaf, r),
        );
        b.rule_true(Label::DelimRoot, q1, Action::Move(qf, Dir::Stay));
        let p = b.build().unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert_eq!(report.halt, Halt::SubRejected);
    }

    #[test]
    fn atp_with_empty_selection_yields_empty_register() {
        // Selecting δ-descendants of the root of a δ-free tree: no
        // subcomputations, register becomes ∅, computation continues.
        let mut vocab = Vocab::new();
        let t = parse_tree("s(s)", &mut vocab).unwrap();
        let delta = vocab.sym("delta");
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let q1 = b.state("q1");
        let qsub = b.state("qsub");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        let r = b.unary_register();
        b.rule_true(
            Label::DelimRoot,
            q0,
            Action::Atp(
                q1,
                twq_logic::exists::selectors::descendants_labeled(Label::Sym(delta)),
                qsub,
                r,
            ),
        );
        // Accept iff register is empty.
        b.rule(
            Label::DelimRoot,
            q1,
            not(twq_logic::SFormula::Exists(
                twq_logic::Var(0),
                Box::new(rel(r, [v(0)])),
            )),
            Action::Move(qf, Dir::Stay),
        );
        let p = b.build().unwrap();
        let report = run_on_tree(&p, &t, Limits::default());
        assert!(report.accepted());
        assert_eq!(report.subcomputations, 0);
    }

    #[test]
    fn step_limit_enforced() {
        // An infinite walk bouncing between two states at two nodes with a
        // growing... actually any cycle is caught; to exercise StepLimit use
        // a limit smaller than the cycle length.
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(q0, Dir::Down));
        b.rule_true(Label::DelimOpen, q0, Action::Move(q0, Dir::Up));
        let p = b.build().unwrap();
        let mut v = Vocab::new();
        let t = parse_tree("a", &mut v).unwrap();
        let report = run_on_tree(
            &p,
            &t,
            Limits {
                max_steps: 1,
                max_atp_depth: 4,
                cycle_check_interval: 1,
            },
        );
        // With max_steps=1 we halt on the limit before closing the cycle.
        assert_eq!(report.halt, Halt::StepLimit);
    }

    #[test]
    fn cycle_check_interval_zero_disables_detection() {
        // Same looping program as `two_way_cycle_detected`, but with
        // cycle_check_interval = 0 the repeat is never noticed: the run is
        // stopped only by max_steps and reports StepLimit, never Cycle.
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(q0, Dir::Down));
        b.rule_true(Label::DelimOpen, q0, Action::Move(q0, Dir::Up));
        let p = b.build().unwrap();
        let mut v = Vocab::new();
        let t = parse_tree("a", &mut v).unwrap();
        let limits = Limits {
            max_steps: 1000,
            max_atp_depth: 4,
            cycle_check_interval: 0,
        };
        let report = run_on_tree(&p, &t, limits);
        assert_eq!(report.halt, Halt::StepLimit);
        assert_eq!(report.steps, 1000);
        assert_eq!(
            report.max_chain_configs, 0,
            "nothing recorded when disabled"
        );
        // Sanity: with the default interval the same program is a Cycle.
        let report = run_on_tree(
            &p,
            &t,
            Limits {
                cycle_check_interval: 1,
                ..limits
            },
        );
        assert_eq!(report.halt, Halt::Cycle);
    }

    #[test]
    fn guard_budget_trips_with_partial_report() {
        use twq_guard::{ResourceGuard, TripReason};
        // The looping program again, under a guard budget smaller than the
        // engine's own step limit.
        let mut b = TwProgramBuilder::new();
        let q0 = b.state("q0");
        let qf = b.state("qF");
        b.initial(q0).final_state(qf);
        b.rule_true(Label::DelimRoot, q0, Action::Move(q0, Dir::Down));
        b.rule_true(Label::DelimOpen, q0, Action::Move(q0, Dir::Up));
        let p = b.build().unwrap();
        let mut v = Vocab::new();
        let t = parse_tree("a", &mut v).unwrap();
        let limits = Limits {
            max_steps: 1_000_000,
            max_atp_depth: 4,
            cycle_check_interval: 0,
        };
        let mut g = ResourceGuard::unlimited().with_budget(10);
        let err = run_on_tree_guarded(&p, &t, limits, &mut g).unwrap_err();
        let trip = err.guard().expect("budget trip");
        assert_eq!(trip.reason, TripReason::Budget { limit: 10 });
        assert!(trip.partial.fuel_spent >= 10);
        assert!(err.is_limit());
    }

    #[test]
    fn guard_null_matches_unguarded_run() {
        let mut vocab = Vocab::new();
        let ex = crate::examples::example_32(&mut vocab);
        let t = parse_tree("sigma[a=9](delta[a=9](sigma[a=1],sigma[a=1]))", &mut vocab).unwrap();
        let dt = DelimTree::build(&t);
        let plain = run(&ex.program, &dt, Limits::default());
        let mut ng = NullGuard;
        let guarded = run_guarded(&ex.program, &dt, Limits::default(), &mut ng).unwrap();
        assert_eq!(plain, guarded);
        // A generously-budgeted ResourceGuard agrees too.
        let mut rg = twq_guard::ResourceGuard::unlimited().with_budget(1_000_000);
        let guarded = run_guarded(&ex.program, &dt, Limits::default(), &mut rg).unwrap();
        assert_eq!(plain, guarded);
        assert_eq!(rg.fuel_spent(), plain.steps);
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let mut vocab = Vocab::new();
        let ex = crate::examples::example_32(&mut vocab);
        let t = parse_tree("sigma[a=9](delta[a=9](sigma[a=1],sigma[a=1]))", &mut vocab).unwrap();
        let dt = twq_tree::DelimTree::build(&t);
        let (report, trace) = run_traced(&ex.program, &dt, Limits::default(), 10_000);
        assert!(report.accepted());
        assert!(!trace.is_empty());
        // The trace starts at the initial configuration, depth 0.
        assert_eq!(trace[0].depth, 0);
        assert_eq!(trace[0].config.state, ex.program.initial());
        // Subcomputations appear at depth ≥ 1.
        assert!(trace.iter().any(|s| s.depth >= 1));
        // Rendering mentions the delimiter root.
        let shown = display_trace(&trace, &ex.program, &dt, &vocab);
        assert!(shown.contains("▽"), "{shown}");
        // The cap truncates.
        let (_, short) = run_traced(&ex.program, &dt, Limits::default(), 3);
        assert_eq!(short.len(), 3);
    }

    #[test]
    fn run_batch_matches_serial_any_worker_count() {
        let mut vocab = Vocab::new();
        let ex = crate::examples::example_32(&mut vocab);
        let trees: Vec<Tree> = [
            "sigma[a=9](delta[a=9](sigma[a=1],sigma[a=1]))",
            "sigma[a=1](delta[a=2](sigma[a=2]))",
            "sigma[a=3]",
            "sigma[a=9](delta[a=9](sigma[a=1]),delta[a=9](sigma[a=9]))",
        ]
        .iter()
        .map(|s| parse_tree(s, &mut vocab).unwrap())
        .collect();
        let serial: Vec<RunReport> = trees
            .iter()
            .map(|t| run_on_tree(&ex.program, t, Limits::default()))
            .collect();
        for workers in [1, 2, 4] {
            let pool = Pool::new(workers);
            let batch = run_batch(&ex.program, &trees, Limits::default(), &pool);
            assert_eq!(batch, serial, "workers={workers}");
            let (reports, metrics) =
                run_batch_with_metrics(&ex.program, &trees, Limits::default(), &pool);
            assert_eq!(reports, serial, "workers={workers}");
            assert_eq!(metrics.steps, serial.iter().map(|r| r.steps).sum::<u64>());
        }
    }

    #[test]
    fn run_batch_guarded_matches_serial_including_trips() {
        use twq_guard::ResourceGuard;
        let mut vocab = Vocab::new();
        let ex = crate::examples::example_32(&mut vocab);
        let trees: Vec<Tree> = [
            "sigma[a=9](delta[a=9](sigma[a=1],sigma[a=1]))",
            "sigma[a=3]",
        ]
        .iter()
        .map(|s| parse_tree(s, &mut vocab).unwrap())
        .collect();
        // A budget that some runs exhaust and some do not.
        let make = || ResourceGuard::unlimited().with_budget(5);
        let serial: Vec<Result<RunReport, TwqError>> = trees
            .iter()
            .map(|t| {
                let mut g = make();
                run_on_tree_guarded(&ex.program, t, Limits::default(), &mut g)
            })
            .collect();
        for workers in [1, 3] {
            let pool = Pool::new(workers);
            let batch = run_batch_guarded(&ex.program, &trees, Limits::default(), &pool, make);
            assert_eq!(batch.len(), serial.len());
            for (b, s) in batch.iter().zip(&serial) {
                match (b, s) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y),
                    (Err(x), Err(y)) => {
                        assert_eq!(x.guard().unwrap().reason, y.guard().unwrap().reason)
                    }
                    _ => panic!("verdict shape diverged: {b:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn move_directions() {
        let mut v = Vocab::new();
        let t = parse_tree("a(b,c)", &mut v).unwrap();
        let r = t.root();
        let b_node = t.node_at_path(&[1]).unwrap();
        let c_node = t.node_at_path(&[2]).unwrap();
        assert_eq!(move_dir(&t, r, Dir::Stay), Some(r));
        assert_eq!(move_dir(&t, r, Dir::Down), Some(b_node));
        assert_eq!(move_dir(&t, b_node, Dir::Right), Some(c_node));
        assert_eq!(move_dir(&t, c_node, Dir::Left), Some(b_node));
        assert_eq!(move_dir(&t, c_node, Dir::Up), Some(r));
        assert_eq!(move_dir(&t, r, Dir::Up), None);
        assert_eq!(move_dir(&t, b_node, Dir::Left), None);
        assert_eq!(move_dir(&t, c_node, Dir::Right), None);
        assert_eq!(move_dir(&t, b_node, Dir::Down), None);
    }
}
