//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-tree package provides the subset of proptest the workspace uses:
//! the [`proptest!`] test macro with `pat in strategy` bindings and an
//! optional `#![proptest_config(..)]` header, integer-range and tuple
//! [`Strategy`] instances, and the `prop_assert*` / [`prop_assume!`]
//! macros. Cases are sampled from a deterministic per-case RNG; there is
//! no shrinking — a failing case panics with its index and message, and
//! rerunning reproduces it exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration — only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked on.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Mirrors proptest's `Strategy` closely enough for
/// `impl Strategy<Value = T>` return types to keep compiling.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, _rng: &mut StdRng) -> bool {
        *self
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// The per-case generator: deterministic in the case index so failures
/// reproduce across runs.
#[doc(hidden)]
pub fn __case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x5eed_0000_0000_0000u64 ^ u64::from(case).wrapping_mul(0x9e37_79b9))
}

/// Define property tests. Each function body runs once per case with its
/// arguments freshly sampled from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::__case_rng(__case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property failed at case {}/{}: {}", __case, cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?}", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?} ({})", l, r, format!($($fmt)+)),
            );
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
}

/// Skip the current case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, usize)> {
        (0u64..100, 1usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_sample_in_range((a, b) in pair()) {
            prop_assert!(a < 100);
            prop_assert!((1..10).contains(&b), "b = {}", b);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "property failed")]
        fn failing_property_panics(_n in 0u32..4) {
            prop_assert!(false, "forced failure");
        }
    }
}
