//! # twq-exec — scoped parallel execution
//!
//! A small work-stealing thread pool for the batch entry points of the
//! `twq` workspace (`engine::run_batch`, `logic::select_batch`,
//! `xpath::select_batch`, the experiment harness's `--jobs`). Vendored in
//! the same spirit as `crates/rand`/`crates/proptest`/`crates/criterion`:
//! no external dependencies, exactly the API subset the workspace needs.
//!
//! ## Model
//!
//! [`Pool::scoped`] runs `n` independent jobs `f(0), …, f(n-1)` across a
//! fixed number of workers and returns the results **in index order**,
//! whatever interleaving the scheduler chose. Jobs borrow from the caller's
//! stack (the workers are `std::thread::scope` threads), so no `'static`
//! bounds infect call sites.
//!
//! Scheduling is work-stealing over index ranges: the indices are split
//! into one contiguous chunk per worker; each worker pops its own chunk
//! from the front and, when exhausted, steals from the *back* of another
//! worker's remaining range. Ranges are packed `(start, end)` pairs in one
//! atomic word, so both pop and steal are single-CAS operations.
//!
//! ## Determinism
//!
//! Two properties make parallel runs reproducible:
//!
//! * results land in a slot per index, so the returned `Vec` is always
//!   `[f(0), …, f(n-1)]` regardless of execution order;
//! * with `workers == 1` (or `n <= 1`) jobs run inline on the caller's
//!   thread, in index order, with no threads spawned at all — the serial
//!   path is not merely equivalent but *identical* to a hand-written loop.
//!
//! Jobs must therefore not communicate through shared mutable state unless
//! that state is order-insensitive (an atomic flag, a shared fuel counter).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A fixed-size scoped thread pool.
///
/// The pool is a *policy* object — it owns no threads. Every call to
/// [`scoped`](Pool::scoped) spins up its workers inside a
/// [`std::thread::scope`] and joins them before returning, which is what
/// lets jobs borrow locals. For the coarse jobs the workspace runs
/// (whole-tree evaluations, experiment rows), thread start-up is noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The single-worker pool: [`scoped`](Pool::scoped) runs every job
    /// inline on the caller's thread.
    pub fn serial() -> Self {
        Pool { workers: 1 }
    }

    /// A pool sized to [`Pool::default_parallelism`].
    pub fn with_default_parallelism() -> Self {
        Pool::new(Pool::default_parallelism())
    }

    /// The number of hardware threads, or 1 when it cannot be queried.
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// The fixed worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(0), …, f(n-1)` across the workers; results in index order.
    ///
    /// The caller's thread is worker 0, so a `workers == 1` pool (or a
    /// batch of at most one job) never spawns a thread. A panic in any job
    /// propagates to the caller after the scope joins.
    ///
    /// The index-order guarantee is what makes per-job observability
    /// worker-independent: `twq-core`'s `trace_batch` records one trace per
    /// job on whichever worker runs it and merges them positionally, so the
    /// merged trace is byte-identical for every worker count.
    pub fn scoped<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            return (0..n).map(f).collect();
        }

        // One contiguous index range per worker, packed (start, end) in a
        // single word so pop-front and steal-back are one CAS each.
        let chunk = n.div_ceil(workers);
        let ranges: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n) as u64;
                let hi = ((w + 1) * chunk).min(n) as u64;
                AtomicU64::new(lo << 32 | hi)
            })
            .collect();
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));

        let work = |me: usize| {
            let mut local: Vec<(usize, T)> = Vec::new();
            loop {
                let i = match pop_front(&ranges[me]) {
                    Some(i) => i,
                    None => match steal(&ranges, me) {
                        Some(i) => i,
                        None => break,
                    },
                };
                local.push((i, f(i)));
            }
            if !local.is_empty() {
                results.lock().expect("pool results poisoned").extend(local);
            }
        };

        std::thread::scope(|s| {
            for me in 1..workers {
                s.spawn(move || work(me));
            }
            work(0);
        });

        let mut pairs = results.into_inner().expect("pool results poisoned");
        debug_assert_eq!(pairs.len(), n);
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, v)| v).collect()
    }

    /// [`Pool::scoped`] with one reusable scratch value per worker: each
    /// worker builds its scratch once with `make` and threads it through
    /// every job it executes, so allocation-heavy jobs (index builds, sort
    /// buffers) amortize their working memory across the batch instead of
    /// re-allocating per job.
    ///
    /// Same index-order and serial-path guarantees as `scoped`: with one
    /// worker (or `n <= 1`) a single scratch is built and the jobs run
    /// inline in index order. Jobs must not rely on *which* scratch they
    /// receive — stealing moves jobs between workers — only that it was
    /// produced by `make` and previously seen only by jobs on the same
    /// worker.
    pub fn scoped_scratch<S, T, M, F>(&self, n: usize, make: M, f: F) -> Vec<T>
    where
        T: Send,
        M: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            let mut scratch = make();
            return (0..n).map(|i| f(&mut scratch, i)).collect();
        }

        let chunk = n.div_ceil(workers);
        let ranges: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n) as u64;
                let hi = ((w + 1) * chunk).min(n) as u64;
                AtomicU64::new(lo << 32 | hi)
            })
            .collect();
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));

        let work = |me: usize| {
            let mut scratch = make();
            let mut local: Vec<(usize, T)> = Vec::new();
            loop {
                let i = match pop_front(&ranges[me]) {
                    Some(i) => i,
                    None => match steal(&ranges, me) {
                        Some(i) => i,
                        None => break,
                    },
                };
                local.push((i, f(&mut scratch, i)));
            }
            if !local.is_empty() {
                results.lock().expect("pool results poisoned").extend(local);
            }
        };

        std::thread::scope(|s| {
            for me in 1..workers {
                s.spawn(move || work(me));
            }
            work(0);
        });

        let mut pairs = results.into_inner().expect("pool results poisoned");
        debug_assert_eq!(pairs.len(), n);
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, v)| v).collect()
    }
}

impl Pool {
    /// [`Pool::scoped`] plus per-worker telemetry: how many jobs each
    /// worker executed, how often it stole (and failed to steal), how many
    /// full idle scans it made before exiting, and its initial chunk size.
    ///
    /// The results are identical to `scoped` — same jobs, same index
    /// order; only the bookkeeping differs. On the serial path (one
    /// worker or `n <= 1`) the telemetry is trivially `tasks == n`,
    /// `chunk == n`, everything else zero.
    pub fn scoped_with_stats<T, F>(&self, n: usize, f: F) -> (Vec<T>, PoolStats)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            let out: Vec<T> = (0..n).map(f).collect();
            let stats = PoolStats {
                workers: vec![WorkerStats {
                    tasks: n as u64,
                    chunk: n as u64,
                    ..WorkerStats::default()
                }],
            };
            return (out, stats);
        }

        let chunk = n.div_ceil(workers);
        let ranges: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n) as u64;
                let hi = ((w + 1) * chunk).min(n) as u64;
                AtomicU64::new(lo << 32 | hi)
            })
            .collect();
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        let stats: Vec<Mutex<WorkerStats>> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n) as u64;
                let hi = ((w + 1) * chunk).min(n) as u64;
                Mutex::new(WorkerStats {
                    chunk: hi - lo,
                    ..WorkerStats::default()
                })
            })
            .collect();

        let work = |me: usize| {
            let mut local: Vec<(usize, T)> = Vec::new();
            let mut ws = WorkerStats::default();
            loop {
                let i = match pop_front(&ranges[me]) {
                    Some(i) => i,
                    None => {
                        let (found, failures) = steal_counted(&ranges, me);
                        ws.steal_failures += failures;
                        match found {
                            Some(i) => {
                                ws.steals += 1;
                                i
                            }
                            None => {
                                ws.idle_spins += 1;
                                break;
                            }
                        }
                    }
                };
                ws.tasks += 1;
                local.push((i, f(i)));
            }
            if !local.is_empty() {
                results.lock().expect("pool results poisoned").extend(local);
            }
            let mut slot = stats[me].lock().expect("pool stats poisoned");
            slot.tasks = ws.tasks;
            slot.steals = ws.steals;
            slot.steal_failures = ws.steal_failures;
            slot.idle_spins = ws.idle_spins;
        };

        std::thread::scope(|s| {
            for me in 1..workers {
                s.spawn(move || work(me));
            }
            work(0);
        });

        let mut pairs = results.into_inner().expect("pool results poisoned");
        debug_assert_eq!(pairs.len(), n);
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let out = pairs.into_iter().map(|(_, v)| v).collect();
        let stats = PoolStats {
            workers: stats
                .into_iter()
                .map(|m| m.into_inner().expect("pool stats poisoned"))
                .collect(),
        };
        (out, stats)
    }
}

impl Default for Pool {
    /// [`Pool::with_default_parallelism`].
    fn default() -> Self {
        Pool::with_default_parallelism()
    }
}

/// Telemetry for one worker of one [`Pool::scoped_with_stats`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub tasks: u64,
    /// Successful steals from another worker's range.
    pub steals: u64,
    /// Victim probes that found an empty range.
    pub steal_failures: u64,
    /// Full scans of every victim that found no work (the worker exits
    /// after one, so this counts exit-path scans).
    pub idle_spins: u64,
    /// Size of the contiguous index chunk initially assigned.
    pub chunk: u64,
}

impl WorkerStats {
    /// Fold another worker's telemetry into this one (all fields sum).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.steal_failures += other.steal_failures;
        self.idle_spins += other.idle_spins;
        self.chunk += other.chunk;
    }
}

/// Per-worker telemetry for a whole batch, in worker-index order.
///
/// Like `RunMetrics`, stats merge deterministically: folding the batches
/// of a sweep in input order always produces the same aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// One entry per worker, index 0 being the caller's thread.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Everything summed across workers.
    pub fn totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.workers {
            t.merge(w);
        }
        t
    }

    /// Fold another batch's telemetry into this one, worker-wise
    /// (extending if `other` ran with more workers).
    pub fn merge(&mut self, other: &PoolStats) {
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerStats::default());
        }
        for (mine, theirs) in self.workers.iter_mut().zip(&other.workers) {
            mine.merge(theirs);
        }
    }
}

/// Per-item wall-clock latencies plus pool telemetry for one profiled
/// batch — what `run_batch_profiled` and friends hand back to the
/// harness, which folds the latencies into an `obs` histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchProfile {
    /// Wall-clock nanoseconds per job, in index order.
    pub latencies_ns: Vec<u64>,
    /// The batch's per-worker telemetry.
    pub stats: PoolStats,
}

impl BatchProfile {
    /// Fold another batch's profile into this one: latencies concatenate
    /// (input order), telemetry merges worker-wise.
    pub fn merge(&mut self, other: &BatchProfile) {
        self.latencies_ns.extend_from_slice(&other.latencies_ns);
        self.stats.merge(&other.stats);
    }
}

/// Take the next index from the front of `range` (owner side).
fn pop_front(range: &AtomicU64) -> Option<usize> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (s, e) = (cur >> 32, cur & 0xffff_ffff);
        if s >= e {
            return None;
        }
        match range.compare_exchange_weak(
            cur,
            (s + 1) << 32 | e,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(s as usize),
            Err(seen) => cur = seen,
        }
    }
}

/// Steal one index from the back of some other worker's range.
fn steal(ranges: &[AtomicU64], me: usize) -> Option<usize> {
    // Start scanning after our own slot so thieves spread out instead of
    // all hammering worker 0's range.
    let k = ranges.len();
    for off in 1..k {
        let victim = &ranges[(me + off) % k];
        let mut cur = victim.load(Ordering::Acquire);
        loop {
            let (s, e) = (cur >> 32, cur & 0xffff_ffff);
            if s >= e {
                break;
            }
            match victim.compare_exchange_weak(
                cur,
                s << 32 | (e - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((e - 1) as usize),
                Err(seen) => cur = seen,
            }
        }
    }
    None
}

/// [`steal`], but also reporting how many victims were probed and found
/// empty before either succeeding or giving up.
fn steal_counted(ranges: &[AtomicU64], me: usize) -> (Option<usize>, u64) {
    let k = ranges.len();
    let mut failures = 0u64;
    for off in 1..k {
        let victim = &ranges[(me + off) % k];
        let mut cur = victim.load(Ordering::Acquire);
        loop {
            let (s, e) = (cur >> 32, cur & 0xffff_ffff);
            if s >= e {
                failures += 1;
                break;
            }
            match victim.compare_exchange_weak(
                cur,
                s << 32 | (e - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return (Some((e - 1) as usize), failures),
                Err(seen) => cur = seen,
            }
        }
    }
    (None, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        for workers in [1, 2, 3, 4, 7] {
            let pool = Pool::new(workers);
            let out = pool.scoped(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        Pool::new(4).scoped(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn unbalanced_workloads_complete_via_stealing() {
        // One chunk holds all the slow jobs; the other workers must steal
        // them or the test takes ~20× longer than the timeout culture here
        // tolerates. Correctness (not timing) is what's asserted.
        let pool = Pool::new(4);
        let out = pool.scoped(64, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        let pool = Pool::new(8);
        assert_eq!(pool.scoped(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.scoped(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert_eq!(Pool::serial().workers(), 1);
        assert!(Pool::default().workers() >= 1);
    }

    #[test]
    fn stats_account_for_every_job() {
        for workers in [1usize, 2, 4, 7] {
            let pool = Pool::new(workers);
            let (out, stats) = pool.scoped_with_stats(100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            let expected_workers = workers.min(100);
            assert_eq!(stats.workers.len(), expected_workers);
            let t = stats.totals();
            assert_eq!(t.tasks, 100, "{workers} workers");
            assert_eq!(t.chunk, 100, "chunks partition the batch");
            if workers == 1 {
                assert_eq!(t.steals, 0);
                assert_eq!(t.idle_spins, 0);
            }
        }
    }

    #[test]
    fn serial_and_parallel_totals_agree() {
        let (_, serial) = Pool::serial().scoped_with_stats(64, |i| i);
        let (_, parallel) = Pool::new(4).scoped_with_stats(64, |i| i);
        assert_eq!(serial.totals().tasks, parallel.totals().tasks);
        assert_eq!(serial.totals().chunk, parallel.totals().chunk);
    }

    #[test]
    fn pool_stats_merge_worker_wise() {
        let (_, mut a) = Pool::new(2).scoped_with_stats(10, |i| i);
        let (_, b) = Pool::new(4).scoped_with_stats(20, |i| i);
        let total_before = a.totals().tasks + b.totals().tasks;
        a.merge(&b);
        assert_eq!(a.workers.len(), 4);
        assert_eq!(a.totals().tasks, total_before);
    }

    #[test]
    fn batch_profiles_concatenate() {
        let mut p = BatchProfile {
            latencies_ns: vec![5, 6],
            stats: PoolStats::default(),
        };
        let q = BatchProfile {
            latencies_ns: vec![7],
            stats: PoolStats {
                workers: vec![WorkerStats {
                    tasks: 1,
                    ..WorkerStats::default()
                }],
            },
        };
        p.merge(&q);
        assert_eq!(p.latencies_ns, vec![5, 6, 7]);
        assert_eq!(p.stats.totals().tasks, 1);
    }

    #[test]
    fn scratch_results_match_scoped() {
        for workers in [1usize, 2, 4, 7] {
            let pool = Pool::new(workers);
            // Scratch is a reusable buffer; the job output must not depend
            // on which worker's buffer served it.
            let out = pool.scoped_scratch(100, Vec::<usize>::new, |buf, i| {
                buf.clear();
                buf.extend(0..=i);
                buf.iter().sum::<usize>()
            });
            let want: Vec<usize> = (0..100).map(|i| i * (i + 1) / 2).collect();
            assert_eq!(out, want, "{workers} workers");
        }
    }

    #[test]
    fn scratch_is_built_once_per_worker_on_the_serial_path() {
        let builds = AtomicUsize::new(0);
        let out = Pool::serial().scoped_scratch(
            10,
            || {
                builds.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |seen, i| {
                *seen += 1;
                (*seen, i)
            },
        );
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        // One scratch sees every job, in index order.
        assert_eq!(out, (0..10).map(|i| (i as u64 + 1, i)).collect::<Vec<_>>());
        // Zero jobs: no panic, nothing runs.
        let empty = Pool::new(4).scoped_scratch(0, || (), |_, i| i);
        assert_eq!(empty, Vec::<usize>::new());
    }

    #[test]
    fn jobs_borrow_caller_state() {
        let data: Vec<u64> = (0..1000).collect();
        let sums = Pool::new(3).scoped(10, |i| data[i * 100..(i + 1) * 100].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
