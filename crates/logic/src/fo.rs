//! First-order logic over the tree vocabulary
//! `τ_{Σ,A} = {E, <, ≺, (O_σ)_σ, (val_a)_a}` (Section 2.2 of the paper).
//!
//! Atomic formulas are `E(x,y)` (y is a child of x), `x < y` (sibling
//! order), `x ≺ y` (y is a strict descendant of x), `O_σ(x)`, `x = y`,
//! `val_a(x) = val_b(y)`, and `val_a(x) = d`. On top of these, the
//! `FO(∃*)` fragment of Section 2.3 additionally allows the FO-definable
//! (but not `FO(∃*)`-definable) unary predicates `root`, `leaf`, `first`,
//! `last` and the binary `succ`; we expose them as primitive atoms so both
//! fragments share one AST.
//!
//! Formulas are plain ASTs built either with the [`build`] helpers or the
//! parser in [`crate::parse`]; evaluation lives in [`crate::eval`].

use std::fmt;

use twq_tree::{AttrId, Label, Value, Vocab};

/// A first-order variable. Formulas address variables by dense index;
/// display renders `x0, x1, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u16);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An atomic formula over the tree vocabulary.
///
/// `Ord` is the canonical atom order used by the `twq-rw` normalizer to
/// sort and deduplicate conjuncts/disjuncts; it is the derived structural
/// order and carries no semantic meaning.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TreeAtom {
    /// `E(x, y)`: `y` is a child of `x`.
    Edge(Var, Var),
    /// `x < y`: `x` and `y` are siblings and `x` comes before `y`.
    SibLess(Var, Var),
    /// `x ≺ y`: `y` is a strict descendant of `x`.
    Desc(Var, Var),
    /// `O_σ(x)`: the label of `x` is `σ` (delimiter labels allowed, since
    /// automata evaluate formulas on `delim(t)`).
    Lab(Label, Var),
    /// `x = y`.
    Eq(Var, Var),
    /// `val_a(x) = val_b(y)`.
    ValEq(AttrId, Var, AttrId, Var),
    /// `val_a(x) = d`.
    ValConst(AttrId, Var, Value),
    /// `root(x)` — extra predicate of the `FO(∃*)` layer (Section 2.3).
    Root(Var),
    /// `leaf(x)`.
    Leaf(Var),
    /// `first(x)` — `x` is a first child.
    First(Var),
    /// `last(x)` — `x` is a last child.
    Last(Var),
    /// `succ(x, y)` — `y` is the immediate right sibling of `x`.
    Succ(Var, Var),
}

impl TreeAtom {
    /// Variables mentioned by this atom.
    pub fn vars(&self) -> Vec<Var> {
        match *self {
            TreeAtom::Edge(x, y)
            | TreeAtom::SibLess(x, y)
            | TreeAtom::Desc(x, y)
            | TreeAtom::Eq(x, y)
            | TreeAtom::ValEq(_, x, _, y)
            | TreeAtom::Succ(x, y) => vec![x, y],
            TreeAtom::Lab(_, x)
            | TreeAtom::ValConst(_, x, _)
            | TreeAtom::Root(x)
            | TreeAtom::Leaf(x)
            | TreeAtom::First(x)
            | TreeAtom::Last(x) => vec![x],
        }
    }

    /// Whether this atom is one of the extra `FO(∃*)` predicates
    /// (`root/leaf/first/last/succ`) that are FO-definable but not atomic
    /// in the base vocabulary.
    pub fn is_extra(&self) -> bool {
        matches!(
            self,
            TreeAtom::Root(_)
                | TreeAtom::Leaf(_)
                | TreeAtom::First(_)
                | TreeAtom::Last(_)
                | TreeAtom::Succ(_, _)
        )
    }

    /// Render with the given vocabulary.
    pub fn display(&self, vocab: &Vocab) -> String {
        match self {
            TreeAtom::Edge(x, y) => format!("E({x},{y})"),
            TreeAtom::SibLess(x, y) => format!("{x} < {y}"),
            TreeAtom::Desc(x, y) => format!("{x} ≺ {y}"),
            TreeAtom::Lab(l, x) => format!("O_{}({x})", l.display(vocab)),
            TreeAtom::Eq(x, y) => format!("{x} = {y}"),
            TreeAtom::ValEq(a, x, b, y) => format!(
                "val_{}({x}) = val_{}({y})",
                vocab.attr_name(*a),
                vocab.attr_name(*b)
            ),
            TreeAtom::ValConst(a, x, d) => format!(
                "val_{}({x}) = {}",
                vocab.attr_name(*a),
                vocab.value_display(*d)
            ),
            TreeAtom::Root(x) => format!("root({x})"),
            TreeAtom::Leaf(x) => format!("leaf({x})"),
            TreeAtom::First(x) => format!("first({x})"),
            TreeAtom::Last(x) => format!("last({x})"),
            TreeAtom::Succ(x, y) => format!("succ({x},{y})"),
        }
    }
}

/// A first-order formula over the tree vocabulary.
///
/// `Ord` is the canonical formula order used by the `twq-rw` normalizer
/// (see `TreeAtom`); it carries no semantic meaning.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// An atom.
    Atom(TreeAtom),
    /// Negation.
    Not(Box<Formula>),
    /// n-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// n-ary disjunction (empty = false).
    Or(Vec<Formula>),
    /// Existential quantification over `Dom(t)`.
    Exists(Var, Box<Formula>),
    /// Universal quantification over `Dom(t)`.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// Free variables, sorted and deduplicated.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut free = Vec::new();
        self.collect_free(&mut Vec::new(), &mut free);
        free.sort_unstable();
        free.dedup();
        free
    }

    fn collect_free(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                for v in a.vars() {
                    if !bound.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// The largest variable index mentioned anywhere (bound or free), if
    /// any. Used to size assignment vectors.
    pub fn max_var(&self) -> Option<Var> {
        match self {
            Formula::True | Formula::False => None,
            Formula::Atom(a) => a.vars().into_iter().max(),
            Formula::Not(f) => f.max_var(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().filter_map(Formula::max_var).max(),
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                Some(f.max_var().map_or(*v, |m| m.max(*v)))
            }
        }
    }

    /// Number of syntactic nodes — the paper's `|ξ|` contribution to the
    /// size of an automaton (Definition 3.1).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Whether the formula is quantifier-free.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_quantifier_free),
            Formula::Exists(_, _) | Formula::Forall(_, _) => false,
        }
    }

    /// Whether the formula uses any of the extra `root/leaf/first/last/succ`
    /// predicates.
    pub fn uses_extra_predicates(&self) -> bool {
        match self {
            Formula::True | Formula::False => false,
            Formula::Atom(a) => a.is_extra(),
            Formula::Not(f) => f.uses_extra_predicates(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(Formula::uses_extra_predicates),
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.uses_extra_predicates(),
        }
    }

    /// Render with the given vocabulary.
    pub fn display(&self, vocab: &Vocab) -> String {
        match self {
            Formula::True => "true".to_owned(),
            Formula::False => "false".to_owned(),
            Formula::Atom(a) => a.display(vocab),
            Formula::Not(f) => format!("¬({})", f.display(vocab)),
            Formula::And(fs) => {
                if fs.is_empty() {
                    "true".to_owned()
                } else {
                    let parts: Vec<String> = fs
                        .iter()
                        .map(|f| format!("({})", f.display(vocab)))
                        .collect();
                    parts.join(" ∧ ")
                }
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    "false".to_owned()
                } else {
                    let parts: Vec<String> = fs
                        .iter()
                        .map(|f| format!("({})", f.display(vocab)))
                        .collect();
                    parts.join(" ∨ ")
                }
            }
            Formula::Exists(v, f) => format!("∃{v} ({})", f.display(vocab)),
            Formula::Forall(v, f) => format!("∀{v} ({})", f.display(vocab)),
        }
    }
}

/// Ergonomic constructors for [`Formula`].
pub mod build {
    use super::*;

    /// Variable `xN`.
    pub fn var(n: u16) -> Var {
        Var(n)
    }

    /// `E(x, y)`.
    pub fn edge(x: Var, y: Var) -> Formula {
        Formula::Atom(TreeAtom::Edge(x, y))
    }

    /// `x < y` (sibling order).
    pub fn sib_less(x: Var, y: Var) -> Formula {
        Formula::Atom(TreeAtom::SibLess(x, y))
    }

    /// `x ≺ y` (strict descendant).
    pub fn desc(x: Var, y: Var) -> Formula {
        Formula::Atom(TreeAtom::Desc(x, y))
    }

    /// `O_σ(x)` for an element symbol.
    pub fn lab(l: Label, x: Var) -> Formula {
        Formula::Atom(TreeAtom::Lab(l, x))
    }

    /// `x = y`.
    pub fn eq(x: Var, y: Var) -> Formula {
        Formula::Atom(TreeAtom::Eq(x, y))
    }

    /// `val_a(x) = val_b(y)`.
    pub fn val_eq(a: AttrId, x: Var, b: AttrId, y: Var) -> Formula {
        Formula::Atom(TreeAtom::ValEq(a, x, b, y))
    }

    /// `val_a(x) = d`.
    pub fn val_const(a: AttrId, x: Var, d: Value) -> Formula {
        Formula::Atom(TreeAtom::ValConst(a, x, d))
    }

    /// `root(x)`.
    pub fn root(x: Var) -> Formula {
        Formula::Atom(TreeAtom::Root(x))
    }

    /// `leaf(x)`.
    pub fn leaf(x: Var) -> Formula {
        Formula::Atom(TreeAtom::Leaf(x))
    }

    /// `first(x)`.
    pub fn first(x: Var) -> Formula {
        Formula::Atom(TreeAtom::First(x))
    }

    /// `last(x)`.
    pub fn last(x: Var) -> Formula {
        Formula::Atom(TreeAtom::Last(x))
    }

    /// `succ(x, y)`.
    pub fn succ(x: Var, y: Var) -> Formula {
        Formula::Atom(TreeAtom::Succ(x, y))
    }

    /// Negation.
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::And(fs.into_iter().collect())
    }

    /// Disjunction.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::Or(fs.into_iter().collect())
    }

    /// Implication `a → b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        or([not(a), b])
    }

    /// `∃x φ`.
    pub fn exists(x: Var, f: Formula) -> Formula {
        Formula::Exists(x, Box::new(f))
    }

    /// `∃x₁…∃xₙ φ`.
    pub fn exists_many(xs: impl IntoIterator<Item = Var>, f: Formula) -> Formula {
        let xs: Vec<Var> = xs.into_iter().collect();
        xs.into_iter().rev().fold(f, |acc, x| exists(x, acc))
    }

    /// `∀x φ`.
    pub fn forall(x: Var, f: Formula) -> Formula {
        Formula::Forall(x, Box::new(f))
    }

    /// `∀x₁…∀xₙ φ`.
    pub fn forall_many(xs: impl IntoIterator<Item = Var>, f: Formula) -> Formula {
        let xs: Vec<Var> = xs.into_iter().collect();
        xs.into_iter().rev().fold(f, |acc, x| forall(x, acc))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        let x = var(0);
        let y = var(1);
        let f = exists(y, and([edge(x, y), leaf(y)]));
        assert_eq!(f.free_vars(), vec![x]);
        let g = and([f.clone(), eq(y, y)]);
        assert_eq!(g.free_vars(), vec![x, y]);
    }

    #[test]
    fn max_var_covers_bound() {
        let f = exists(var(5), edge(var(0), var(5)));
        assert_eq!(f.max_var(), Some(var(5)));
        assert_eq!(Formula::True.max_var(), None);
    }

    #[test]
    fn size_counts_nodes() {
        let f = exists(var(0), and([Formula::True, not(leaf(var(0)))]));
        // exists + and + true + not + atom = 5
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn quantifier_free_detection() {
        let qf = and([leaf(var(0)), not(root(var(0)))]);
        assert!(qf.is_quantifier_free());
        assert!(!exists(var(0), qf.clone()).is_quantifier_free());
        assert!(!forall(var(1), qf).is_quantifier_free());
    }

    #[test]
    fn extra_predicate_detection() {
        assert!(leaf(var(0)).uses_extra_predicates());
        assert!(!edge(var(0), var(1)).uses_extra_predicates());
        assert!(exists(var(0), succ(var(0), var(1))).uses_extra_predicates());
    }

    #[test]
    fn display_is_readable() {
        let mut vocab = Vocab::new();
        let a = vocab.sym("a");
        let at = vocab.attr("v");
        let d = vocab.val_int(3);
        let f = exists(
            var(1),
            and([
                edge(var(0), var(1)),
                lab(Label::Sym(a), var(1)),
                val_const(at, var(1), d),
            ]),
        );
        let s = f.display(&vocab);
        assert!(s.contains("∃x1"), "{s}");
        assert!(s.contains("O_a(x1)"), "{s}");
        assert!(s.contains("val_v(x1) = 3"), "{s}");
    }

    #[test]
    fn exists_many_order() {
        let f = exists_many([var(0), var(1)], eq(var(0), var(1)));
        match f {
            Formula::Exists(v, inner) => {
                assert_eq!(v, var(0));
                assert!(matches!(*inner, Formula::Exists(w, _) if w == var(1)));
            }
            _ => panic!("expected exists"),
        }
    }
}
