//! Model checking FO formulas on attributed trees.
//!
//! The paper only ever evaluates *fixed* formulas on *growing* trees, so the
//! evaluator is the textbook recursive one: quantifiers loop over `Dom(t)`,
//! giving `O(|t|^q)` for `q` nested quantifiers. Structural atoms are O(1)
//! thanks to the arena links, except `≺` and sibling `<` which walk
//! parent/sibling chains.
//!
//! That `O(|t|^q)` is exactly why every entry point here returns
//! `Result<_, TwqError>` and has a `*_guarded` variant: a hostile sentence
//! with a handful of nested quantifiers is a denial-of-service on any
//! non-trivial tree. Guarded evaluation charges one fuel unit per quantifier
//! binding and per atom, and tracks quantifier nesting as
//! [`DepthKind::Quantifier`].

use twq_guard::{DepthKind, Guard, NullGuard, TwqError};
use twq_obs::{Collector, FoEval, NullCollector, Trace, TraceCollector, Verdict};
use twq_tree::{NodeId, NodeSet, Tree};

use crate::fo::{Formula, TreeAtom, Var};

/// A partial assignment of tree nodes to variables, indexed by [`Var`].
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    slots: Vec<Option<NodeId>>,
}

impl Assignment {
    /// An empty assignment able to hold variables up to `max_var`.
    pub fn with_capacity(max_var: Option<Var>) -> Self {
        Assignment {
            slots: vec![None; max_var.map_or(0, |v| v.0 as usize + 1)],
        }
    }

    /// The node bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: Var) -> Option<NodeId> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    /// Bind `v` to `u` (growing the table if needed).
    pub fn set(&mut self, v: Var, u: NodeId) {
        let i = v.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(u);
    }

    /// Remove the binding of `v`.
    pub fn unset(&mut self, v: Var) {
        if let Some(s) = self.slots.get_mut(v.0 as usize) {
            *s = None;
        }
    }
}

/// Evaluate an atom under a total-enough assignment.
///
/// # Errors
/// Returns [`TwqError::Invalid`] if a variable mentioned by the atom is
/// unbound — callers must bind all free variables first.
pub fn eval_atom(tree: &Tree, atom: &TreeAtom, asg: &Assignment) -> Result<bool, TwqError> {
    let node = |v: Var| {
        asg.get(v)
            .ok_or_else(|| TwqError::invalid("logic::eval_atom", format!("unbound variable {v}")))
    };
    Ok(match *atom {
        TreeAtom::Edge(x, y) => tree.parent(node(y)?) == Some(node(x)?),
        TreeAtom::SibLess(x, y) => {
            let (u, v) = (node(x)?, node(y)?);
            if u == v || tree.parent(u) != tree.parent(v) {
                return Ok(false);
            }
            // Walk right from u until v or the end.
            let mut cur = tree.next_sibling(u);
            let mut hit = false;
            while let Some(s) = cur {
                if s == v {
                    hit = true;
                    break;
                }
                cur = tree.next_sibling(s);
            }
            hit
        }
        TreeAtom::Desc(x, y) => tree.is_strict_ancestor(node(x)?, node(y)?),
        TreeAtom::Lab(l, x) => tree.label(node(x)?) == l,
        TreeAtom::Eq(x, y) => node(x)? == node(y)?,
        TreeAtom::ValEq(a, x, b, y) => tree.attr(node(x)?, a) == tree.attr(node(y)?, b),
        TreeAtom::ValConst(a, x, d) => tree.attr(node(x)?, a) == d,
        TreeAtom::Root(x) => tree.is_root(node(x)?),
        TreeAtom::Leaf(x) => tree.is_leaf(node(x)?),
        TreeAtom::First(x) => tree.is_first(node(x)?),
        TreeAtom::Last(x) => tree.is_last(node(x)?),
        TreeAtom::Succ(x, y) => tree.next_sibling(node(x)?) == Some(node(y)?),
    })
}

/// Evaluate a formula under an assignment binding (at least) its free
/// variables.
///
/// # Errors
/// [`TwqError::Invalid`] on an unbound variable.
pub fn eval(tree: &Tree, formula: &Formula, asg: &mut Assignment) -> Result<bool, TwqError> {
    eval_with(tree, formula, asg, &mut NullCollector)
}

/// [`eval`] with instrumentation: reports one [`FoEval::Atom`] per atom
/// evaluation, so a metrics collector sees the model checker's true cost
/// (which quantifier nesting multiplies).
pub fn eval_with<C: Collector>(
    tree: &Tree,
    formula: &Formula,
    asg: &mut Assignment,
    c: &mut C,
) -> Result<bool, TwqError> {
    eval_inner(tree, formula, asg, c, &mut NullGuard)
}

/// [`eval`] under a resource [`Guard`]: one fuel unit per atom and per
/// quantifier binding, nesting tracked as [`DepthKind::Quantifier`].
pub fn eval_guarded<G: Guard>(
    tree: &Tree,
    formula: &Formula,
    asg: &mut Assignment,
    guard: &mut G,
) -> Result<bool, TwqError> {
    eval_inner(tree, formula, asg, &mut NullCollector, guard)
}

fn eval_inner<C: Collector, G: Guard>(
    tree: &Tree,
    formula: &Formula,
    asg: &mut Assignment,
    c: &mut C,
    g: &mut G,
) -> Result<bool, TwqError> {
    match formula {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Atom(a) => {
            c.fo_eval(FoEval::Atom);
            if G::ENABLED {
                g.tick()?;
            }
            eval_atom(tree, a, asg)
        }
        Formula::Not(f) => Ok(!eval_inner(tree, f, asg, c, g)?),
        Formula::And(fs) => {
            for f in fs {
                if !eval_inner(tree, f, asg, c, g)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for f in fs {
                if eval_inner(tree, f, asg, c, g)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Exists(v, f) => {
            if G::ENABLED {
                g.enter(DepthKind::Quantifier)?;
            }
            c.quant_enter(true, u32::from(v.0));
            let saved = asg.get(*v);
            let mut out = Ok(false);
            let mut witness = None;
            for u in tree.node_ids() {
                if G::ENABLED {
                    if let Err(e) = g.tick() {
                        out = Err(e.into());
                        break;
                    }
                }
                asg.set(*v, u);
                match eval_inner(tree, f, asg, c, g) {
                    Ok(true) => {
                        // `u` is the witness valuation that makes ∃v true.
                        witness = Some(u64::from(u.0));
                        out = Ok(true);
                        break;
                    }
                    Ok(false) => {}
                    Err(e) => {
                        out = Err(e);
                        break;
                    }
                }
            }
            restore(asg, *v, saved);
            if G::ENABLED {
                g.exit(DepthKind::Quantifier);
            }
            c.quant_exit(matches!(out, Ok(true)), witness);
            out
        }
        Formula::Forall(v, f) => {
            if G::ENABLED {
                g.enter(DepthKind::Quantifier)?;
            }
            c.quant_enter(false, u32::from(v.0));
            let saved = asg.get(*v);
            let mut out = Ok(true);
            let mut witness = None;
            for u in tree.node_ids() {
                if G::ENABLED {
                    if let Err(e) = g.tick() {
                        out = Err(e.into());
                        break;
                    }
                }
                asg.set(*v, u);
                match eval_inner(tree, f, asg, c, g) {
                    Ok(false) => {
                        // `u` is the counterexample that falsifies ∀v.
                        witness = Some(u64::from(u.0));
                        out = Ok(false);
                        break;
                    }
                    Ok(true) => {}
                    Err(e) => {
                        out = Err(e);
                        break;
                    }
                }
            }
            restore(asg, *v, saved);
            if G::ENABLED {
                g.exit(DepthKind::Quantifier);
            }
            c.quant_exit(matches!(out, Ok(true)), witness);
            out
        }
    }
}

/// Three-valued evaluation under a *partial* assignment: `Some(b)` when the
/// formula's value is already determined, `None` when it still depends on
/// unbound variables. Used by the backtracking `FO(∃*)` evaluator to prune:
/// a partial assignment that already falsifies the matrix cannot be
/// extended to a witness, and one that already satisfies it needs no
/// extension at all.
pub fn eval_partial(
    tree: &Tree,
    formula: &Formula,
    asg: &Assignment,
) -> Result<Option<bool>, TwqError> {
    eval_partial_with(tree, formula, asg, &mut NullCollector)
}

/// [`eval_partial`] with instrumentation (one [`FoEval::Atom`] per
/// decided atom).
pub fn eval_partial_with<C: Collector>(
    tree: &Tree,
    formula: &Formula,
    asg: &Assignment,
    c: &mut C,
) -> Result<Option<bool>, TwqError> {
    eval_partial_inner(tree, formula, asg, c, &mut NullGuard)
}

fn eval_partial_inner<C: Collector, G: Guard>(
    tree: &Tree,
    formula: &Formula,
    asg: &Assignment,
    c: &mut C,
    g: &mut G,
) -> Result<Option<bool>, TwqError> {
    Ok(match formula {
        Formula::True => Some(true),
        Formula::False => Some(false),
        Formula::Atom(a) => {
            if a.vars().iter().all(|&v| asg.get(v).is_some()) {
                c.fo_eval(FoEval::Atom);
                if G::ENABLED {
                    g.tick()?;
                }
                Some(eval_atom(tree, a, asg)?)
            } else {
                None
            }
        }
        Formula::Not(f) => eval_partial_inner(tree, f, asg, c, g)?.map(|b| !b),
        Formula::And(fs) => {
            let mut all_true = true;
            let mut out = None;
            for f in fs {
                match eval_partial_inner(tree, f, asg, c, g)? {
                    Some(false) => {
                        out = Some(Some(false));
                        break;
                    }
                    Some(true) => {}
                    None => all_true = false,
                }
            }
            match out {
                Some(decided) => decided,
                None if all_true => Some(true),
                None => None,
            }
        }
        Formula::Or(fs) => {
            let mut all_false = true;
            let mut out = None;
            for f in fs {
                match eval_partial_inner(tree, f, asg, c, g)? {
                    Some(true) => {
                        out = Some(Some(true));
                        break;
                    }
                    Some(false) => {}
                    None => all_false = false,
                }
            }
            match out {
                Some(decided) => decided,
                None if all_false => Some(false),
                None => None,
            }
        }
        // Quantifiers are opaque to partial evaluation.
        Formula::Exists(_, _) | Formula::Forall(_, _) => None,
    })
}

/// Backtracking satisfiability of a quantifier-free matrix over the given
/// existential variables, with three-valued pruning after each binding.
/// Exponential only in the worst case; on conjunctive matrices (the XPath
/// compilation output) the pruning makes it effectively output-sensitive.
///
/// # Errors
/// [`TwqError::Invalid`] when the matrix still contains quantifiers (so its
/// value is undetermined with every variable bound) or mentions an unbound
/// variable.
pub fn sat_exists(
    tree: &Tree,
    matrix: &Formula,
    vars: &[Var],
    asg: &mut Assignment,
) -> Result<bool, TwqError> {
    sat_exists_with(tree, matrix, vars, asg, &mut NullCollector)
}

/// [`sat_exists`] with instrumentation (atoms counted via the pruning
/// passes).
pub fn sat_exists_with<C: Collector>(
    tree: &Tree,
    matrix: &Formula,
    vars: &[Var],
    asg: &mut Assignment,
    c: &mut C,
) -> Result<bool, TwqError> {
    sat_exists_inner(tree, matrix, vars, asg, c, &mut NullGuard)
}

pub(crate) fn sat_exists_inner<C: Collector, G: Guard>(
    tree: &Tree,
    matrix: &Formula,
    vars: &[Var],
    asg: &mut Assignment,
    c: &mut C,
    g: &mut G,
) -> Result<bool, TwqError> {
    if let Some(b) = eval_partial_inner(tree, matrix, asg, c, g)? {
        return Ok(b);
    }
    let Some((&v, rest)) = vars.split_first() else {
        // All variables bound but the value is undetermined — only possible
        // if the matrix contains quantifiers, which callers exclude.
        return Err(TwqError::invalid(
            "logic::sat_exists",
            "matrix undetermined with all variables bound (quantifier inside matrix?)",
        ));
    };
    if G::ENABLED {
        g.enter(DepthKind::Quantifier)?;
    }
    c.quant_enter(true, u32::from(v.0));
    let mut out = Ok(false);
    let mut witness = None;
    for u in tree.node_ids() {
        if G::ENABLED {
            if let Err(e) = g.tick() {
                out = Err(e.into());
                break;
            }
        }
        asg.set(v, u);
        match sat_exists_inner(tree, matrix, rest, asg, c, g) {
            Ok(true) => {
                witness = Some(u64::from(u.0));
                out = Ok(true);
                break;
            }
            Ok(false) => {}
            Err(e) => {
                out = Err(e);
                break;
            }
        }
    }
    asg.unset(v);
    if G::ENABLED {
        g.exit(DepthKind::Quantifier);
    }
    c.quant_exit(matches!(out, Ok(true)), witness);
    out
}

fn restore(asg: &mut Assignment, v: Var, saved: Option<NodeId>) {
    match saved {
        Some(u) => asg.set(v, u),
        None => asg.unset(v),
    }
}

/// Evaluate a sentence (formula with no free variables).
///
/// # Errors
/// [`TwqError::Invalid`] if the formula has free variables.
pub fn eval_sentence(tree: &Tree, formula: &Formula) -> Result<bool, TwqError> {
    eval_sentence_with(tree, formula, &mut NullCollector)
}

/// [`eval_sentence`] with instrumentation (one [`FoEval::Sentence`] per
/// call, plus the atoms the recursion touches).
pub fn eval_sentence_with<C: Collector>(
    tree: &Tree,
    formula: &Formula,
    c: &mut C,
) -> Result<bool, TwqError> {
    eval_sentence_inner(tree, formula, c, &mut NullGuard)
}

/// [`eval_sentence`] under a resource [`Guard`]: one fuel unit per atom and
/// per quantifier binding, quantifier nesting tracked as
/// [`DepthKind::Quantifier`]. This is the entry point that makes the
/// `O(|t|^q)` evaluator safe to expose to untrusted sentences.
pub fn eval_sentence_guarded<G: Guard>(
    tree: &Tree,
    formula: &Formula,
    guard: &mut G,
) -> Result<bool, TwqError> {
    eval_sentence_inner(tree, formula, &mut NullCollector, guard)
}

fn eval_sentence_inner<C: Collector, G: Guard>(
    tree: &Tree,
    formula: &Formula,
    c: &mut C,
    g: &mut G,
) -> Result<bool, TwqError> {
    let free = formula.free_vars();
    if !free.is_empty() {
        return Err(TwqError::invalid(
            "logic::eval_sentence",
            format!("requires a sentence; free vars: {free:?}"),
        ));
    }
    c.fo_eval(FoEval::Sentence);
    let mut asg = Assignment::with_capacity(formula.max_var());
    eval_inner(tree, formula, &mut asg, c, g)
}

/// All nodes `v` such that `t ⊨ φ(u, v)` for a binary formula `φ(x, y)` —
/// the node-selection primitive behind `atp(φ(x,y), q)` (Section 3).
///
/// Results are a [`NodeSet`], whose iteration is in arena order — the same
/// order the former `Vec` return carried.
///
/// # Errors
/// [`TwqError::Invalid`] if the formula mentions variables other than `x`,
/// `y`, and its own quantified variables.
pub fn select(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    u: NodeId,
    y: Var,
) -> Result<NodeSet, TwqError> {
    select_with(tree, formula, x, u, y, &mut NullCollector)
}

/// [`select`] with instrumentation (one [`FoEval::Select`] per call).
pub fn select_with<C: Collector>(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    u: NodeId,
    y: Var,
    c: &mut C,
) -> Result<NodeSet, TwqError> {
    select_inner(tree, formula, x, u, y, c, &mut NullGuard)
}

/// [`select`] under a resource [`Guard`].
pub fn select_guarded<G: Guard>(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    u: NodeId,
    y: Var,
    guard: &mut G,
) -> Result<NodeSet, TwqError> {
    select_inner(tree, formula, x, u, y, &mut NullCollector, guard)
}

fn select_inner<C: Collector, G: Guard>(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    u: NodeId,
    y: Var,
    c: &mut C,
    g: &mut G,
) -> Result<NodeSet, TwqError> {
    c.fo_eval(FoEval::Select);
    let mut asg = Assignment::with_capacity(
        formula
            .max_var()
            .map_or(Some(x.max(y)), |m| Some(m.max(x).max(y))),
    );
    asg.set(x, u);
    let mut out = NodeSet::with_capacity(tree.len());
    let mut ids: Vec<u64> = Vec::new();
    for v in tree.node_ids() {
        if G::ENABLED {
            g.tick()?;
        }
        asg.set(y, v);
        if eval_inner(tree, formula, &mut asg, c, g)? {
            out.insert(v);
            if C::ENABLED {
                ids.push(u64::from(v.0));
            }
        }
    }
    if C::ENABLED {
        c.selected(&ids);
    }
    Ok(out)
}

/// [`eval_sentence`] while recording a causal [`Trace`]: one `Quant` span
/// per quantifier evaluation, carrying the witness valuation that decided
/// it (the node making an `∃` true, or the counterexample falsifying a
/// `∀`). The root span's verdict is the sentence's truth value.
pub fn trace_sentence(tree: &Tree, formula: &Formula) -> (Result<bool, TwqError>, Trace) {
    let mut c = TraceCollector::new();
    let verdict = eval_sentence_with(tree, formula, &mut c);
    let mut t = c.finish("eval_sentence");
    if let Ok(b) = verdict {
        t.root.verdict = Some(Verdict::Bool(b));
    }
    (verdict, t)
}

/// [`select`] while recording a causal [`Trace`]: the root span's
/// frontier is the selected node set and its children are the per-node
/// quantifier evaluations. The root verdict is whether anything was
/// selected.
pub fn trace_select(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    u: NodeId,
    y: Var,
) -> (Result<NodeSet, TwqError>, Trace) {
    let mut c = TraceCollector::new();
    let out = select_with(tree, formula, x, u, y, &mut c);
    let mut t = c.finish("select");
    if let Ok(s) = &out {
        t.root.verdict = Some(Verdict::Bool(!s.is_empty()));
    }
    (out, t)
}

/// All pairs `(u, v)` with `t ⊨ φ(u, v)`.
///
/// # Errors
/// As for [`select`].
pub fn select_pairs(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    y: Var,
) -> Result<Vec<(NodeId, NodeId)>, TwqError> {
    let mut out = Vec::new();
    for u in tree.node_ids() {
        for v in select(tree, formula, x, u, y)? {
            out.push((u, v));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::build::*;
    use twq_tree::{parse_tree, Label, Vocab};

    fn sample() -> (Vocab, Tree) {
        let mut v = Vocab::new();
        let t = parse_tree("a[k=1](b[k=2],c[k=1](d[k=2],e[k=1]))", &mut v).unwrap();
        (v, t)
    }

    #[test]
    fn sentence_every_leaf_has_k() {
        let (mut v, t) = sample();
        let k = v.attr("k");
        let two = v.val_int(2);
        // ∀x (leaf(x) → val_k(x) = 2) — false: e is a leaf with k=1.
        let f = forall(var(0), implies(leaf(var(0)), val_const(k, var(0), two)));
        assert!(!eval_sentence(&t, &f).unwrap());
        // ∃x (leaf(x) ∧ val_k(x) = 2) — true: b and d.
        let g = exists(var(0), and([leaf(var(0)), val_const(k, var(0), two)]));
        assert!(eval_sentence(&t, &g).unwrap());
    }

    #[test]
    fn edge_and_desc_semantics() {
        let (_, t) = sample();
        let r = t.root();
        let c = t.node_at_path(&[2]).unwrap();
        let d = t.node_at_path(&[2, 1]).unwrap();
        let mut asg = Assignment::with_capacity(Some(var(1)));
        asg.set(var(0), r);
        asg.set(var(1), c);
        assert!(eval_atom(&t, &TreeAtom::Edge(var(0), var(1)), &asg).unwrap());
        asg.set(var(1), d);
        assert!(!eval_atom(&t, &TreeAtom::Edge(var(0), var(1)), &asg).unwrap());
        assert!(eval_atom(&t, &TreeAtom::Desc(var(0), var(1)), &asg).unwrap());
        // Desc is irreflexive.
        asg.set(var(1), r);
        assert!(!eval_atom(&t, &TreeAtom::Desc(var(0), var(1)), &asg).unwrap());
    }

    #[test]
    fn sibling_order_semantics() {
        let (_, t) = sample();
        let b = t.node_at_path(&[1]).unwrap();
        let c = t.node_at_path(&[2]).unwrap();
        let d = t.node_at_path(&[2, 1]).unwrap();
        let mut asg = Assignment::default();
        asg.set(var(0), b);
        asg.set(var(1), c);
        assert!(eval_atom(&t, &TreeAtom::SibLess(var(0), var(1)), &asg).unwrap());
        // Not symmetric, not reflexive, only among siblings.
        asg.set(var(0), c);
        asg.set(var(1), b);
        assert!(!eval_atom(&t, &TreeAtom::SibLess(var(0), var(1)), &asg).unwrap());
        asg.set(var(1), c);
        assert!(!eval_atom(&t, &TreeAtom::SibLess(var(0), var(1)), &asg).unwrap());
        asg.set(var(0), b);
        asg.set(var(1), d);
        assert!(!eval_atom(&t, &TreeAtom::SibLess(var(0), var(1)), &asg).unwrap());
        // succ agrees with immediate siblings.
        asg.set(var(0), b);
        asg.set(var(1), c);
        assert!(eval_atom(&t, &TreeAtom::Succ(var(0), var(1)), &asg).unwrap());
    }

    #[test]
    fn extra_predicates() {
        let (_, t) = sample();
        let r = t.root();
        let b = t.node_at_path(&[1]).unwrap();
        let c = t.node_at_path(&[2]).unwrap();
        let mut asg = Assignment::default();
        asg.set(var(0), r);
        assert!(eval_atom(&t, &TreeAtom::Root(var(0)), &asg).unwrap());
        assert!(!eval_atom(&t, &TreeAtom::Leaf(var(0)), &asg).unwrap());
        assert!(eval_atom(&t, &TreeAtom::First(var(0)), &asg).unwrap());
        assert!(eval_atom(&t, &TreeAtom::Last(var(0)), &asg).unwrap());
        asg.set(var(0), b);
        assert!(eval_atom(&t, &TreeAtom::First(var(0)), &asg).unwrap());
        assert!(!eval_atom(&t, &TreeAtom::Last(var(0)), &asg).unwrap());
        asg.set(var(0), c);
        assert!(!eval_atom(&t, &TreeAtom::First(var(0)), &asg).unwrap());
        assert!(eval_atom(&t, &TreeAtom::Last(var(0)), &asg).unwrap());
    }

    #[test]
    fn label_atoms_on_delims() {
        let (v, t) = sample();
        let dt = twq_tree::DelimTree::build(&t);
        let a = v.sym_opt("a").unwrap();
        // In delim(t): ∃x O_▽(x), ∃x O_△(x), ∃x O_a(x).
        for l in [Label::DelimRoot, Label::DelimLeaf, Label::Sym(a)] {
            let f = exists(var(0), lab(l, var(0)));
            assert!(eval_sentence(dt.tree(), &f).unwrap(), "{:?}", l);
        }
        // The original tree has no delimiters.
        let f = exists(var(0), lab(Label::DelimRoot, var(0)));
        assert!(!eval_sentence(&t, &f).unwrap());
    }

    #[test]
    fn select_descendant_leaves() {
        let (_, t) = sample();
        // φ(x, y) = x ≺ y ∧ leaf(y), from the paper's atp discussion.
        let f = and([desc(var(0), var(1)), leaf(var(1))]);
        let sel = select(&t, &f, var(0), t.root(), var(1)).unwrap();
        assert_eq!(sel.len(), 3); // b, d, e
        let c = t.node_at_path(&[2]).unwrap();
        let sel_c = select(&t, &f, var(0), c, var(1)).unwrap();
        assert_eq!(sel_c.len(), 2); // d, e
    }

    #[test]
    fn select_pairs_counts() {
        let (_, t) = sample();
        let f = edge(var(0), var(1));
        // Every non-root node contributes exactly one edge pair.
        assert_eq!(
            select_pairs(&t, &f, var(0), var(1)).unwrap().len(),
            t.len() - 1
        );
    }

    #[test]
    fn value_comparisons() {
        let (mut v, t) = sample();
        let k = v.attr("k");
        // ∃x∃y (x ≠ y ∧ val_k(x) = val_k(y))
        let f = exists_many(
            [var(0), var(1)],
            and([not(eq(var(0), var(1))), val_eq(k, var(0), k, var(1))]),
        );
        assert!(eval_sentence(&t, &f).unwrap());
    }

    #[test]
    fn unbound_variable_is_invalid_not_panic() {
        let (_, t) = sample();
        let asg = Assignment::default();
        let err = eval_atom(&t, &TreeAtom::Leaf(var(3)), &asg).unwrap_err();
        assert!(err.to_string().contains("unbound variable"), "{err}");
        assert!(!err.is_limit());
    }

    #[test]
    fn eval_sentence_rejects_free_vars() {
        let (_, t) = sample();
        let err = eval_sentence(&t, &leaf(var(0))).unwrap_err();
        assert!(err.to_string().contains("requires a sentence"), "{err}");
    }

    #[test]
    fn guarded_eval_trips_on_quantifier_depth() {
        use twq_guard::{ResourceGuard, TripReason};
        let (_, t) = sample();
        // ∃x ∃y (x = y): nesting depth 2.
        let f = exists(var(0), exists(var(1), eq(var(0), var(1))));
        let mut ok = ResourceGuard::unlimited().with_depth_limit(DepthKind::Quantifier, 2);
        assert!(eval_sentence_guarded(&t, &f, &mut ok).unwrap());
        let mut tight = ResourceGuard::unlimited().with_depth_limit(DepthKind::Quantifier, 1);
        let err = eval_sentence_guarded(&t, &f, &mut tight).unwrap_err();
        let trip = err.guard().expect("depth trip");
        assert_eq!(
            trip.reason,
            TripReason::Depth {
                kind: DepthKind::Quantifier,
                limit: 1
            }
        );
    }

    #[test]
    fn guarded_eval_budget_counts_bindings() {
        use twq_guard::ResourceGuard;
        let (_, t) = sample();
        // ∀x ∀y (x = x): |t|² bindings plus |t|² atoms plus |t| outer ticks.
        let f = forall(var(0), forall(var(1), eq(var(0), var(0))));
        let mut g = ResourceGuard::unlimited();
        assert!(eval_sentence_guarded(&t, &f, &mut g).unwrap());
        let spent = g.fuel_spent();
        let n = t.len() as u64;
        assert!(spent >= n * n, "spent {spent} on {n} nodes");
        // A budget one unit short of the true cost trips.
        let mut tight = ResourceGuard::unlimited().with_budget(spent - 1);
        assert!(eval_sentence_guarded(&t, &f, &mut tight)
            .unwrap_err()
            .is_limit());
        // The exact cost passes.
        let mut exact = ResourceGuard::unlimited().with_budget(spent);
        assert!(eval_sentence_guarded(&t, &f, &mut exact).unwrap());
    }
}
