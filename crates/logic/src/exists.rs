//! The `FO(∃*)` fragment (Section 2.3): prenex formulas with existential
//! quantifiers only, over the tree vocabulary extended with
//! `root/leaf/first/last/succ`.
//!
//! The paper uses binary `FO(∃*)` formulas `φ(x, y)` as its abstraction of
//! XPath: `x` is the *current* position and `y` the *selected* position.
//! These are exactly the formulas allowed inside `atp(φ(x,y), q)` rules of
//! tree-walking automata (Definition 3.1, form 3).

use twq_obs::{Collector, FoEval, NullCollector};
use twq_tree::{NodeId, NodeSet, Tree};

use crate::eval;
use crate::fo::{Formula, Var};

/// A binary `FO(∃*)` formula `φ(x, y) = ∃z₁…∃zₙ θ` with `θ` quantifier-free.
///
/// Invariants (checked by [`ExistsFormula::new`]):
/// * the matrix is quantifier-free;
/// * every variable of the matrix is `x`, `y`, or one of the quantified
///   variables;
/// * `x`, `y`, and the quantified variables are pairwise distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExistsFormula {
    x: Var,
    y: Var,
    quantified: Vec<Var>,
    matrix: Formula,
}

/// Why an [`ExistsFormula`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExistsError {
    /// The matrix contains a quantifier.
    MatrixNotQuantifierFree,
    /// A matrix variable is neither `x`, `y`, nor quantified.
    UnboundVariable(Var),
    /// `x`, `y`, and the quantified variables must be pairwise distinct.
    DuplicateVariable(Var),
}

impl std::fmt::Display for ExistsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExistsError::MatrixNotQuantifierFree => {
                write!(f, "FO(∃*) matrix must be quantifier-free")
            }
            ExistsError::UnboundVariable(v) => write!(f, "variable {v} is not bound"),
            ExistsError::DuplicateVariable(v) => write!(f, "variable {v} bound twice"),
        }
    }
}

impl std::error::Error for ExistsError {}

impl ExistsFormula {
    /// Build and validate `φ(x, y) = ∃ quantified… matrix`.
    pub fn new(x: Var, y: Var, quantified: Vec<Var>, matrix: Formula) -> Result<Self, ExistsError> {
        if !matrix.is_quantifier_free() {
            return Err(ExistsError::MatrixNotQuantifierFree);
        }
        let mut bound = vec![x, y];
        bound.extend(&quantified);
        let mut sorted = bound.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(ExistsError::DuplicateVariable(w[0]));
            }
        }
        for v in matrix.free_vars() {
            if !bound.contains(&v) {
                return Err(ExistsError::UnboundVariable(v));
            }
        }
        Ok(ExistsFormula {
            x,
            y,
            quantified,
            matrix,
        })
    }

    /// The current-position variable `x`.
    pub fn x(&self) -> Var {
        self.x
    }

    /// The selected-position variable `y`.
    pub fn y(&self) -> Var {
        self.y
    }

    /// The quantifier-free matrix.
    pub fn matrix(&self) -> &Formula {
        &self.matrix
    }

    /// The quantified variable list.
    pub fn quantified(&self) -> &[Var] {
        &self.quantified
    }

    /// The equivalent [`Formula`] with free variables `x` and `y`.
    pub fn to_formula(&self) -> Formula {
        crate::fo::build::exists_many(self.quantified.iter().copied(), self.matrix.clone())
    }

    /// Syntactic size (contributes to the automaton size of Def. 3.1).
    pub fn size(&self) -> usize {
        self.quantified.len() + self.matrix.size()
    }

    /// Whether the selecting pair is all the formula talks about: no
    /// quantified variables were declared and the matrix is built from
    /// `∧`/`∨` over atoms (no negation) mentioning only `x` and `y`.
    ///
    /// This is the positive existential two-variable fragment the
    /// `twq-index` layer translates to set algebra; everything else keeps
    /// the backtracking [`select`](ExistsFormula::select) evaluator.
    pub fn is_positive_xy(&self) -> bool {
        fn positive(f: &Formula, x: Var, y: Var) -> bool {
            match f {
                Formula::True | Formula::False => true,
                Formula::Atom(a) => a.vars().iter().all(|&v| v == x || v == y),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| positive(g, x, y)),
                Formula::Not(_) | Formula::Exists(..) | Formula::Forall(..) => false,
            }
        }
        self.quantified.is_empty() && positive(&self.matrix, self.x, self.y)
    }

    /// All nodes `v` with `t ⊨ φ(u, v)` — the `atp` selection primitive.
    ///
    /// Uses backtracking with three-valued pruning over the existential
    /// variables, so conjunctive matrices (e.g. compiled XPath) are cheap
    /// even with many quantifiers. The returned [`NodeSet`] iterates in
    /// arena order, as the former `Vec` return did.
    pub fn select(&self, tree: &Tree, u: NodeId) -> NodeSet {
        self.select_with(tree, u, &mut NullCollector)
    }

    /// [`ExistsFormula::select`] with instrumentation: one
    /// [`FoEval::Select`] per call, plus the atom evaluations the
    /// backtracking search performs.
    pub fn select_with<C: Collector>(&self, tree: &Tree, u: NodeId, c: &mut C) -> NodeSet {
        c.fo_eval(FoEval::Select);
        let max = self
            .quantified
            .iter()
            .copied()
            .chain([self.x, self.y])
            .max();
        let mut asg = eval::Assignment::with_capacity(max);
        asg.set(self.x, u);

        // Split disjunctions into separate conjuncts so each branch only
        // enumerates its *own* existential variables — otherwise a union
        // forces every branch to iterate over the other branches' (fully
        // unconstrained) variables, an `n^k` blowup.
        let disjuncts = dnf(&self.matrix, 256);
        let mut out = NodeSet::with_capacity(tree.len());
        match disjuncts {
            Some(ds) => {
                let branches: Vec<(Formula, Vec<Var>)> = ds
                    .into_iter()
                    .map(|lits| {
                        let conj = Formula::And(lits);
                        let vars: Vec<Var> = self
                            .quantified
                            .iter()
                            .copied()
                            .filter(|v| conj.free_vars().contains(v))
                            .collect();
                        (conj, vars)
                    })
                    .collect();
                for v in tree.node_ids() {
                    asg.set(self.y, v);
                    if branches.iter().any(|(conj, vars)| {
                        eval::sat_exists_with(tree, conj, vars, &mut asg, c)
                            .expect("ExistsFormula invariant: quantifier-free matrix, bound vars")
                    }) {
                        out.insert(v);
                    }
                }
            }
            None => {
                // DNF too large: generic backtracking over all variables.
                for v in tree.node_ids() {
                    asg.set(self.y, v);
                    if eval::sat_exists_with(tree, &self.matrix, &self.quantified, &mut asg, c)
                        .expect("ExistsFormula invariant: quantifier-free matrix, bound vars")
                    {
                        out.insert(v);
                    }
                }
            }
        }
        out
    }

    /// Whether `φ` selects exactly one node from `u` — the syntactic
    /// single-selection requirement of `tw^l` (Definition 5.1) checked
    /// semantically.
    pub fn selects_unique(&self, tree: &Tree, u: NodeId) -> bool {
        self.select(tree, u).len() == 1
    }

    /// Conservative syntactic check that `φ` selects **at most one** node
    /// from any position — the `tw^l` requirement of Definition 5.1 ("every
    /// `φ` … should select only one node (for instance, select parent or
    /// first child)"). Exactly the following shapes are recognized:
    ///
    /// * `x = y` (self) and `y = x`;
    /// * `E(y, x)` (parent);
    /// * a conjunction containing `E(x, y)` and `first(y)` (first child);
    /// * a conjunction containing `root(y)` (the root);
    /// * `succ(x, y)` / `succ(y, x)` (right/left sibling).
    ///
    /// Single-node selection is undecidable in general; programs using
    /// other shapes are classified as full look-ahead.
    pub fn is_syntactically_single(&self) -> bool {
        use crate::fo::TreeAtom as A;
        let (x, y) = (self.x, self.y);
        let single_atom = |a: &A| -> bool {
            matches!(a,
                A::Eq(p, q) if (*p == x && *q == y) || (*p == y && *q == x))
                || matches!(a, A::Edge(p, q) if *p == y && *q == x)
                || matches!(a, A::Root(p) if *p == y)
                || matches!(a, A::Succ(p, q) if (*p == x && *q == y) || (*p == y && *q == x))
        };
        let first_child = |fs: &[Formula]| -> bool {
            let has_edge = fs
                .iter()
                .any(|f| matches!(f, Formula::Atom(A::Edge(p, q)) if *p == x && *q == y));
            let has_first = fs
                .iter()
                .any(|f| matches!(f, Formula::Atom(A::First(p)) if *p == y));
            has_edge && has_first
        };
        match &self.matrix {
            Formula::Atom(a) => single_atom(a),
            Formula::And(fs) => {
                fs.iter()
                    .any(|f| matches!(f, Formula::Atom(a) if single_atom(a)))
                    || first_child(fs)
            }
            _ => false,
        }
    }

    /// Render with the given vocabulary.
    pub fn display(&self, vocab: &twq_tree::Vocab) -> String {
        format!(
            "φ({}, {}) := {}",
            self.x,
            self.y,
            self.to_formula().display(vocab)
        )
    }
}

/// Negation normal form: push `Not` down to atoms, folding constants.
fn nnf(f: &Formula, neg: bool) -> Formula {
    match f {
        Formula::True => {
            if neg {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if neg {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom(a) => {
            if neg {
                Formula::Not(Box::new(Formula::Atom(a.clone())))
            } else {
                Formula::Atom(a.clone())
            }
        }
        Formula::Not(g) => nnf(g, !neg),
        Formula::And(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::Or(parts)
            } else {
                Formula::And(parts)
            }
        }
        Formula::Or(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::And(parts)
            } else {
                Formula::Or(parts)
            }
        }
        // Quantifiers never occur in FO(∃*) matrices.
        Formula::Exists(_, _) | Formula::Forall(_, _) => {
            unreachable!("matrix is quantifier-free")
        }
    }
}

/// Disjunctive normal form as a list of literal-conjunctions, or `None`
/// when the number of disjuncts would exceed `cap`.
fn dnf(matrix: &Formula, cap: usize) -> Option<Vec<Vec<Formula>>> {
    fn go(f: &Formula, cap: usize) -> Option<Vec<Vec<Formula>>> {
        match f {
            Formula::True => Some(vec![vec![]]),
            Formula::False => Some(vec![]),
            Formula::Atom(_) | Formula::Not(_) => Some(vec![vec![f.clone()]]),
            Formula::Or(fs) => {
                let mut out = Vec::new();
                for g in fs {
                    out.extend(go(g, cap)?);
                    if out.len() > cap {
                        return None;
                    }
                }
                Some(out)
            }
            Formula::And(fs) => {
                let mut acc: Vec<Vec<Formula>> = vec![vec![]];
                for g in fs {
                    let gs = go(g, cap)?;
                    let mut next = Vec::with_capacity(acc.len() * gs.len());
                    for left in &acc {
                        for right in &gs {
                            let mut lits = left.clone();
                            lits.extend(right.iter().cloned());
                            next.push(lits);
                        }
                    }
                    if next.len() > cap {
                        return None;
                    }
                    acc = next;
                }
                Some(acc)
            }
            Formula::Exists(_, _) | Formula::Forall(_, _) => None,
        }
    }
    go(&nnf(matrix, false), cap)
}

/// Stock selectors used throughout the automata and compilers. All take
/// `x = x0`, `y = x1`; auxiliary variables start at `x2`.
pub mod selectors {
    use super::*;
    use crate::fo::build::*;
    use twq_tree::Label;

    fn xy() -> (Var, Var) {
        (var(0), var(1))
    }

    /// `φ(x, y) = (x = y)` — select the current node.
    pub fn self_node() -> ExistsFormula {
        let (x, y) = xy();
        ExistsFormula::new(x, y, vec![], eq(x, y)).expect("valid selector")
    }

    /// `φ(x, y) = E(y, x)` — select the parent.
    pub fn parent() -> ExistsFormula {
        let (x, y) = xy();
        ExistsFormula::new(x, y, vec![], edge(y, x)).expect("valid selector")
    }

    /// `φ(x, y) = E(x, y) ∧ first(y)` — select the first child.
    pub fn first_child() -> ExistsFormula {
        let (x, y) = xy();
        ExistsFormula::new(x, y, vec![], and([edge(x, y), first(y)])).expect("valid selector")
    }

    /// `φ(x, y) = E(x, y)` — select all children.
    pub fn children() -> ExistsFormula {
        let (x, y) = xy();
        ExistsFormula::new(x, y, vec![], edge(x, y)).expect("valid selector")
    }

    /// `φ(x, y) = x ≺ y` — select all strict descendants.
    pub fn descendants() -> ExistsFormula {
        let (x, y) = xy();
        ExistsFormula::new(x, y, vec![], desc(x, y)).expect("valid selector")
    }

    /// `φ(x, y) = x ≺ y ∧ O_σ(y)` — strict descendants labeled `σ`.
    pub fn descendants_labeled(l: Label) -> ExistsFormula {
        let (x, y) = xy();
        ExistsFormula::new(x, y, vec![], and([desc(x, y), lab(l, y)])).expect("valid selector")
    }

    /// `φ(x, y) = ∃z (x ≺ y ∧ E(y, z) ∧ O_△(z))` — on a delimited tree,
    /// the original-leaf descendants of `x` (the parents of `△`-nodes);
    /// this is the paper's `φ₂` from Example 3.2.
    pub fn delim_leaf_descendants() -> ExistsFormula {
        let (x, y) = xy();
        let z = var(2);
        ExistsFormula::new(
            x,
            y,
            vec![z],
            and([desc(x, y), edge(y, z), lab(Label::DelimLeaf, z)]),
        )
        .expect("valid selector")
    }

    /// `φ(x, y) = root(x) ∧ …` is unnecessary: `φ(x, y) = root(y)` selects
    /// the root from anywhere.
    pub fn root_node() -> ExistsFormula {
        let (x, y) = xy();
        // `x` must occur for the formula to be "binary"; `x = x` is free.
        ExistsFormula::new(x, y, vec![], and([eq(x, x), root(y)])).expect("valid selector")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::build::*;
    use twq_tree::{parse_tree, DelimTree, Vocab};

    fn sample() -> (Vocab, Tree) {
        let mut v = Vocab::new();
        let t = parse_tree("a(b,c(d,e))", &mut v).unwrap();
        (v, t)
    }

    #[test]
    fn validation_rejects_quantified_matrix() {
        let bad = ExistsFormula::new(var(0), var(1), vec![], exists(var(2), eq(var(0), var(2))));
        assert_eq!(bad.unwrap_err(), ExistsError::MatrixNotQuantifierFree);
    }

    #[test]
    fn validation_rejects_unbound() {
        let bad = ExistsFormula::new(var(0), var(1), vec![], eq(var(0), var(7)));
        assert_eq!(bad.unwrap_err(), ExistsError::UnboundVariable(var(7)));
    }

    #[test]
    fn validation_rejects_duplicates() {
        let bad = ExistsFormula::new(var(0), var(1), vec![var(1)], eq(var(0), var(1)));
        assert_eq!(bad.unwrap_err(), ExistsError::DuplicateVariable(var(1)));
    }

    #[test]
    fn paper_example_formula() {
        // The paper's §2.3 example:
        //   φ(x, y) = ∃y₂∃y₃ (x ≺ y ∧ y ≺ y₂ ∧ E(y, y₃)
        //              ∧ O_a(x) ∧ O_b(y) ∧ O_c(y₂) ∧ O_d(y₃))
        let mut v = Vocab::new();
        let t = parse_tree("a(b(c(q),d),b(d))", &mut v).unwrap();
        let (a, b, c, d) = (
            v.sym_opt("a").unwrap(),
            v.sym_opt("b").unwrap(),
            v.sym_opt("c").unwrap(),
            v.sym_opt("d").unwrap(),
        );
        use twq_tree::Label::Sym;
        let (x, y, y2, y3) = (var(0), var(1), var(2), var(3));
        let phi = ExistsFormula::new(
            x,
            y,
            vec![y2, y3],
            and([
                desc(x, y),
                desc(y, y2),
                edge(y, y3),
                lab(Sym(a), x),
                lab(Sym(b), y),
                lab(Sym(c), y2),
                lab(Sym(d), y3),
            ]),
        )
        .unwrap();
        // From the root: the first b has descendants c(q) and a child d — it
        // matches. The second b has child d but no c descendant — no match.
        let sel = phi.select(&t, t.root());
        assert_eq!(sel.len(), 1);
        assert_eq!(sel.first(), t.node_at_path(&[1]));
    }

    #[test]
    fn stock_selectors() {
        let (_, t) = sample();
        let r = t.root();
        let c = t.node_at_path(&[2]).unwrap();
        let d = t.node_at_path(&[2, 1]).unwrap();
        assert_eq!(selectors::self_node().select(&t, c).to_vec(), vec![c]);
        assert_eq!(selectors::parent().select(&t, c).to_vec(), vec![r]);
        assert_eq!(selectors::parent().select(&t, r).to_vec(), vec![]);
        assert_eq!(selectors::first_child().select(&t, c).to_vec(), vec![d]);
        assert_eq!(selectors::children().select(&t, r).len(), 2);
        assert_eq!(selectors::descendants().select(&t, r).len(), 4);
        assert_eq!(selectors::root_node().select(&t, d).to_vec(), vec![r]);
        assert!(selectors::self_node().selects_unique(&t, c));
        assert!(!selectors::children().selects_unique(&t, r));
    }

    #[test]
    fn delim_leaf_descendants_selects_original_leaves() {
        let (_, t) = sample();
        let dt = DelimTree::build(&t);
        let phi = selectors::delim_leaf_descendants();
        let sel = phi.select(dt.tree(), dt.tree().root());
        // Original leaves: b, d, e.
        assert_eq!(sel.len(), 3);
        for u in sel {
            let orig = dt.original(u).expect("selected nodes are images");
            assert!(t.is_leaf(orig));
        }
    }

    #[test]
    fn size_accounts_for_quantifiers() {
        let phi = selectors::delim_leaf_descendants();
        assert!(phi.size() > phi.matrix().size());
    }

    #[test]
    fn syntactic_single_selector_recognition() {
        assert!(selectors::self_node().is_syntactically_single());
        assert!(selectors::parent().is_syntactically_single());
        assert!(selectors::first_child().is_syntactically_single());
        assert!(selectors::root_node().is_syntactically_single());
        assert!(!selectors::children().is_syntactically_single());
        assert!(!selectors::descendants().is_syntactically_single());
        assert!(!selectors::delim_leaf_descendants().is_syntactically_single());
    }

    #[test]
    fn display_shows_both_roles() {
        let v = Vocab::new();
        let s = selectors::self_node().display(&v);
        assert!(s.contains("φ(x0, x1)"), "{s}");
    }
}
