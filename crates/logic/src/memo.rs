//! Memoized FO evaluation and the parallel batch entry points.
//!
//! The naive evaluator re-enumerates quantifier domains from scratch every
//! time a subformula is reached — `∃x∃y (A(x) ∧ B(y))` costs `O(n²)` atom
//! work even though `A` and `B` each only have `n` distinct inputs. The
//! fix is the textbook one: cache subformula verdicts keyed by
//! *(subformula identity, the assignment restricted to its free-variable
//! support)*. A cached verdict is sound because a formula's value depends
//! only on the bindings of its free variables (the coincidence lemma), so
//! the support-restricted assignment *is* the full input.
//!
//! Only subformulas that contain a quantifier and have support ≤ 1 are
//! cached: closed subformulas get a single slot, single-free-variable
//! subformulas get one slot per tree node. Quantifier-free subformulas are
//! cheaper to re-evaluate than to key, and support ≥ 2 would need `n²`
//! slots — both are simply evaluated in place. The cache is valid for one
//! `(tree, formula)` pair; there is no invalidation protocol because both
//! are immutable during evaluation — a new tree means a new cache
//! ([`MemoFormula::fresh_cache`]).
//!
//! On top of the cache sit the parallel entry points:
//! [`eval_sentence_par`] fans a top-level quantifier's domain across a
//! [`Pool`], and [`select_batch`] runs many `select` contexts at once.
//! Every worker owns a private cache, so no locks sit on the hot path and
//! results are bit-identical to the serial evaluator's.

use std::collections::HashMap;

use twq_exec::{BatchProfile, Pool};
use twq_guard::{Guard, NullGuard, TwqError};
use twq_obs::{Collector, FoEval, NullCollector};
use twq_tree::{NodeId, NodeSet, Tree};

use crate::eval::{select_guarded, Assignment};
use crate::fo::{Formula, Var};

/// How a memoizable subformula is keyed.
#[derive(Debug, Clone, Copy)]
enum SlotSpec {
    /// No free variables: one verdict per tree.
    Closed,
    /// One free variable: one verdict per binding of it.
    Unary(Var),
}

/// A formula analyzed for memoization: every subformula that contains a
/// quantifier and has at most one free variable is assigned a cache slot.
///
/// Subformula identity is by position in the AST (two structurally equal
/// subformulas at different positions get distinct slots — collapsing them
/// would be sound but is not worth hashing formulas for).
#[derive(Debug)]
pub struct MemoFormula<'f> {
    root: &'f Formula,
    /// Position-identity map: AST node address → slot index. Addresses are
    /// stored as `usize` so the map (and thus the whole struct) stays
    /// `Send + Sync` for the pool fan-out; they are never dereferenced.
    ids: HashMap<usize, usize>,
    specs: Vec<SlotSpec>,
}

/// The verdict cache for one `(tree, MemoFormula)` pair.
///
/// Unary slots store three-valued bytes (unknown / false / true) indexed
/// by the bound node's arena id.
#[derive(Debug, Clone)]
pub struct MemoCache {
    slots: Vec<SlotState>,
}

#[derive(Debug, Clone)]
enum SlotState {
    Closed(Option<bool>),
    Unary(Vec<u8>),
}

const UNKNOWN: u8 = 0;
const FALSE: u8 = 1;
const TRUE: u8 = 2;

impl<'f> MemoFormula<'f> {
    /// Analyze `formula`, assigning cache slots to every memoizable
    /// subformula.
    pub fn new(formula: &'f Formula) -> Self {
        let mut mf = MemoFormula {
            root: formula,
            ids: HashMap::new(),
            specs: Vec::new(),
        };
        mf.index(formula);
        mf
    }

    fn index(&mut self, f: &'f Formula) {
        if !f.is_quantifier_free() {
            let free = f.free_vars();
            let spec = match free.as_slice() {
                [] => Some(SlotSpec::Closed),
                [v] => Some(SlotSpec::Unary(*v)),
                _ => None,
            };
            if let Some(spec) = spec {
                self.ids
                    .insert(f as *const Formula as usize, self.specs.len());
                self.specs.push(spec);
            }
        }
        match f {
            Formula::True | Formula::False | Formula::Atom(_) => {}
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => self.index(g),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| self.index(g)),
        }
    }

    /// The analyzed formula.
    pub fn formula(&self) -> &'f Formula {
        self.root
    }

    /// Number of memoizable subformulas found.
    pub fn slot_count(&self) -> usize {
        self.specs.len()
    }

    /// An empty cache sized for `tree`.
    pub fn fresh_cache(&self, tree: &Tree) -> MemoCache {
        MemoCache {
            slots: self
                .specs
                .iter()
                .map(|spec| match spec {
                    SlotSpec::Closed => SlotState::Closed(None),
                    SlotSpec::Unary(_) => SlotState::Unary(vec![UNKNOWN; tree.len()]),
                })
                .collect(),
        }
    }
}

/// Memoized counterpart of the naive recursive evaluator. Identical
/// verdicts; the only observable differences are cost-side (fewer atom
/// evaluations reported to the collector, less fuel charged to the guard
/// on cache hits).
fn eval_memo_inner<C: Collector, G: Guard>(
    tree: &Tree,
    mf: &MemoFormula<'_>,
    f: &Formula,
    asg: &mut Assignment,
    cache: &mut MemoCache,
    c: &mut C,
    g: &mut G,
) -> Result<bool, TwqError> {
    if let Some(&id) = mf.ids.get(&(f as *const Formula as usize)) {
        // Read the slot, drop the borrow, compute on a miss, write back.
        let key = match cache.slots[id] {
            SlotState::Closed(Some(b)) => return Ok(b),
            SlotState::Closed(None) => None,
            SlotState::Unary(ref tab) => {
                let SlotSpec::Unary(v) = mf.specs[id] else {
                    unreachable!("spec and state are built together")
                };
                let u = asg.get(v).ok_or_else(|| {
                    TwqError::invalid("logic::eval_memo", format!("unbound variable {v}"))
                })?;
                match tab[u.0 as usize] {
                    TRUE => return Ok(true),
                    FALSE => return Ok(false),
                    _ => Some(u),
                }
            }
        };
        let b = eval_memo_cases(tree, mf, f, asg, cache, c, g)?;
        match (&mut cache.slots[id], key) {
            (SlotState::Closed(slot), None) => *slot = Some(b),
            (SlotState::Unary(tab), Some(u)) => tab[u.0 as usize] = if b { TRUE } else { FALSE },
            _ => unreachable!("slot shape cannot change"),
        }
        return Ok(b);
    }
    eval_memo_cases(tree, mf, f, asg, cache, c, g)
}

/// The structural recursion, mirroring `eval_inner` case for case but
/// recursing through the memo layer.
fn eval_memo_cases<C: Collector, G: Guard>(
    tree: &Tree,
    mf: &MemoFormula<'_>,
    f: &Formula,
    asg: &mut Assignment,
    cache: &mut MemoCache,
    c: &mut C,
    g: &mut G,
) -> Result<bool, TwqError> {
    use twq_guard::DepthKind;
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Atom(a) => {
            c.fo_eval(FoEval::Atom);
            if G::ENABLED {
                g.tick()?;
            }
            crate::eval::eval_atom(tree, a, asg)
        }
        Formula::Not(h) => Ok(!eval_memo_inner(tree, mf, h, asg, cache, c, g)?),
        Formula::And(fs) => {
            for h in fs {
                if !eval_memo_inner(tree, mf, h, asg, cache, c, g)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for h in fs {
                if eval_memo_inner(tree, mf, h, asg, cache, c, g)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Exists(v, h) | Formula::Forall(v, h) => {
            let exists = matches!(f, Formula::Exists(_, _));
            if G::ENABLED {
                g.enter(DepthKind::Quantifier)?;
            }
            let saved = asg.get(*v);
            let mut out = Ok(!exists);
            for u in tree.node_ids() {
                if G::ENABLED {
                    if let Err(e) = g.tick() {
                        out = Err(e.into());
                        break;
                    }
                }
                asg.set(*v, u);
                match eval_memo_inner(tree, mf, h, asg, cache, c, g) {
                    Ok(b) if b == exists => {
                        out = Ok(exists);
                        break;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        out = Err(e);
                        break;
                    }
                }
            }
            match saved {
                Some(u) => asg.set(*v, u),
                None => asg.unset(*v),
            }
            if G::ENABLED {
                g.exit(DepthKind::Quantifier);
            }
            out
        }
    }
}

/// [`eval_sentence`](crate::eval::eval_sentence) with subformula
/// memoization: closed and single-free-variable subformulas are evaluated
/// at most once per (binding, tree).
///
/// # Errors
/// [`TwqError::Invalid`] if the formula has free variables.
pub fn eval_sentence_memo(tree: &Tree, formula: &Formula) -> Result<bool, TwqError> {
    eval_sentence_memo_guarded(tree, formula, &mut NullGuard)
}

/// [`eval_sentence_memo`] under a resource [`Guard`]. Cache hits charge no
/// fuel, so a memoized run spends *at most* what the naive run spends —
/// budgets sized for the naive evaluator remain sufficient.
pub fn eval_sentence_memo_guarded<G: Guard>(
    tree: &Tree,
    formula: &Formula,
    guard: &mut G,
) -> Result<bool, TwqError> {
    let free = formula.free_vars();
    if !free.is_empty() {
        return Err(TwqError::invalid(
            "logic::eval_sentence_memo",
            format!("requires a sentence; free vars: {free:?}"),
        ));
    }
    let mf = MemoFormula::new(formula);
    let mut cache = mf.fresh_cache(tree);
    let mut asg = Assignment::with_capacity(formula.max_var());
    let mut c = NullCollector;
    c.fo_eval(FoEval::Sentence);
    eval_memo_inner(tree, &mf, formula, &mut asg, &mut cache, &mut c, guard)
}

/// [`select`](crate::eval::select) with subformula memoization: one cache
/// shared across the whole `y`-enumeration, so subformulas independent of
/// `y` (closed, or depending only on `x`) are evaluated once instead of
/// once per candidate node.
///
/// # Errors
/// As for [`select`](crate::eval::select).
pub fn select_memo(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    u: NodeId,
    y: Var,
) -> Result<NodeSet, TwqError> {
    select_memo_guarded(tree, formula, x, u, y, &mut NullGuard)
}

/// [`select_memo`] under a resource [`Guard`] (cache hits charge no fuel).
pub fn select_memo_guarded<G: Guard>(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    u: NodeId,
    y: Var,
    guard: &mut G,
) -> Result<NodeSet, TwqError> {
    let mf = MemoFormula::new(formula);
    let mut cache = mf.fresh_cache(tree);
    let mut asg = Assignment::with_capacity(
        formula
            .max_var()
            .map_or(Some(x.max(y)), |m| Some(m.max(x).max(y))),
    );
    asg.set(x, u);
    let mut c = NullCollector;
    c.fo_eval(FoEval::Select);
    let mut out = NodeSet::with_capacity(tree.len());
    for v in tree.node_ids() {
        if G::ENABLED {
            guard.tick()?;
        }
        asg.set(y, v);
        if eval_memo_inner(tree, &mf, formula, &mut asg, &mut cache, &mut c, guard)? {
            out.insert(v);
        }
    }
    Ok(out)
}

/// [`eval_sentence_memo`] with the top-level quantifier's domain fanned
/// across `pool`. Each worker takes a contiguous chunk of the domain and
/// its own memo cache; the chunk verdicts combine by OR (`∃`) / AND (`∀`).
/// Sentences not starting with a quantifier fall back to the serial
/// memoized evaluator.
///
/// Unlike the serial evaluator, the fan-out does not short-circuit across
/// chunks — it trades wasted work on witnesses found early for wall-clock
/// on the witness-less majority of bindings.
///
/// # Errors
/// [`TwqError::Invalid`] if the formula has free variables.
pub fn eval_sentence_par(tree: &Tree, formula: &Formula, pool: &Pool) -> Result<bool, TwqError> {
    let free = formula.free_vars();
    if !free.is_empty() {
        return Err(TwqError::invalid(
            "logic::eval_sentence_par",
            format!("requires a sentence; free vars: {free:?}"),
        ));
    }
    let (v, body, exists) = match formula {
        Formula::Exists(v, body) => (*v, body.as_ref(), true),
        Formula::Forall(v, body) => (*v, body.as_ref(), false),
        _ => return eval_sentence_memo(tree, formula),
    };
    let n = tree.len();
    let workers = pool.workers().min(n.max(1));
    let chunk = n.div_ceil(workers.max(1)).max(1);
    let mf = MemoFormula::new(formula);
    let verdicts = pool.scoped(workers, |k| -> Result<bool, TwqError> {
        let lo = k * chunk;
        let hi = ((k + 1) * chunk).min(n);
        let mut cache = mf.fresh_cache(tree);
        let mut asg = Assignment::with_capacity(formula.max_var());
        let mut c = NullCollector;
        for i in lo..hi {
            asg.set(v, NodeId(i as u32));
            let b = eval_memo_inner(
                tree,
                &mf,
                body,
                &mut asg,
                &mut cache,
                &mut c,
                &mut NullGuard,
            )?;
            if b == exists {
                return Ok(exists);
            }
        }
        Ok(!exists)
    });
    let mut out = !exists;
    for verdict in verdicts {
        let b = verdict?;
        if b == exists {
            out = exists;
        }
    }
    Ok(out)
}

/// Batch [`select`](crate::eval::select): one memoized selection per
/// context node in `us`, fanned across `pool`, results in `us` order.
/// Equivalent to mapping [`select_memo`] over `us` serially — and with a
/// 1-worker pool it *is* that loop.
///
/// # Errors
/// As for [`select`](crate::eval::select); the first failing context (in
/// `us` order) determines the error.
pub fn select_batch(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    us: &[NodeId],
    y: Var,
    pool: &Pool,
) -> Result<Vec<NodeSet>, TwqError> {
    pool.scoped(us.len(), |i| select_memo(tree, formula, x, us[i], y))
        .into_iter()
        .collect()
}

/// [`select_batch`] plus a [`BatchProfile`]: per-context wall-clock
/// latencies in `us` order and the pool's per-worker telemetry. The
/// selections themselves are identical to [`select_batch`].
///
/// # Errors
/// As for [`select_batch`].
pub fn select_batch_profiled(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    us: &[NodeId],
    y: Var,
    pool: &Pool,
) -> (Result<Vec<NodeSet>, TwqError>, BatchProfile) {
    let (runs, stats) = pool.scoped_with_stats(us.len(), |i| {
        let t0 = std::time::Instant::now();
        let sel = select_memo(tree, formula, x, us[i], y);
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        (sel, ns)
    });
    let mut latencies_ns = Vec::with_capacity(runs.len());
    let mut out = Ok(Vec::with_capacity(runs.len()));
    for (sel, ns) in runs {
        latencies_ns.push(ns);
        if let Ok(sets) = &mut out {
            match sel {
                Ok(s) => sets.push(s),
                Err(e) => out = Err(e),
            }
        }
    }
    (
        out,
        BatchProfile {
            latencies_ns,
            stats,
        },
    )
}

/// Batch guarded [`select`](crate::eval::select): each context runs under
/// a fresh guard from `make_guard`, so per-context verdicts *and errors*
/// are identical to a serial loop calling
/// [`select_guarded`] with the same factory —
/// the property the `tests/exec.rs` suite pins down. Uses the plain
/// (non-memoized) evaluator so fuel accounting matches the serial path
/// charge for charge.
pub fn select_batch_guarded<G, F>(
    tree: &Tree,
    formula: &Formula,
    x: Var,
    us: &[NodeId],
    y: Var,
    pool: &Pool,
    make_guard: F,
) -> Vec<Result<NodeSet, TwqError>>
where
    G: Guard,
    F: Fn() -> G + Sync,
{
    pool.scoped(us.len(), |i| {
        let mut g = make_guard();
        select_guarded(tree, formula, x, us[i], y, &mut g)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_sentence, select};
    use crate::fo::build::*;
    use twq_tree::{parse_tree, Vocab};

    fn sample() -> Tree {
        let mut v = Vocab::new();
        parse_tree("a(b(c,d),e(f,g(h)),i)", &mut v).unwrap()
    }

    /// Sentences whose naive and memoized verdicts must coincide.
    fn sentences() -> Vec<Formula> {
        let (x, y, z) = (var(0), var(1), var(2));
        vec![
            exists(x, leaf(x)),
            forall(x, implies(leaf(x), exists(y, edge(y, x)))),
            // Closed subformula under a quantifier: ∃y root(y) is
            // re-entered once per x binding naively, once in total memoized.
            forall(x, exists(y, root(y))),
            exists_many([x, y], and([edge(x, y), exists(z, desc(y, z))])),
            not(exists(x, and([root(x), leaf(x)]))),
            or([exists(x, first(x)), exists(x, last(x))]),
        ]
    }

    #[test]
    fn memo_agrees_with_naive_on_sentences() {
        let t = sample();
        for f in sentences() {
            let naive = eval_sentence(&t, &f).unwrap();
            let memo = eval_sentence_memo(&t, &f).unwrap();
            assert_eq!(naive, memo, "{f:?}");
        }
    }

    #[test]
    fn par_agrees_with_naive_for_any_worker_count() {
        let t = sample();
        for workers in [1, 2, 4] {
            let pool = Pool::new(workers);
            for f in sentences() {
                let naive = eval_sentence(&t, &f).unwrap();
                let par = eval_sentence_par(&t, &f, &pool).unwrap();
                assert_eq!(naive, par, "workers={workers} {f:?}");
            }
        }
    }

    #[test]
    fn select_memo_agrees_with_select() {
        let t = sample();
        let (x, y, z) = (var(0), var(1), var(2));
        let phis = [
            and([desc(x, y), leaf(y)]),
            and([edge(x, y), exists(z, desc(y, z))]),
            or([
                eq(x, y),
                and([desc(x, y), exists(z, and([leaf(z), desc(y, z)]))]),
            ]),
        ];
        for phi in &phis {
            for u in t.node_ids() {
                let naive = select(&t, phi, x, u, y).unwrap();
                let memo = select_memo(&t, phi, x, u, y).unwrap();
                assert_eq!(naive, memo, "u={u:?} {phi:?}");
            }
        }
    }

    #[test]
    fn select_batch_matches_serial_order_and_contents() {
        let t = sample();
        let (x, y) = (var(0), var(1));
        let phi = and([desc(x, y), leaf(y)]);
        let us: Vec<NodeId> = t.node_ids().collect();
        for workers in [1, 3] {
            let batch = select_batch(&t, &phi, x, &us, y, &Pool::new(workers)).unwrap();
            assert_eq!(batch.len(), us.len());
            for (i, &u) in us.iter().enumerate() {
                assert_eq!(batch[i], select(&t, &phi, x, u, y).unwrap());
            }
        }
    }

    #[test]
    fn memo_slots_cover_quantified_small_support_only() {
        let (x, y) = (var(0), var(1));
        // ∃y root(y) (closed) and ∃y edge(x,y) (support {x}) are slots;
        // the quantifier-free atoms are not.
        let f = and([exists(y, root(y)), exists(y, edge(x, y)), leaf(x)]);
        let mf = MemoFormula::new(&f);
        // The And itself has support {x} and contains quantifiers: slot.
        assert_eq!(mf.slot_count(), 3);
    }

    #[test]
    fn guarded_memo_never_spends_more_fuel_than_naive() {
        use twq_guard::ResourceGuard;
        let t = sample();
        for f in sentences() {
            let mut naive = ResourceGuard::unlimited();
            crate::eval::eval_sentence_guarded(&t, &f, &mut naive).unwrap();
            let mut memo = ResourceGuard::unlimited();
            eval_sentence_memo_guarded(&t, &f, &mut memo).unwrap();
            assert!(
                memo.fuel_spent() <= naive.fuel_spent(),
                "memo {} > naive {} on {f:?}",
                memo.fuel_spent(),
                naive.fuel_spent()
            );
        }
    }
}
