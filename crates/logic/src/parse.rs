//! Concrete syntax for FO formulas over the tree vocabulary — handy in
//! examples, tests, and REPL-style exploration.
//!
//! ```text
//! formula := quantified
//! quantified := ('E' | 'A') ident '.' quantified      (∃ / ∀)
//!             | implication
//! implication := disjunction ('->' disjunction)?
//! disjunction := conjunction ('|' conjunction)*
//! conjunction := negation ('&' negation)*
//! negation    := '!' negation | '(' formula ')' | atom | 'true' | 'false'
//! atom        := 'E(' x ',' y ')'          edge
//!             | 'desc(' x ',' y ')'        strict descendant  (x ≺ y)
//!             | 'sib(' x ',' y ')'         sibling order      (x < y)
//!             | 'lab(' name ',' x ')'      O_name(x)
//!             | 'root(' x ')' | 'leaf(' x ')' | 'first(' x ')' | 'last(' x ')'
//!             | 'succ(' x ',' y ')'
//!             | x '=' y
//!             | 'val(' attr ',' x ')' '=' ('val(' attr ',' y ')' | literal)
//! literal     := integer | ident          (interned as a data value)
//! ```
//!
//! Variables are identifiers; the parser assigns dense [`Var`] indices in
//! order of first occurrence and reports the mapping.

use std::collections::HashMap;

use twq_tree::{Label, Vocab};

use crate::fo::{Formula, TreeAtom, Var};

/// An FO parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoParseError {
    /// Byte offset.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for FoParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FO parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for FoParseError {}

/// A parsed formula plus the variable-name mapping.
#[derive(Debug, Clone)]
pub struct ParsedFormula {
    /// The formula.
    pub formula: Formula,
    /// Variable names in index order (`vars[i]` is the name of `Var(i)`).
    pub vars: Vec<String>,
}

impl ParsedFormula {
    /// The variable with the given name, if it occurred.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.vars
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u16))
    }
}

struct P<'s, 'v> {
    src: &'s [u8],
    pos: usize,
    vocab: &'v mut Vocab,
    vars: Vec<String>,
    by_name: HashMap<String, Var>,
}

impl P<'_, '_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, FoParseError> {
        Err(FoParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        self.ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            // Keywords must not run into identifier characters.
            let after = self.src.get(self.pos + s.len());
            let kw_like = s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_');
            if kw_like && after.is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                return false;
            }
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, FoParseError> {
        self.ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected identifier");
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .to_owned())
    }

    fn variable(&mut self) -> Result<Var, FoParseError> {
        let name = self.ident()?;
        Ok(self.var_named(&name))
    }

    fn var_named(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Var(self.vars.len() as u16);
        self.vars.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        v
    }

    fn formula(&mut self) -> Result<Formula, FoParseError> {
        self.ws();
        // Quantifiers: `E x.` / `A x.` — disambiguate from the atom `E(`.
        if self.peek() == Some(b'E') && self.src.get(self.pos + 1) == Some(&b' ') {
            self.pos += 1;
            let v = self.variable()?;
            if !self.eat(b'.') {
                return self.err("expected '.' after quantified variable");
            }
            let body = self.formula()?;
            return Ok(Formula::Exists(v, Box::new(body)));
        }
        if self.peek() == Some(b'A') && self.src.get(self.pos + 1) == Some(&b' ') {
            self.pos += 1;
            let v = self.variable()?;
            if !self.eat(b'.') {
                return self.err("expected '.' after quantified variable");
            }
            let body = self.formula()?;
            return Ok(Formula::Forall(v, Box::new(body)));
        }
        self.implication()
    }

    fn implication(&mut self) -> Result<Formula, FoParseError> {
        let lhs = self.disjunction()?;
        self.ws();
        if self.eat_str("->") {
            let rhs = self.formula()?;
            return Ok(Formula::Or(vec![Formula::Not(Box::new(lhs)), rhs]));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self) -> Result<Formula, FoParseError> {
        let mut parts = vec![self.conjunction()?];
        while self.eat(b'|') {
            parts.push(self.conjunction()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("one element"))
        } else {
            Ok(Formula::Or(parts))
        }
    }

    fn conjunction(&mut self) -> Result<Formula, FoParseError> {
        let mut parts = vec![self.negation()?];
        while self.eat(b'&') {
            parts.push(self.negation()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("one element"))
        } else {
            Ok(Formula::And(parts))
        }
    }

    fn negation(&mut self) -> Result<Formula, FoParseError> {
        self.ws();
        if self.eat(b'!') {
            return Ok(Formula::Not(Box::new(self.negation()?)));
        }
        if self.eat(b'(') {
            let f = self.formula()?;
            if !self.eat(b')') {
                return self.err("expected ')'");
            }
            return Ok(f);
        }
        if self.eat_str("true") {
            return Ok(Formula::True);
        }
        if self.eat_str("false") {
            return Ok(Formula::False);
        }
        self.atom()
    }

    fn two_vars(&mut self) -> Result<(Var, Var), FoParseError> {
        if !self.eat(b'(') {
            return self.err("expected '('");
        }
        let x = self.variable()?;
        if !self.eat(b',') {
            return self.err("expected ','");
        }
        let y = self.variable()?;
        if !self.eat(b')') {
            return self.err("expected ')'");
        }
        Ok((x, y))
    }

    fn one_var(&mut self) -> Result<Var, FoParseError> {
        if !self.eat(b'(') {
            return self.err("expected '('");
        }
        let x = self.variable()?;
        if !self.eat(b')') {
            return self.err("expected ')'");
        }
        Ok(x)
    }

    fn atom(&mut self) -> Result<Formula, FoParseError> {
        self.ws();
        // E(x, y)
        if self.peek() == Some(b'E') && self.src.get(self.pos + 1) == Some(&b'(') {
            self.pos += 1;
            let (x, y) = self.two_vars()?;
            return Ok(Formula::Atom(TreeAtom::Edge(x, y)));
        }
        if self.eat_str("desc") {
            let (x, y) = self.two_vars()?;
            return Ok(Formula::Atom(TreeAtom::Desc(x, y)));
        }
        if self.eat_str("sib") {
            let (x, y) = self.two_vars()?;
            return Ok(Formula::Atom(TreeAtom::SibLess(x, y)));
        }
        if self.eat_str("succ") {
            let (x, y) = self.two_vars()?;
            return Ok(Formula::Atom(TreeAtom::Succ(x, y)));
        }
        if self.eat_str("lab") {
            if !self.eat(b'(') {
                return self.err("expected '('");
            }
            let name = self.ident()?;
            let sym = self.vocab.sym(&name);
            if !self.eat(b',') {
                return self.err("expected ','");
            }
            let x = self.variable()?;
            if !self.eat(b')') {
                return self.err("expected ')'");
            }
            return Ok(Formula::Atom(TreeAtom::Lab(Label::Sym(sym), x)));
        }
        if self.eat_str("root") {
            return Ok(Formula::Atom(TreeAtom::Root(self.one_var()?)));
        }
        if self.eat_str("leaf") {
            return Ok(Formula::Atom(TreeAtom::Leaf(self.one_var()?)));
        }
        if self.eat_str("first") {
            return Ok(Formula::Atom(TreeAtom::First(self.one_var()?)));
        }
        if self.eat_str("last") {
            return Ok(Formula::Atom(TreeAtom::Last(self.one_var()?)));
        }
        if self.eat_str("val") {
            // val(a, x) = val(b, y)  |  val(a, x) = literal
            if !self.eat(b'(') {
                return self.err("expected '('");
            }
            let aname = self.ident()?;
            let a = self.vocab.attr(&aname);
            if !self.eat(b',') {
                return self.err("expected ','");
            }
            let x = self.variable()?;
            if !self.eat(b')') {
                return self.err("expected ')'");
            }
            if !self.eat(b'=') {
                return self.err("expected '=' after val(...)");
            }
            self.ws();
            if self.eat_str("val") {
                if !self.eat(b'(') {
                    return self.err("expected '('");
                }
                let bname = self.ident()?;
                let bb = self.vocab.attr(&bname);
                if !self.eat(b',') {
                    return self.err("expected ','");
                }
                let y = self.variable()?;
                if !self.eat(b')') {
                    return self.err("expected ')'");
                }
                return Ok(Formula::Atom(TreeAtom::ValEq(a, x, bb, y)));
            }
            let neg = self.eat(b'-');
            let tok = self.ident()?;
            let d = if let Ok(mut i) = tok.parse::<i64>() {
                if neg {
                    i = -i;
                }
                self.vocab.val_int(i)
            } else if neg {
                return self.err("'-' must precede an integer");
            } else {
                self.vocab.val_str(&tok)
            };
            return Ok(Formula::Atom(TreeAtom::ValConst(a, x, d)));
        }
        // x = y
        let x = self.variable()?;
        if !self.eat(b'=') {
            return self.err("expected '=' in equality atom");
        }
        let y = self.variable()?;
        Ok(Formula::Atom(TreeAtom::Eq(x, y)))
    }
}

/// Parse an FO formula from the concrete syntax.
pub fn parse_fo(src: &str, vocab: &mut Vocab) -> Result<ParsedFormula, FoParseError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
        vocab,
        vars: Vec::new(),
        by_name: HashMap::new(),
    };
    let formula = p.formula()?;
    p.ws();
    if p.pos != p.src.len() {
        return p.err("trailing input");
    }
    Ok(ParsedFormula {
        formula,
        vars: p.vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_sentence;
    use twq_tree::parse_tree;

    #[test]
    fn parses_quantifiers_and_atoms() {
        let mut v = Vocab::new();
        let p = parse_fo("A x. leaf(x) -> E y. E(y, x)", &mut v).unwrap();
        assert!(p.formula.free_vars().is_empty());
        assert_eq!(p.vars, vec!["x", "y"]);
        assert_eq!(p.var("x"), Some(Var(0)));
        assert_eq!(p.var("zzz"), None);
    }

    #[test]
    fn sentence_semantics_match_builders() {
        let mut v = Vocab::new();
        let t = parse_tree("a(b,c(d,e))", &mut v).unwrap();
        // "some leaf is a last child" — true (e, and also b? b is not last).
        let p = parse_fo("E x. leaf(x) & last(x)", &mut v).unwrap();
        assert!(eval_sentence(&t, &p.formula).unwrap());
        // "every node is a leaf" — false.
        let q = parse_fo("A x. leaf(x)", &mut v).unwrap();
        assert!(!eval_sentence(&t, &q.formula).unwrap());
    }

    #[test]
    fn value_atoms() {
        let mut v = Vocab::new();
        let t = parse_tree("a[k=1](b[k=2],c[k=1])", &mut v).unwrap();
        let p = parse_fo("E x. E y. !(x = y) & val(k, x) = val(k, y)", &mut v).unwrap();
        assert!(eval_sentence(&t, &p.formula).unwrap());
        let q = parse_fo("E x. val(k, x) = 2", &mut v).unwrap();
        assert!(eval_sentence(&t, &q.formula).unwrap());
        let r = parse_fo("E x. val(k, x) = 9", &mut v).unwrap();
        assert!(!eval_sentence(&t, &r.formula).unwrap());
    }

    #[test]
    fn structural_atoms() {
        let mut v = Vocab::new();
        let t = parse_tree("a(b,c(d))", &mut v).unwrap();
        for (src, expect) in [
            ("E x. E y. E(x, y) & lab(c, x) & lab(d, y)", true),
            ("E x. E y. desc(x, y) & lab(a, x) & lab(d, y)", true),
            ("E x. E y. sib(x, y) & lab(b, x) & lab(c, y)", true),
            ("E x. E y. sib(x, y) & lab(c, x) & lab(b, y)", false),
            ("E x. E y. succ(x, y) & lab(b, x) & lab(c, y)", true),
            ("E x. root(x) & lab(a, x)", true),
            ("E x. first(x) & lab(c, x)", false),
        ] {
            let p = parse_fo(src, &mut v).unwrap();
            assert_eq!(eval_sentence(&t, &p.formula).unwrap(), expect, "{src}");
        }
    }

    #[test]
    fn precedence_and_grouping() {
        let mut v = Vocab::new();
        let t = parse_tree("a(b)", &mut v).unwrap();
        // & binds tighter than |: false & false | true = true.
        let p = parse_fo("false & false | true", &mut v).unwrap();
        assert!(eval_sentence(&t, &p.formula).unwrap());
        // Parentheses override: false & (false | true) = false.
        let q = parse_fo("false & (false | true)", &mut v).unwrap();
        assert!(!eval_sentence(&t, &q.formula).unwrap());
        // Implication with false antecedent.
        let r = parse_fo("false -> false", &mut v).unwrap();
        assert!(eval_sentence(&t, &r.formula).unwrap());
    }

    #[test]
    fn the_papers_background_example() {
        // §2.2: ∀x (val_a(x) = d ∨ val_a(x) = val_b(x)).
        let mut v = Vocab::new();
        let t = parse_tree("s[a=d,b=q](s[a=7,b=7])", &mut v).unwrap();
        let p = parse_fo("A x. val(a, x) = d | val(a, x) = val(b, x)", &mut v).unwrap();
        assert!(eval_sentence(&t, &p.formula).unwrap());
        let t2 = parse_tree("s[a=z,b=q]", &mut v).unwrap();
        assert!(!eval_sentence(&t2, &p.formula).unwrap());
    }

    #[test]
    fn errors_are_positioned() {
        let mut v = Vocab::new();
        for src in [
            "",
            "E x",
            "E x.",
            "lab(a x)",
            "x =",
            "val(a, x)",
            "(true",
            "x y",
        ] {
            let e = parse_fo(src, &mut v);
            assert!(e.is_err(), "{src}");
        }
    }
}
