//! `k`-variable `FO(∃*)` types — the `≡_k` machinery behind Lemma 4.3.
//!
//! Two structures are `k`-equivalent (`s₁ ≡_k s₂`) when they satisfy the
//! same `FO(∃*)` formulas with `k` variables. Because an `FO(∃*)` sentence
//! `∃x₁…∃x_k θ` (with quantifier-free `θ`) holds iff *some* `k`-tuple of
//! elements realizes an atomic diagram satisfying `θ`, the `≡_k` class of a
//! structure is completely determined by the **set of atomic diagrams
//! realized by its `k`-tuples**. This module computes that set directly.
//!
//! Distinguished constants (the paper's `(s; i₁,…,iₙ)` notation) are
//! handled by appending the constant nodes to every tuple, so diagrams
//! range over `k + n` positions.
//!
//! Complexity is `O(|t|^k · (k+n)² · |atoms|)` — intended for the small
//! instances of experiment E10, not for large trees.

use std::collections::BTreeSet;

use twq_tree::{AttrId, Label, NodeId, Tree, Value};

/// What the atomic diagrams may talk about. Fixing this up front makes
/// diagrams canonical across structures (Lemma 4.3 compares types of
/// *different* strings over the same finite `D`).
#[derive(Debug, Clone)]
pub struct TypeConfig {
    /// Number of quantifiable variables `k`.
    pub k: usize,
    /// The labels `σ` for which `O_σ` may appear.
    pub labels: Vec<Label>,
    /// The attributes usable in `val` atoms.
    pub attrs: Vec<AttrId>,
    /// The finite `D ⊆ 𝔻` for `val_a(x) = d` atoms.
    pub dvalues: Vec<Value>,
}

/// The canonical atomic diagram of one tuple: a bit vector in a fixed atom
/// order derived from the [`TypeConfig`].
pub type Diagram = Vec<u8>;

/// The `≡_k` type of a structure: the set of realized diagrams.
pub type KType = BTreeSet<Diagram>;

fn diagram(tree: &Tree, elems: &[NodeId], cfg: &TypeConfig) -> Diagram {
    let m = elems.len();
    let mut bits: Diagram = Vec::new();
    // Unary atoms.
    for &u in elems {
        for &l in &cfg.labels {
            bits.push(u8::from(tree.label(u) == l));
        }
        bits.push(u8::from(tree.is_root(u)));
        bits.push(u8::from(tree.is_leaf(u)));
        bits.push(u8::from(tree.is_first(u)));
        bits.push(u8::from(tree.is_last(u)));
        for &a in &cfg.attrs {
            for &d in &cfg.dvalues {
                bits.push(u8::from(tree.attr(u, a) == d));
            }
        }
    }
    // Binary atoms over ordered pairs (including i == j for val
    // comparisons between different attributes; structural atoms on (u,u)
    // are constant-false and harmless).
    for i in 0..m {
        for j in 0..m {
            let (u, v) = (elems[i], elems[j]);
            bits.push(u8::from(u == v));
            bits.push(u8::from(tree.parent(v) == Some(u))); // E(u, v)
            bits.push(u8::from(sib_less(tree, u, v)));
            bits.push(u8::from(tree.is_strict_ancestor(u, v)));
            bits.push(u8::from(tree.next_sibling(u) == Some(v))); // succ
            for &a in &cfg.attrs {
                for &b in &cfg.attrs {
                    bits.push(u8::from(tree.attr(u, a) == tree.attr(v, b)));
                }
            }
        }
    }
    bits
}

fn sib_less(tree: &Tree, u: NodeId, v: NodeId) -> bool {
    if u == v || tree.parent(u) != tree.parent(v) {
        return false;
    }
    let mut cur = tree.next_sibling(u);
    while let Some(s) = cur {
        if s == v {
            return true;
        }
        cur = tree.next_sibling(s);
    }
    false
}

/// Compute `tp_k(tree; constants)` — the set of diagrams realized by
/// `k`-tuples of nodes, each extended with the constant nodes.
pub fn ktype(tree: &Tree, constants: &[NodeId], cfg: &TypeConfig) -> KType {
    let nodes: Vec<NodeId> = tree.node_ids().collect();
    let mut out = KType::new();
    let mut tuple: Vec<NodeId> = vec![tree.root(); cfg.k + constants.len()];
    tuple[cfg.k..].copy_from_slice(constants);
    enumerate(tree, &nodes, cfg, &mut tuple, 0, &mut out);
    out
}

fn enumerate(
    tree: &Tree,
    nodes: &[NodeId],
    cfg: &TypeConfig,
    tuple: &mut [NodeId],
    i: usize,
    out: &mut KType,
) {
    if i == cfg.k {
        out.insert(diagram(tree, tuple, cfg));
        return;
    }
    for &u in nodes {
        tuple[i] = u;
        enumerate(tree, nodes, cfg, tuple, i + 1, out);
    }
}

/// Whether two structures (with constants) are `≡_k`-equivalent.
pub fn equivalent(t1: &Tree, c1: &[NodeId], t2: &Tree, c2: &[NodeId], cfg: &TypeConfig) -> bool {
    assert_eq!(c1.len(), c2.len(), "constant lists must align");
    ktype(t1, c1, cfg) == ktype(t2, c2, cfg)
}

/// Count the distinct `≡_k` classes realized by a family of structures —
/// experiment E10 compares this against the paper's `exp₃(p(k + |D|))`
/// upper bound (Lemma 4.3(2)).
pub fn count_classes<'a>(
    structures: impl IntoIterator<Item = &'a Tree>,
    cfg: &TypeConfig,
) -> usize {
    let mut classes: BTreeSet<KType> = BTreeSet::new();
    for t in structures {
        classes.insert(ktype(t, &[], cfg));
    }
    classes.len()
}

/// Systematic check of the Lemma 4.3(1) *composition* property on strings:
/// if `tp_k(f₁) = tp_k(f₂)` and `tp_k(g₁) = tp_k(g₂)` then
/// `tp_k(f₁·g₁) = tp_k(f₂·g₂)` — the type of a concatenation depends only
/// on the types of the parts. Enumerates **all** strings over `pool` of
/// length `1..=max_len`, groups them by type, and verifies every cross
/// pair. Returns the number of (f, g) pairs checked; panics on the first
/// violation (this is a test-support function).
///
/// Exponential in `max_len` — intended for the small instances of
/// experiment E10's companion check.
pub fn check_composition_on_strings(
    sym: twq_tree::SymId,
    attr: AttrId,
    pool: &[Value],
    max_len: usize,
    cfg: &TypeConfig,
) -> usize {
    use twq_tree::generate::monadic_tree;
    // Enumerate strings as value vectors.
    let mut strings: Vec<Vec<Value>> = Vec::new();
    let mut frontier: Vec<Vec<Value>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for s in &frontier {
            for &d in pool {
                let mut s2 = s.clone();
                s2.push(d);
                strings.push(s2.clone());
                next.push(s2);
            }
        }
        frontier = next;
    }
    // Group by type.
    let mut by_type: std::collections::BTreeMap<KType, Vec<usize>> =
        std::collections::BTreeMap::new();
    let trees: Vec<twq_tree::Tree> = strings.iter().map(|s| monadic_tree(sym, attr, s)).collect();
    for (i, t) in trees.iter().enumerate() {
        by_type.entry(ktype(t, &[], cfg)).or_default().push(i);
    }
    // For every pair of same-type f's and same-type g's, the concatenation
    // types must agree. Checking every pair is quadratic; sample the first
    // two representatives per class (sufficient to falsify).
    let mut checked = 0usize;
    let classes: Vec<&Vec<usize>> = by_type.values().collect();
    for fclass in &classes {
        let (f1, f2) = (fclass[0], fclass[fclass.len() - 1]);
        for gclass in &classes {
            let (g1, g2) = (gclass[0], gclass[gclass.len() - 1]);
            let c1: Vec<Value> = strings[f1].iter().chain(&strings[g1]).copied().collect();
            let c2: Vec<Value> = strings[f2].iter().chain(&strings[g2]).copied().collect();
            let t1 = monadic_tree(sym, attr, &c1);
            let t2 = monadic_tree(sym, attr, &c2);
            assert!(
                equivalent(&t1, &[], &t2, &[], cfg),
                "Lemma 4.3(1) violated: types of parts equal but composition types differ"
            );
            checked += 1;
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_tree::generate::monadic_tree;
    use twq_tree::{Label, Vocab};

    fn string_cfg(vocab: &mut Vocab, k: usize, dvals: &[i64]) -> (TypeConfig, Vec<Value>) {
        let s = vocab.sym("s");
        let a = vocab.attr("a");
        let pool: Vec<Value> = dvals.iter().map(|&d| vocab.val_int(d)).collect();
        (
            TypeConfig {
                k,
                labels: vec![Label::Sym(s)],
                attrs: vec![a],
                dvalues: pool.clone(),
            },
            pool,
        )
    }

    fn mk(vocab: &mut Vocab, vals: &[Value]) -> Tree {
        let s = vocab.sym("s");
        let a = vocab.attr("a");
        monadic_tree(s, a, vals)
    }

    #[test]
    fn identical_strings_are_equivalent() {
        let mut v = Vocab::new();
        let (cfg, pool) = string_cfg(&mut v, 2, &[1, 2]);
        let w = vec![pool[0], pool[1], pool[0]];
        let t1 = mk(&mut v, &w);
        let t2 = mk(&mut v, &w);
        assert!(equivalent(&t1, &[], &t2, &[], &cfg));
    }

    #[test]
    fn different_content_distinguished() {
        let mut v = Vocab::new();
        let (cfg, pool) = string_cfg(&mut v, 1, &[1, 2]);
        let t1 = mk(&mut v, &[pool[0], pool[0]]);
        let t2 = mk(&mut v, &[pool[0], pool[1]]);
        // ∃x val_a(x) = 2 separates them with a single variable.
        assert!(!equivalent(&t1, &[], &t2, &[], &cfg));
    }

    #[test]
    fn k1_cannot_distinguish_order() {
        // With one variable and no constants, "12" and "21" realize the
        // same unary diagrams (both have a root with some value and a leaf
        // with the other... they differ in *which* value sits at the root,
        // so they ARE distinguishable; use values at both ends equal
        // instead: "121" vs "121" reversed is identical. Use a genuinely
        // indistinguishable pair: "112" vs "112" with a longer tail the
        // single variable cannot order: "1122" vs "1212" share all unary
        // diagrams? The root carries 1 and the leaf carries 2 in both; the
        // middle positions carry {1, 2} in both, as non-root non-leaf
        // positions. So k = 1 cannot separate them.
        let mut v = Vocab::new();
        let (cfg, pool) = string_cfg(&mut v, 1, &[1, 2]);
        let (d1, d2) = (pool[0], pool[1]);
        let t1 = mk(&mut v, &[d1, d1, d2, d2]);
        let t2 = mk(&mut v, &[d1, d2, d1, d2]);
        assert!(equivalent(&t1, &[], &t2, &[], &cfg));
        // …but two variables see E(x, y) with the value pattern.
        let cfg2 = TypeConfig { k: 2, ..cfg };
        assert!(!equivalent(&t1, &[], &t2, &[], &cfg2));
    }

    #[test]
    fn constants_refine_types() {
        let mut v = Vocab::new();
        let (cfg, pool) = string_cfg(&mut v, 1, &[1, 2]);
        let t = mk(&mut v, &[pool[0], pool[1]]);
        let root = t.root();
        let leaf = t.first_child(root).unwrap();
        // (t; root) vs (t; leaf) differ already in the constant's diagram.
        assert!(!equivalent(&t, &[root], &t, &[leaf], &cfg));
    }

    #[test]
    fn class_count_grows_with_d_but_not_length() {
        let mut v = Vocab::new();
        let (cfg, pool) = string_cfg(&mut v, 1, &[1, 2]);
        // All strings of length ≤ 3 over {1}: only lengths distinguish up
        // to the point the single variable saturates.
        let mut trees = Vec::new();
        for len in 1..=4usize {
            for mask in 0..(1u32 << len) {
                let vals: Vec<Value> = (0..len)
                    .map(|i| pool[usize::from(mask >> i & 1 == 1)])
                    .collect();
                trees.push(mk(&mut v, &vals));
            }
        }
        let classes = count_classes(trees.iter(), &cfg);
        // Sanity: more than one class, far fewer classes than strings.
        assert!(classes > 1);
        assert!(classes < trees.len());
    }

    #[test]
    fn lemma_43_composition_systematic() {
        let mut v = Vocab::new();
        let (cfg, pool) = string_cfg(&mut v, 1, &[1, 2]);
        let s = v.sym_opt("s").unwrap();
        let a = v.attr_opt("a").unwrap();
        let checked = super::check_composition_on_strings(s, a, &pool, 4, &cfg);
        assert!(checked > 4, "checked {checked} class pairs");
    }

    #[test]
    fn lemma_43_composition_flavor() {
        // Lemma 4.3(1) flavor on concatenation: equal types of parts give
        // equal types of compositions. "1122" ≡₁ "1212" (see above), so
        // appending the same suffix preserves ≡₁.
        let mut v = Vocab::new();
        let (cfg, pool) = string_cfg(&mut v, 1, &[1, 2]);
        let (d1, d2) = (pool[0], pool[1]);
        let f1 = [d1, d1, d2, d2];
        let f2 = [d1, d2, d1, d2];
        let suffix = [d2, d1];
        let c1: Vec<Value> = f1.iter().chain(&suffix).copied().collect();
        let c2: Vec<Value> = f2.iter().chain(&suffix).copied().collect();
        let t1 = mk(&mut v, &c1);
        let t2 = mk(&mut v, &c2);
        assert!(equivalent(&t1, &[], &t2, &[], &cfg));
    }
}
