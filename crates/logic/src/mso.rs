//! Monadic second-order logic over trees — the yardstick of
//! Proposition 7.2 ("when `A = ∅`, `tw^l = MSO`") and of the open
//! question the paper closes Section 1 with (does `tw` capture the
//! regular tree languages?).
//!
//! MSO extends FO with quantification over *sets* of nodes. Evaluation
//! here is the textbook naive one: set quantifiers enumerate all `2^|t|`
//! subsets, so this module is for **small witnesses only** — cross-checking
//! automata against logically-specified regular properties (experiment
//! E12's companion checks), not for production query evaluation. Every
//! entry point takes a node cap and refuses larger inputs rather than
//! silently exploding.

use twq_tree::Tree;

use crate::eval::{eval_atom, Assignment};
use crate::fo::{TreeAtom, Var};

/// A second-order (set) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetVar(pub u16);

impl std::fmt::Display for SetVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// An MSO formula: FO atoms, membership atoms, boolean connectives, and
/// both first- and second-order quantifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum MsoFormula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A first-order atom.
    Atom(TreeAtom),
    /// `x ∈ X`.
    In(Var, SetVar),
    /// Negation.
    Not(Box<MsoFormula>),
    /// Conjunction.
    And(Vec<MsoFormula>),
    /// Disjunction.
    Or(Vec<MsoFormula>),
    /// `∃x φ`.
    Exists(Var, Box<MsoFormula>),
    /// `∀x φ`.
    Forall(Var, Box<MsoFormula>),
    /// `∃X φ` — over all subsets of `Dom(t)`.
    ExistsSet(SetVar, Box<MsoFormula>),
    /// `∀X φ`.
    ForallSet(SetVar, Box<MsoFormula>),
}

impl MsoFormula {
    /// Syntactic size.
    pub fn size(&self) -> usize {
        match self {
            MsoFormula::True | MsoFormula::False | MsoFormula::Atom(_) | MsoFormula::In(_, _) => 1,
            MsoFormula::Not(f) => 1 + f.size(),
            MsoFormula::And(fs) | MsoFormula::Or(fs) => {
                1 + fs.iter().map(MsoFormula::size).sum::<usize>()
            }
            MsoFormula::Exists(_, f)
            | MsoFormula::Forall(_, f)
            | MsoFormula::ExistsSet(_, f)
            | MsoFormula::ForallSet(_, f) => 1 + f.size(),
        }
    }
}

/// Error for oversized MSO inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTooLarge {
    /// The tree size.
    pub nodes: usize,
    /// The configured cap.
    pub cap: usize,
}

impl std::fmt::Display for TreeTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "naive MSO evaluation over 2^{} subsets refused (cap 2^{})",
            self.nodes, self.cap
        )
    }
}

impl std::error::Error for TreeTooLarge {}

struct SetAsg {
    /// Bitmask per set variable (trees are capped well below 64 nodes).
    slots: Vec<Option<u64>>,
}

impl SetAsg {
    fn get(&self, x: SetVar) -> u64 {
        self.slots
            .get(x.0 as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("unbound set variable {x}"))
    }

    fn set(&mut self, x: SetVar, mask: u64) {
        let i = x.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(mask);
    }

    fn unset(&mut self, x: SetVar) {
        if let Some(s) = self.slots.get_mut(x.0 as usize) {
            *s = None;
        }
    }
}

fn eval_inner(tree: &Tree, f: &MsoFormula, asg: &mut Assignment, sets: &mut SetAsg) -> bool {
    match f {
        MsoFormula::True => true,
        MsoFormula::False => false,
        MsoFormula::Atom(a) => eval_atom(tree, a, asg).unwrap_or_else(|e| panic!("{e}")),
        MsoFormula::In(x, set) => {
            let u = asg
                .get(*x)
                .unwrap_or_else(|| panic!("unbound variable {x}"));
            sets.get(*set) >> u.0 & 1 == 1
        }
        MsoFormula::Not(g) => !eval_inner(tree, g, asg, sets),
        MsoFormula::And(gs) => gs.iter().all(|g| eval_inner(tree, g, asg, sets)),
        MsoFormula::Or(gs) => gs.iter().any(|g| eval_inner(tree, g, asg, sets)),
        MsoFormula::Exists(x, g) => {
            for u in tree.node_ids() {
                asg.set(*x, u);
                if eval_inner(tree, g, asg, sets) {
                    asg.unset(*x);
                    return true;
                }
            }
            asg.unset(*x);
            false
        }
        MsoFormula::Forall(x, g) => {
            for u in tree.node_ids() {
                asg.set(*x, u);
                if !eval_inner(tree, g, asg, sets) {
                    asg.unset(*x);
                    return false;
                }
            }
            asg.unset(*x);
            true
        }
        MsoFormula::ExistsSet(x, g) => {
            let n = tree.len() as u32;
            for mask in 0..(1u64 << n) {
                sets.set(*x, mask);
                if eval_inner(tree, g, asg, sets) {
                    sets.unset(*x);
                    return true;
                }
            }
            sets.unset(*x);
            false
        }
        MsoFormula::ForallSet(x, g) => {
            let n = tree.len() as u32;
            for mask in 0..(1u64 << n) {
                sets.set(*x, mask);
                if !eval_inner(tree, g, asg, sets) {
                    sets.unset(*x);
                    return false;
                }
            }
            sets.unset(*x);
            true
        }
    }
}

/// Evaluate an MSO sentence on a tree of at most `cap` nodes (default
/// callers use [`eval_mso`]'s cap of 16).
pub fn eval_mso_capped(
    tree: &Tree,
    formula: &MsoFormula,
    cap: usize,
) -> Result<bool, TreeTooLarge> {
    if tree.len() > cap || tree.len() > 60 {
        return Err(TreeTooLarge {
            nodes: tree.len(),
            cap,
        });
    }
    let mut asg = Assignment::default();
    let mut sets = SetAsg { slots: Vec::new() };
    Ok(eval_inner(tree, formula, &mut asg, &mut sets))
}

/// Evaluate an MSO sentence on a small tree (≤ 16 nodes).
pub fn eval_mso(tree: &Tree, formula: &MsoFormula) -> Result<bool, TreeTooLarge> {
    eval_mso_capped(tree, formula, 16)
}

/// Ergonomic constructors.
pub mod mbuild {
    use super::*;
    use crate::fo::Formula;

    /// Lift an FO formula into MSO.
    pub fn fo(f: &Formula) -> MsoFormula {
        match f {
            Formula::True => MsoFormula::True,
            Formula::False => MsoFormula::False,
            Formula::Atom(a) => MsoFormula::Atom(a.clone()),
            Formula::Not(g) => MsoFormula::Not(Box::new(fo(g))),
            Formula::And(gs) => MsoFormula::And(gs.iter().map(fo).collect()),
            Formula::Or(gs) => MsoFormula::Or(gs.iter().map(fo).collect()),
            Formula::Exists(x, g) => MsoFormula::Exists(*x, Box::new(fo(g))),
            Formula::Forall(x, g) => MsoFormula::Forall(*x, Box::new(fo(g))),
        }
    }

    /// `x ∈ X`.
    pub fn member(x: Var, set: SetVar) -> MsoFormula {
        MsoFormula::In(x, set)
    }

    /// Negation.
    pub fn not(f: MsoFormula) -> MsoFormula {
        MsoFormula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(fs: impl IntoIterator<Item = MsoFormula>) -> MsoFormula {
        MsoFormula::And(fs.into_iter().collect())
    }

    /// Disjunction.
    pub fn or(fs: impl IntoIterator<Item = MsoFormula>) -> MsoFormula {
        MsoFormula::Or(fs.into_iter().collect())
    }

    /// Implication.
    pub fn implies(a: MsoFormula, b: MsoFormula) -> MsoFormula {
        or([not(a), b])
    }

    /// `∃x φ`.
    pub fn exists(x: Var, f: MsoFormula) -> MsoFormula {
        MsoFormula::Exists(x, Box::new(f))
    }

    /// `∀x φ`.
    pub fn forall(x: Var, f: MsoFormula) -> MsoFormula {
        MsoFormula::Forall(x, Box::new(f))
    }

    /// `∃X φ`.
    pub fn exists_set(x: SetVar, f: MsoFormula) -> MsoFormula {
        MsoFormula::ExistsSet(x, Box::new(f))
    }

    /// `∀X φ`.
    pub fn forall_set(x: SetVar, f: MsoFormula) -> MsoFormula {
        MsoFormula::ForallSet(x, Box::new(f))
    }
}

/// The classic genuinely-MSO sentence: **the number of `σ`-nodes is
/// even**. FO cannot count modulo 2; MSO can, by guessing the set of
/// odd-indexed `σ`-positions along the document order… here phrased via
/// a split: ∃X such that σ-nodes alternate membership along document
/// order (first σ ∈ X, consecutive σs alternate, last σ ∉ X requires the
/// count even — we instead assert the last σ is in X iff the count is
/// odd, so evenness is "last σ ∉ X").
///
/// For implementation simplicity over *unranked* document order, the
/// sentence here uses the descendant-based successor on σ-nodes of a
/// **monadic** tree; callers use it on chains (strings), where document
/// order is `≺`.
pub fn even_sigma_nodes_on_chains(sym: twq_tree::SymId) -> MsoFormula {
    use mbuild::*;
    use twq_tree::Label;
    let x = Var(0);
    let y = Var(1);
    let z = Var(2);
    let set = SetVar(0);
    let is_sig = |v: Var| MsoFormula::Atom(TreeAtom::Lab(Label::Sym(sym), v));
    // succ_σ(x, y): both σ, x ≺ y, no σ strictly between.
    let succ_sigma = and([
        is_sig(x),
        is_sig(y),
        MsoFormula::Atom(TreeAtom::Desc(x, y)),
        not(exists(
            z,
            and([
                is_sig(z),
                MsoFormula::Atom(TreeAtom::Desc(x, z)),
                MsoFormula::Atom(TreeAtom::Desc(z, y)),
            ]),
        )),
    ]);
    // first σ: no σ before it; last σ: no σ after it.
    let first_sigma = |v: Var, other: Var| {
        and([
            is_sig(v),
            not(exists(
                other,
                and([is_sig(other), MsoFormula::Atom(TreeAtom::Desc(other, v))]),
            )),
        ])
    };
    let last_sigma = |v: Var, other: Var| {
        and([
            is_sig(v),
            not(exists(
                other,
                and([is_sig(other), MsoFormula::Atom(TreeAtom::Desc(v, other))]),
            )),
        ])
    };
    // X marks σ-positions with odd index (1-based): first ∈ X, membership
    // alternates along succ_σ, and the last has even total iff last ∉ X…
    // wait: last σ has index = count, so count even ⇔ last ∉ X is wrong —
    // odd indices are in X, so count even ⇔ last has even index ⇔ last ∉ X.
    exists_set(
        set,
        and([
            forall(x, implies(first_sigma(x, y), member(x, set))),
            forall(
                x,
                forall(
                    y,
                    implies(
                        succ_sigma.clone(),
                        or([
                            and([member(x, set), not(member(y, set))]),
                            and([not(member(x, set)), member(y, set)]),
                        ]),
                    ),
                ),
            ),
            // Alternation only: still need it to be *consistent*, which the
            // two clauses above force uniquely on σ-nodes; the verdict:
            forall(x, implies(last_sigma(x, y), not(member(x, set)))),
            // Edge case: no σ at all → vacuously true (count 0 is even).
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::mbuild::*;
    use super::*;
    use twq_tree::generate::monadic_tree;
    use twq_tree::{parse_tree, Vocab};

    #[test]
    fn fo_lifting_agrees_with_fo_eval() {
        let mut v = Vocab::new();
        let t = parse_tree("a(b,c(d))", &mut v).unwrap();
        let p = crate::parse::parse_fo("E x. leaf(x) & last(x)", &mut v).unwrap();
        let lifted = fo(&p.formula);
        assert_eq!(
            eval_mso(&t, &lifted).unwrap(),
            crate::eval::eval_sentence(&t, &p.formula).unwrap()
        );
    }

    #[test]
    fn set_quantifier_existence() {
        // ∃X (root ∈ X): trivially true.
        let mut v = Vocab::new();
        let t = parse_tree("a(b)", &mut v).unwrap();
        let x = Var(0);
        let set = SetVar(0);
        let f = exists_set(
            set,
            exists(
                x,
                and([MsoFormula::Atom(TreeAtom::Root(x)), member(x, set)]),
            ),
        );
        assert!(eval_mso(&t, &f).unwrap());
        // ∀X (root ∈ X): false (the empty set).
        let g = forall_set(
            SetVar(0),
            exists(
                x,
                and([MsoFormula::Atom(TreeAtom::Root(x)), member(x, set)]),
            ),
        );
        assert!(!eval_mso(&t, &g).unwrap());
    }

    #[test]
    fn even_sigma_counting_beats_fo() {
        let mut v = Vocab::new();
        let s = v.sym("s");
        let a = v.attr("a");
        let one = v.val_int(1);
        let phi = even_sigma_nodes_on_chains(s);
        for len in 1..=8usize {
            let t = monadic_tree(s, a, &vec![one; len]);
            assert_eq!(
                eval_mso(&t, &phi).unwrap(),
                len % 2 == 0,
                "chain length {len}"
            );
        }
    }

    #[test]
    fn even_sigma_on_branching_trees() {
        // The sentence's succ_σ is phrased over ≺, which on chains is the
        // position order; on a star every leaf is a ≺-successor of the
        // root with nothing between, so alternation forces all leaves out
        // of phase with the root — the sentence then holds iff the root
        // is in X and every leaf is not, and the last-σ clause inspects
        // the leaves: a star with k leaves satisfies it iff the leaves
        // (σ-count k+1 total, leaves at "index 2") are consistent. We
        // simply pin the behavior on tiny stars as a regression guard.
        let mut v = Vocab::new();
        let s = v.sym("s");
        let phi = even_sigma_nodes_on_chains(s);
        let t1 = twq_tree::generate::star_tree(s, 1); // chain of 2: even ✓
        assert!(eval_mso(&t1, &phi).unwrap());
    }

    #[test]
    fn size_cap_enforced() {
        let mut v = Vocab::new();
        let s = v.sym("s");
        let t = twq_tree::generate::star_tree(s, 30);
        let phi = even_sigma_nodes_on_chains(s);
        assert!(eval_mso(&t, &phi).is_err());
        assert!(eval_mso_capped(&t, &phi, 40).is_ok());
    }
}
