//! Relational storage and the FO logic that manipulates it (Section 3).
//!
//! A `tw^{r,l}` automaton owns relation names `X̄ = X₁,…,X_k` of fixed
//! arities, interpreted by finite relations over `D`. Guards `ξ` and
//! register updates `ψ` are FO formulas over the vocabulary
//! `X̄ ∪ {a : a ∈ A} ∪ {d : d ∈ D}` where each attribute name `a` is a
//! *constant* denoting `val_a(u)` at the current node `u`, and each `d` is
//! a constant denoting itself. Quantification is over the **active domain**
//! of the store (plus the interpreted constants) — "there is no access to
//! the tree structure".

use std::collections::BTreeSet;
use std::fmt;

use twq_tree::{AttrId, NodeId, Tree, Value, Vocab};

use crate::fo::Var;

/// A register index (`X_{i+1}` in the paper's 1-based naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u8);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0 as usize + 1)
    }
}

/// A finite relation over `D` with a fixed arity, stored as a sorted set of
/// tuples so that equality, hashing, and set operations are canonical.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Box<[Value]>>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// A unary singleton `{d}` — the shape `tw^l` registers are limited to.
    pub fn singleton(d: Value) -> Self {
        let mut r = Relation::empty(1);
        r.insert(vec![d]);
        r
    }

    /// Build from tuples; all must have the given arity.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Vec<Value>>) -> Self {
        let mut r = Relation::empty(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// The arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn insert(&mut self, tuple: Vec<Value>) {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        self.tuples.insert(tuple.into_boxed_slice());
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        tuple.len() == self.arity && self.tuples.contains(tuple)
    }

    /// Iterate over tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.tuples.iter().map(|t| &**t)
    }

    /// Union with another relation of the same arity (the `atp` combiner).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn union_with(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        for t in other.iter() {
            self.tuples.insert(t.into());
        }
    }

    /// All values occurring in any tuple.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.tuples.iter().flat_map(|t| t.iter().copied())
    }

    /// If this is a unary singleton, its value.
    pub fn as_singleton(&self) -> Option<Value> {
        if self.arity == 1 && self.tuples.len() == 1 {
            self.tuples.iter().next().map(|t| t[0])
        } else {
            None
        }
    }

    /// Render with the given vocabulary.
    pub fn display(&self, vocab: &Vocab) -> String {
        let mut parts = Vec::with_capacity(self.len());
        for t in self.iter() {
            let vals: Vec<String> = t.iter().map(|&v| vocab.value_display(v)).collect();
            parts.push(format!("({})", vals.join(",")));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

/// The relational store `τ` of an automaton: one relation per register.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Store {
    regs: Vec<Relation>,
}

impl Store {
    /// A store with the given register arities, all registers empty.
    pub fn with_arities(arities: &[usize]) -> Self {
        Store {
            regs: arities.iter().map(|&a| Relation::empty(a)).collect(),
        }
    }

    /// Number of registers (`k`).
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Read register `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: RegId) -> &Relation {
        &self.regs[i.0 as usize]
    }

    /// Replace register `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the arity changes.
    pub fn set(&mut self, i: RegId, rel: Relation) {
        let slot = &mut self.regs[i.0 as usize];
        assert_eq!(slot.arity(), rel.arity(), "register arity is fixed");
        *slot = rel;
    }

    /// The arity of register `i`.
    pub fn arity(&self, i: RegId) -> usize {
        self.regs[i.0 as usize].arity()
    }

    /// Active domain of the store: every value in every register, sorted
    /// and deduplicated.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self.regs.iter().flat_map(|r| r.values()).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Total number of tuples across registers (a space measure for the
    /// PSPACE experiments).
    pub fn total_tuples(&self) -> usize {
        self.regs.iter().map(Relation::len).sum()
    }
}

/// A term of the store logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum STerm {
    /// A first-order variable ranging over the active domain.
    Var(Var),
    /// The constant `a` — interpreted as `val_a(u)` at the current node.
    Attr(AttrId),
    /// The constant `d ∈ D ∪ {⊥}` — interpreted as itself.
    Const(Value),
}

/// An atomic formula of the store logic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SAtom {
    /// `X_i(t̄)`.
    Rel(RegId, Vec<STerm>),
    /// `t₁ = t₂`.
    Eq(STerm, STerm),
}

/// An FO formula over the store vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SFormula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// An atom.
    Atom(SAtom),
    /// Negation.
    Not(Box<SFormula>),
    /// n-ary conjunction.
    And(Vec<SFormula>),
    /// n-ary disjunction.
    Or(Vec<SFormula>),
    /// Existential quantification over the active domain.
    Exists(Var, Box<SFormula>),
    /// Universal quantification over the active domain.
    Forall(Var, Box<SFormula>),
}

impl SFormula {
    /// Free variables, sorted and deduplicated. The sorted order also fixes
    /// the column order of relations computed by [`eval_query`].
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        match self {
            SFormula::True | SFormula::False => {}
            SFormula::Atom(a) => {
                let terms: Vec<&STerm> = match a {
                    SAtom::Rel(_, ts) => ts.iter().collect(),
                    SAtom::Eq(s, t) => vec![s, t],
                };
                for t in terms {
                    if let STerm::Var(v) = t {
                        if !bound.contains(v) {
                            out.push(*v);
                        }
                    }
                }
            }
            SFormula::Not(f) => f.collect_free(bound, out),
            SFormula::And(fs) | SFormula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            SFormula::Exists(v, f) | SFormula::Forall(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// Constants `d` mentioned in the formula.
    pub fn constants(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.walk_terms(&mut |t| {
            if let STerm::Const(d) = t {
                out.push(*d);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Attribute constants mentioned in the formula.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        self.walk_terms(&mut |t| {
            if let STerm::Attr(a) = t {
                out.push(*a);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    fn walk_terms(&self, f: &mut impl FnMut(&STerm)) {
        match self {
            SFormula::True | SFormula::False => {}
            SFormula::Atom(SAtom::Rel(_, ts)) => ts.iter().for_each(&mut *f),
            SFormula::Atom(SAtom::Eq(s, t)) => {
                f(s);
                f(t);
            }
            SFormula::Not(g) => g.walk_terms(f),
            SFormula::And(gs) | SFormula::Or(gs) => {
                for g in gs {
                    g.walk_terms(f);
                }
            }
            SFormula::Exists(_, g) | SFormula::Forall(_, g) => g.walk_terms(f),
        }
    }

    /// Registers mentioned in the formula.
    pub fn registers(&self) -> Vec<RegId> {
        let mut out = Vec::new();
        self.walk_atoms(&mut |a| {
            if let SAtom::Rel(r, _) = a {
                out.push(*r);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    fn walk_atoms(&self, f: &mut impl FnMut(&SAtom)) {
        match self {
            SFormula::True | SFormula::False => {}
            SFormula::Atom(a) => f(a),
            SFormula::Not(g) => g.walk_atoms(f),
            SFormula::And(gs) | SFormula::Or(gs) => {
                for g in gs {
                    g.walk_atoms(f);
                }
            }
            SFormula::Exists(_, g) | SFormula::Forall(_, g) => g.walk_atoms(f),
        }
    }

    /// Whether the formula is quantifier-free (required for `tw^l` and `TW`
    /// updates, Definition 5.1).
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            SFormula::True | SFormula::False | SFormula::Atom(_) => true,
            SFormula::Not(f) => f.is_quantifier_free(),
            SFormula::And(fs) | SFormula::Or(fs) => fs.iter().all(SFormula::is_quantifier_free),
            SFormula::Exists(_, _) | SFormula::Forall(_, _) => false,
        }
    }

    /// Render with the given vocabulary.
    pub fn display(&self, vocab: &Vocab) -> String {
        let term = |t: &STerm| -> String {
            match t {
                STerm::Var(x) => x.to_string(),
                STerm::Attr(a) => vocab.attr_name(*a).to_owned(),
                STerm::Const(d) => vocab.value_display(*d),
            }
        };
        match self {
            SFormula::True => "true".into(),
            SFormula::False => "false".into(),
            SFormula::Atom(SAtom::Eq(a, b)) => format!("{} = {}", term(a), term(b)),
            SFormula::Atom(SAtom::Rel(r, ts)) => {
                let args: Vec<String> = ts.iter().map(term).collect();
                format!("{r}({})", args.join(","))
            }
            SFormula::Not(f) => format!("¬({})", f.display(vocab)),
            SFormula::And(fs) => {
                if fs.is_empty() {
                    "true".into()
                } else {
                    fs.iter()
                        .map(|f| format!("({})", f.display(vocab)))
                        .collect::<Vec<_>>()
                        .join(" ∧ ")
                }
            }
            SFormula::Or(fs) => {
                if fs.is_empty() {
                    "false".into()
                } else {
                    fs.iter()
                        .map(|f| format!("({})", f.display(vocab)))
                        .collect::<Vec<_>>()
                        .join(" ∨ ")
                }
            }
            SFormula::Exists(x, f) => format!("∃{x} ({})", f.display(vocab)),
            SFormula::Forall(x, f) => format!("∀{x} ({})", f.display(vocab)),
        }
    }

    /// Syntactic size (the `|ξ|` of Definition 3.1).
    pub fn size(&self) -> usize {
        match self {
            SFormula::True | SFormula::False | SFormula::Atom(_) => 1,
            SFormula::Not(f) => 1 + f.size(),
            SFormula::And(fs) | SFormula::Or(fs) => {
                1 + fs.iter().map(SFormula::size).sum::<usize>()
            }
            SFormula::Exists(_, f) | SFormula::Forall(_, f) => 1 + f.size(),
        }
    }
}

/// The interpretation of attribute constants at the current node: a dense
/// map `AttrId → Value` (missing attributes read `⊥`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrEnv {
    vals: Vec<Value>,
}

impl AttrEnv {
    /// The attribute environment of node `u` in `tree`.
    pub fn of(tree: &Tree, u: NodeId) -> Self {
        AttrEnv {
            vals: (0..tree.attr_columns() as u16)
                .map(|a| tree.attr(u, AttrId(a)))
                .collect(),
        }
    }

    /// An environment from explicit pairs (testing convenience).
    pub fn from_pairs(pairs: &[(AttrId, Value)]) -> Self {
        let mut vals = Vec::new();
        for &(a, v) in pairs {
            let i = a.0 as usize;
            if i >= vals.len() {
                vals.resize(i + 1, Value::BOT);
            }
            vals[i] = v;
        }
        AttrEnv { vals }
    }

    /// The value of attribute `a` (`⊥` when unset).
    #[inline]
    pub fn get(&self, a: AttrId) -> Value {
        self.vals.get(a.0 as usize).copied().unwrap_or(Value::BOT)
    }

    /// Every value in the environment (they join the active domain).
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.vals.iter().copied()
    }
}

fn active_domain(store: &Store, env: &AttrEnv, formula: &SFormula) -> Vec<Value> {
    let mut dom = store.active_domain();
    dom.extend(formula.constants());
    for a in formula.attrs() {
        dom.push(env.get(a));
    }
    dom.sort_unstable();
    dom.dedup();
    dom
}

/// A variable assignment for store formulas.
#[derive(Debug, Clone, Default)]
struct SAsg {
    slots: Vec<Option<Value>>,
}

impl SAsg {
    fn get(&self, v: Var) -> Option<Value> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    fn set(&mut self, v: Var, d: Value) {
        let i = v.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(d);
    }

    fn unset(&mut self, v: Var) {
        if let Some(s) = self.slots.get_mut(v.0 as usize) {
            *s = None;
        }
    }
}

fn term_value(t: &STerm, env: &AttrEnv, asg: &SAsg) -> Value {
    match t {
        STerm::Var(v) => asg
            .get(*v)
            .unwrap_or_else(|| panic!("unbound store variable {v}")),
        STerm::Attr(a) => env.get(*a),
        STerm::Const(d) => *d,
    }
}

fn eval_inner(
    store: &Store,
    env: &AttrEnv,
    dom: &[Value],
    formula: &SFormula,
    asg: &mut SAsg,
) -> bool {
    match formula {
        SFormula::True => true,
        SFormula::False => false,
        SFormula::Atom(SAtom::Eq(s, t)) => term_value(s, env, asg) == term_value(t, env, asg),
        SFormula::Atom(SAtom::Rel(r, ts)) => {
            let tuple: Vec<Value> = ts.iter().map(|t| term_value(t, env, asg)).collect();
            store.get(*r).contains(&tuple)
        }
        SFormula::Not(f) => !eval_inner(store, env, dom, f, asg),
        SFormula::And(fs) => fs.iter().all(|f| eval_inner(store, env, dom, f, asg)),
        SFormula::Or(fs) => fs.iter().any(|f| eval_inner(store, env, dom, f, asg)),
        SFormula::Exists(v, f) => {
            let saved = asg.get(*v);
            let mut found = false;
            for &d in dom {
                asg.set(*v, d);
                if eval_inner(store, env, dom, f, asg) {
                    found = true;
                    break;
                }
            }
            match saved {
                Some(d) => asg.set(*v, d),
                None => asg.unset(*v),
            }
            found
        }
        SFormula::Forall(v, f) => {
            let saved = asg.get(*v);
            let mut all = true;
            for &d in dom {
                asg.set(*v, d);
                if !eval_inner(store, env, dom, f, asg) {
                    all = false;
                    break;
                }
            }
            match saved {
                Some(d) => asg.set(*v, d),
                None => asg.unset(*v),
            }
            all
        }
    }
}

/// Evaluate a store *sentence* (a guard `ξ`).
///
/// # Panics
/// Panics if the formula has free variables.
pub fn eval_guard(store: &Store, env: &AttrEnv, formula: &SFormula) -> bool {
    assert!(
        formula.free_vars().is_empty(),
        "guards must be sentences; free vars: {:?}",
        formula.free_vars()
    );
    let dom = active_domain(store, env, formula);
    eval_inner(store, env, &dom, formula, &mut SAsg::default())
}

/// Evaluate a store query `ψ(x̄)`: the relation
/// `{ d̄ | ψ(d̄) holds }` with columns ordered by ascending variable index.
/// This is the register-update primitive (Definition 3.1, form 2).
pub fn eval_query(store: &Store, env: &AttrEnv, formula: &SFormula) -> Relation {
    let free = formula.free_vars();
    let dom = active_domain(store, env, formula);
    let mut out = Relation::empty(free.len());
    let mut asg = SAsg::default();
    let mut tuple = vec![Value::BOT; free.len()];
    fill(
        store, env, &dom, formula, &free, 0, &mut asg, &mut tuple, &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn fill(
    store: &Store,
    env: &AttrEnv,
    dom: &[Value],
    formula: &SFormula,
    free: &[Var],
    i: usize,
    asg: &mut SAsg,
    tuple: &mut [Value],
    out: &mut Relation,
) {
    if i == free.len() {
        if eval_inner(store, env, dom, formula, asg) {
            out.insert(tuple.to_vec());
        }
        return;
    }
    for &d in dom {
        asg.set(free[i], d);
        tuple[i] = d;
        fill(store, env, dom, formula, free, i + 1, asg, tuple, out);
    }
    asg.unset(free[i]);
}

/// Ergonomic constructors for store formulas.
pub mod sbuild {
    use super::*;

    /// Variable term.
    pub fn v(n: u16) -> STerm {
        STerm::Var(Var(n))
    }

    /// Attribute-constant term (`val_a(current)`).
    pub fn attr(a: AttrId) -> STerm {
        STerm::Attr(a)
    }

    /// Constant term.
    pub fn cst(d: Value) -> STerm {
        STerm::Const(d)
    }

    /// `X_i(t̄)`.
    pub fn rel(i: RegId, ts: impl IntoIterator<Item = STerm>) -> SFormula {
        SFormula::Atom(SAtom::Rel(i, ts.into_iter().collect()))
    }

    /// `s = t`.
    pub fn eq(s: STerm, t: STerm) -> SFormula {
        SFormula::Atom(SAtom::Eq(s, t))
    }

    /// Negation.
    pub fn not(f: SFormula) -> SFormula {
        SFormula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(fs: impl IntoIterator<Item = SFormula>) -> SFormula {
        SFormula::And(fs.into_iter().collect())
    }

    /// Disjunction.
    pub fn or(fs: impl IntoIterator<Item = SFormula>) -> SFormula {
        SFormula::Or(fs.into_iter().collect())
    }

    /// Implication.
    pub fn implies(a: SFormula, b: SFormula) -> SFormula {
        or([not(a), b])
    }

    /// `∃x f`.
    pub fn exists(x: Var, f: SFormula) -> SFormula {
        SFormula::Exists(x, Box::new(f))
    }

    /// `∀x f`.
    pub fn forall(x: Var, f: SFormula) -> SFormula {
        SFormula::Forall(x, Box::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::sbuild::*;
    use super::*;
    use crate::fo::Var;

    fn vals(vocab: &mut Vocab, ns: &[i64]) -> Vec<Value> {
        ns.iter().map(|&n| vocab.val_int(n)).collect()
    }

    #[test]
    fn relation_basics() {
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[1, 2, 3]);
        let mut r = Relation::empty(2);
        r.insert(vec![d[0], d[1]]);
        r.insert(vec![d[0], d[1]]); // dedup
        r.insert(vec![d[1], d[2]]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[d[0], d[1]]));
        assert!(!r.contains(&[d[1], d[0]]));
        assert!(!r.contains(&[d[0]]));
        let s = Relation::singleton(d[2]);
        assert_eq!(s.as_singleton(), Some(d[2]));
        assert_eq!(r.as_singleton(), None);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn relation_rejects_bad_arity() {
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[1]);
        let mut r = Relation::empty(2);
        r.insert(vec![d[0]]);
    }

    #[test]
    fn union_accumulates() {
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[1, 2]);
        let mut a = Relation::singleton(d[0]);
        let b = Relation::singleton(d[1]);
        a.union_with(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn store_active_domain() {
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[5, 6]);
        let mut st = Store::with_arities(&[1, 2]);
        st.set(RegId(0), Relation::singleton(d[0]));
        st.set(RegId(1), Relation::from_tuples(2, [vec![d[0], d[1]]]));
        assert_eq!(st.active_domain(), {
            let mut v = vec![d[0], d[1]];
            v.sort_unstable();
            v
        });
        assert_eq!(st.total_tuples(), 2);
    }

    #[test]
    fn guard_singleton_check() {
        // The paper's Example 3.2 guard:
        //   ξ ≡ ∀x∀y (X₁(x) ∧ X₁(y) → x = y)  — "X₁ is (at most) a singleton".
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[1, 2]);
        let x = Var(0);
        let y = Var(1);
        let xi = forall(
            x,
            forall(
                y,
                implies(
                    and([rel(RegId(0), [v(0)]), rel(RegId(0), [v(1)])]),
                    eq(v(0), v(1)),
                ),
            ),
        );
        let env = AttrEnv::default();
        let mut st = Store::with_arities(&[1]);
        assert!(eval_guard(&st, &env, &xi)); // empty: vacuously true
        st.set(RegId(0), Relation::singleton(d[0]));
        assert!(eval_guard(&st, &env, &xi));
        st.set(RegId(0), Relation::from_tuples(1, [vec![d[0]], vec![d[1]]]));
        assert!(!eval_guard(&st, &env, &xi));
    }

    #[test]
    fn query_computes_relation() {
        // ψ(x) = X₁(x) ∧ ¬(x = d₁): filter out a constant.
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[1, 2, 3]);
        let mut st = Store::with_arities(&[1]);
        st.set(
            RegId(0),
            Relation::from_tuples(1, d.iter().map(|&x| vec![x])),
        );
        let psi = and([rel(RegId(0), [v(0)]), not(eq(v(0), cst(d[0])))]);
        let env = AttrEnv::default();
        let r = eval_query(&st, &env, &psi);
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&[d[0]]));
    }

    #[test]
    fn attr_constant_reads_current_node() {
        // ψ(x) = (x = a): the singleton holding the current a-attribute —
        // the paper's "x = a … defines the set containing the value of the
        // a attribute of the current node" (Example 3.2, rules 5 and 6).
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let d7 = vocab.val_int(7);
        let env = AttrEnv::from_pairs(&[(a, d7)]);
        let st = Store::with_arities(&[1]);
        let psi = eq(v(0), attr(a));
        let r = eval_query(&st, &env, &psi);
        assert_eq!(r.as_singleton(), Some(d7));
    }

    #[test]
    fn quantifiers_range_over_active_domain_only() {
        // ∃x ¬(x = d₁) is false when the active domain is exactly {d₁}.
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[1, 2]);
        let mut st = Store::with_arities(&[1]);
        st.set(RegId(0), Relation::singleton(d[0]));
        let env = AttrEnv::default();
        let f = exists(Var(0), not(eq(v(0), cst(d[0]))));
        assert!(!eval_guard(&st, &env, &f));
        // Adding d₂ to the store makes it true.
        st.set(RegId(0), Relation::from_tuples(1, [vec![d[0]], vec![d[1]]]));
        assert!(eval_guard(&st, &env, &f));
    }

    #[test]
    fn query_with_two_free_vars_orders_columns() {
        // ψ(x0, x1) = X₁(x0, x1): copies the register.
        let mut vocab = Vocab::new();
        let d = vals(&mut vocab, &[1, 2]);
        let mut st = Store::with_arities(&[2]);
        st.set(RegId(0), Relation::from_tuples(2, [vec![d[0], d[1]]]));
        let env = AttrEnv::default();
        let psi = rel(RegId(0), [v(0), v(1)]);
        let r = eval_query(&st, &env, &psi);
        assert!(r.contains(&[d[0], d[1]]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn formula_introspection() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let d = vocab.val_int(1);
        let f = exists(
            Var(0),
            and([rel(RegId(1), [v(0), attr(a)]), eq(v(1), cst(d))]),
        );
        assert_eq!(f.free_vars(), vec![Var(1)]);
        assert_eq!(f.constants(), vec![d]);
        assert_eq!(f.attrs(), vec![a]);
        assert_eq!(f.registers(), vec![RegId(1)]);
        assert!(!f.is_quantifier_free());
        assert!(f.size() >= 4);
    }

    #[test]
    fn display_renders_readably() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let d = vocab.val_int(3);
        let f = forall(
            Var(0),
            implies(
                rel(RegId(0), [v(0)]),
                or([eq(v(0), cst(d)), eq(v(0), attr(a))]),
            ),
        );
        let shown = f.display(&vocab);
        assert!(shown.contains("∀x0"), "{shown}");
        assert!(shown.contains("X1(x0)"), "{shown}");
        assert!(shown.contains("= 3"), "{shown}");
        assert!(shown.contains("= a"), "{shown}");
    }

    #[test]
    fn empty_domain_queries() {
        // With an empty store and no constants, queries over free variables
        // return the empty relation and ∀ is vacuously true.
        let st = Store::with_arities(&[1]);
        let env = AttrEnv::default();
        let psi = eq(v(0), v(0));
        let r = eval_query(&st, &env, &psi);
        assert!(r.is_empty());
        assert!(eval_guard(&st, &env, &forall(Var(0), SFormula::False)));
    }
}
