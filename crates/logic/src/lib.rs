//! # twq-logic — logics over attributed trees and relational stores
//!
//! The logic substrate of the `twq` workspace, covering Sections 2.2, 2.3,
//! and the logical machinery of Section 3 of Neven's *On the Power of
//! Walking for Querying Tree-Structured Data* (PODS 2002):
//!
//! * [`fo`] — first-order logic over the tree vocabulary
//!   `τ_{Σ,A} = {E, <, ≺, (O_σ), (val_a)}`, plus the extra predicates
//!   `root/leaf/first/last/succ` of the `FO(∃*)` layer;
//! * [`eval`] — naive model checking, node selection (`φ(u, ·)`), and
//!   pair selection on trees;
//! * [`exists`] — the validated `FO(∃*)` fragment (binary selectors used
//!   by `atp` and as the abstraction of XPath);
//! * [`store`] — finite relations over `D`, the relational store, and
//!   active-domain FO evaluation for guards `ξ` and updates `ψ`;
//! * [`memo`] — memoized FO evaluation (subformula caching) and the
//!   parallel batch entry points (`select_batch`, `eval_sentence_par`);
//! * [`parse`] — a concrete syntax for FO formulas;
//! * [`mso`] — monadic second-order logic with a naive small-witness
//!   evaluator (the Proposition 7.2 yardstick);
//! * [`types`] — `≡_k` type computation (Lemma 4.3).

pub mod eval;
pub mod exists;
pub mod fo;
pub mod memo;
pub mod mso;
pub mod parse;
pub mod store;
pub mod types;

pub use eval::{
    eval_sentence, eval_sentence_guarded, select, select_guarded, select_pairs, trace_select,
    trace_sentence, Assignment,
};
pub use exists::{ExistsError, ExistsFormula};
pub use fo::{Formula, TreeAtom, Var};
pub use memo::{
    eval_sentence_memo, eval_sentence_memo_guarded, eval_sentence_par, select_batch,
    select_batch_guarded, select_batch_profiled, select_memo, select_memo_guarded, MemoCache,
    MemoFormula,
};
pub use mso::{eval_mso, eval_mso_capped, MsoFormula, SetVar};
pub use parse::{parse_fo, FoParseError, ParsedFormula};
pub use store::{eval_guard, eval_query, AttrEnv, RegId, Relation, SAtom, SFormula, STerm, Store};
