//! Concrete syntax for the XPath fragment.
//!
//! ```text
//! path   := seq ('|' seq)*
//! seq    := ('/' | '//')? step (('/' | '//') step)*
//! step   := test filter*
//! test   := ident | '*'
//! filter := '[' path ']' | '[@' ident '=' value ']' | '[@' ident '=@' ident ']'
//! value  := ident | integer
//! ```

use twq_tree::Vocab;

use crate::ast::{Pred, XPath};

/// An XPath parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathParseError {
    /// Byte offset.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for XPathParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xpath parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for XPathParseError {}

struct P<'s, 'v> {
    src: &'s [u8],
    pos: usize,
    vocab: &'v mut Vocab,
}

impl P<'_, '_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XPathParseError> {
        Err(XPathParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat2(&mut self, a: u8, b: u8) -> bool {
        if self.peek() == Some(a) && self.src.get(self.pos + 1) == Some(&b) {
            self.pos += 2;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<&str, XPathParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected identifier");
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos]).expect("ascii"))
    }

    fn path(&mut self) -> Result<XPath, XPathParseError> {
        let mut p = self.seq()?;
        loop {
            self.ws();
            if self.eat(b'|') {
                let q = self.seq()?;
                p = XPath::Union(Box::new(p), Box::new(q));
            } else {
                return Ok(p);
            }
        }
    }

    fn seq(&mut self) -> Result<XPath, XPathParseError> {
        self.ws();
        // Leading axis.
        let mut p = if self.eat2(b'/', b'/') {
            XPath::FromDesc(Box::new(self.step()?))
        } else if self.eat(b'/') {
            XPath::FromRoot(Box::new(self.step()?))
        } else {
            self.step()?
        };
        loop {
            self.ws();
            if self.eat2(b'/', b'/') {
                let s = self.step()?;
                p = XPath::Descendant(Box::new(p), Box::new(s));
            } else if self.eat(b'/') {
                let s = self.step()?;
                p = XPath::Child(Box::new(p), Box::new(s));
            } else {
                return Ok(p);
            }
        }
    }

    fn step(&mut self) -> Result<XPath, XPathParseError> {
        self.ws();
        let mut p = if self.eat(b'*') {
            XPath::Wild
        } else {
            let name = self.ident()?.to_owned();
            XPath::Name(self.vocab.sym(&name))
        };
        loop {
            self.ws();
            if self.eat(b'[') {
                let pred = self.pred()?;
                self.ws();
                if !self.eat(b']') {
                    return self.err("expected ']'");
                }
                p = XPath::Filter(Box::new(p), Box::new(pred));
            } else {
                return Ok(p);
            }
        }
    }

    fn pred(&mut self) -> Result<Pred, XPathParseError> {
        self.ws();
        if self.eat(b'@') {
            let a = self.ident()?.to_owned();
            let a = self.vocab.attr(&a);
            self.ws();
            if !self.eat(b'=') {
                return self.err("expected '=' in attribute predicate");
            }
            self.ws();
            if self.eat(b'@') {
                let b = self.ident()?.to_owned();
                let b = self.vocab.attr(&b);
                return Ok(Pred::AttrEqAttr(a, b));
            }
            let neg = self.eat(b'-');
            let tok = self.ident()?.to_owned();
            let value = if let Ok(mut i) = tok.parse::<i64>() {
                if neg {
                    i = -i;
                }
                self.vocab.val_int(i)
            } else if neg {
                return self.err("'-' must precede an integer");
            } else {
                self.vocab.val_str(&tok)
            };
            return Ok(Pred::AttrEqConst(a, value));
        }
        Ok(Pred::Path(crate::ast::relativize(self.path()?)))
    }
}

/// Parse an XPath expression, interning names into `vocab`.
pub fn parse_xpath(src: &str, vocab: &mut Vocab) -> Result<XPath, XPathParseError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
        vocab,
    };
    let path = p.path()?;
    p.ws();
    if p.pos != p.src.len() {
        return p.err("trailing input");
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::xb;

    #[test]
    fn parses_paper_shapes() {
        let mut v = Vocab::new();
        for src in [
            "a",
            "*",
            "a/b",
            "a//b",
            "/a",
            "//a",
            "a/b[c//d]",
            "a | b",
            "a/b | c//d",
            "a[b][c]",
            "a[@k=3]",
            "a[@k=@m]",
            "a[@k=xyz]",
        ] {
            let p = parse_xpath(src, &mut v);
            assert!(p.is_ok(), "{src}: {p:?}");
        }
    }

    #[test]
    fn structure_of_composite() {
        let mut v = Vocab::new();
        let p = parse_xpath("a/b//c", &mut v).unwrap();
        let (a, b, c) = (
            v.sym_opt("a").unwrap(),
            v.sym_opt("b").unwrap(),
            v.sym_opt("c").unwrap(),
        );
        // Left-associated: (a/b)//c.
        assert_eq!(
            p,
            xb::desc(xb::child(xb::name(a), xb::name(b)), xb::name(c))
        );
    }

    #[test]
    fn union_binds_loosest() {
        let mut v = Vocab::new();
        let p = parse_xpath("a/b | c", &mut v).unwrap();
        assert!(matches!(p, XPath::Union(_, _)));
    }

    #[test]
    fn display_parse_round_trip() {
        let mut v = Vocab::new();
        for src in ["a/b//c[d]", "/a[@k=3] | //b[@k=@m]", "*[b/c]"] {
            let p = parse_xpath(src, &mut v).unwrap();
            let shown = p.display(&v);
            let p2 = parse_xpath(&shown, &mut v).unwrap();
            assert_eq!(p, p2, "{src} → {shown}");
        }
    }

    #[test]
    fn rejects_garbage() {
        let mut v = Vocab::new();
        for src in ["", "/", "a/", "a[", "a[]", "a[@k]", "a]", "a[@k=-x]", "|a"] {
            assert!(parse_xpath(src, &mut v).is_err(), "{src}");
        }
    }
}
