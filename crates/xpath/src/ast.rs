//! The abstract syntax of the paper's XPath fragment (Section 2.3):
//! union, root, child, descendant, filter, element test, and wildcard —
//! plus attribute-comparison filters, which the paper notes its `FO(∃*)`
//! abstraction covers ("FO(∃*) can also compare attribute values").
//!
//! Semantics is the standard binary-relation semantics over `Dom(t)`:
//! an expression denotes the set of (context, selected) node pairs.

use twq_tree::{AttrId, SymId, Value, Vocab};

/// An XPath expression.
///
/// `Ord` is the *canonical expression order* used by the `twq-rw` rewriter
/// to sort and deduplicate union branches and filter chains; it is the
/// derived structural order and carries no semantic meaning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum XPath {
    /// Element test `σ`: `{(x, x) | lab(x) = σ}`.
    Name(SymId),
    /// Wildcard `*`: the identity relation.
    Wild,
    /// `p₁/p₂`: `p₁`, then one child step, then `p₂`.
    Child(Box<XPath>, Box<XPath>),
    /// `p₁//p₂`: `p₁`, then a strict-descendant step, then `p₂`.
    Descendant(Box<XPath>, Box<XPath>),
    /// `/p`: evaluate `p` from the root, ignoring the context node.
    FromRoot(Box<XPath>),
    /// Leading `//p`: a strict-descendant step from the context, then `p`.
    FromDesc(Box<XPath>),
    /// An implicit leading *child* step: `{(x, z) | ∃c (E(x, c) ∧ (c, z) ∈ p)}`.
    ///
    /// This variant has no surface syntax of its own — the parser inserts
    /// it around relative paths inside filters, so that `b[d]` means
    /// "a `b` that has a `d`-child" (`E(y, y₃) ∧ O_d(y₃)` in the paper's
    /// worked translation) rather than a self test.
    FromChild(Box<XPath>),
    /// `p[q]`: keep selected nodes at which the predicate holds.
    Filter(Box<XPath>, Box<Pred>),
    /// `p₁ | p₂`: union.
    Union(Box<XPath>, Box<XPath>),
}

/// A filter predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pred {
    /// `[p]`: the path selects at least one node from here.
    Path(XPath),
    /// `[@a = d]`.
    AttrEqConst(AttrId, Value),
    /// `[@a = @b]` (on the same node).
    AttrEqAttr(AttrId, AttrId),
}

impl XPath {
    /// Number of AST nodes (a size measure for workload generators).
    pub fn size(&self) -> usize {
        match self {
            XPath::Name(_) | XPath::Wild => 1,
            XPath::Child(a, b) | XPath::Descendant(a, b) | XPath::Union(a, b) => {
                1 + a.size() + b.size()
            }
            XPath::FromRoot(p) | XPath::FromDesc(p) | XPath::FromChild(p) => 1 + p.size(),
            XPath::Filter(p, q) => {
                1 + p.size()
                    + match &**q {
                        Pred::Path(inner) => inner.size(),
                        _ => 1,
                    }
            }
        }
    }

    /// Render in the concrete syntax accepted by [`crate::parse_xpath`].
    pub fn display(&self, vocab: &Vocab) -> String {
        match self {
            XPath::Name(s) => vocab.sym_name(*s).to_owned(),
            XPath::Wild => "*".to_owned(),
            XPath::Child(a, b) => format!("{}/{}", a.display(vocab), b.display(vocab)),
            XPath::Descendant(a, b) => {
                format!("{}//{}", a.display(vocab), b.display(vocab))
            }
            XPath::FromRoot(p) => format!("/{}", p.display(vocab)),
            XPath::FromDesc(p) => format!("//{}", p.display(vocab)),
            // Only occurs inside filters, where the child step is implicit.
            XPath::FromChild(p) => p.display(vocab),
            XPath::Filter(p, q) => format!("{}[{}]", p.display(vocab), q.display(vocab)),
            XPath::Union(a, b) => format!("{} | {}", a.display(vocab), b.display(vocab)),
        }
    }
}

impl Pred {
    /// Render in concrete syntax.
    pub fn display(&self, vocab: &Vocab) -> String {
        match self {
            Pred::Path(p) => p.display(vocab),
            Pred::AttrEqConst(a, d) => {
                format!("@{}={}", vocab.attr_name(*a), vocab.value_display(*d))
            }
            Pred::AttrEqAttr(a, b) => {
                format!("@{}=@{}", vocab.attr_name(*a), vocab.attr_name(*b))
            }
        }
    }
}

/// Insert the implicit leading child step on every bare (axis-less) branch
/// of a filter path: `d` becomes `FromChild(d)`, while `/p`, `//p` and
/// already-relativized branches are left alone. Unions are relativized
/// per branch.
pub fn relativize(p: XPath) -> XPath {
    match p {
        XPath::Union(a, b) => XPath::Union(Box::new(relativize(*a)), Box::new(relativize(*b))),
        XPath::FromRoot(_) | XPath::FromDesc(_) | XPath::FromChild(_) => p,
        other => XPath::FromChild(Box::new(other)),
    }
}

/// Ergonomic constructors.
pub mod xb {
    use super::*;

    /// Element test.
    pub fn name(s: SymId) -> XPath {
        XPath::Name(s)
    }

    /// Wildcard.
    pub fn wild() -> XPath {
        XPath::Wild
    }

    /// `a/b`.
    pub fn child(a: XPath, b: XPath) -> XPath {
        XPath::Child(Box::new(a), Box::new(b))
    }

    /// `a//b`.
    pub fn desc(a: XPath, b: XPath) -> XPath {
        XPath::Descendant(Box::new(a), Box::new(b))
    }

    /// `/p`.
    pub fn from_root(p: XPath) -> XPath {
        XPath::FromRoot(Box::new(p))
    }

    /// `//p`.
    pub fn from_desc(p: XPath) -> XPath {
        XPath::FromDesc(Box::new(p))
    }

    /// Implicit leading child step (filter-relative path).
    pub fn from_child(p: XPath) -> XPath {
        XPath::FromChild(Box::new(p))
    }

    /// `p[q]` with a path predicate; `q` is relativized exactly as the
    /// parser does (implicit leading child step on bare branches).
    pub fn filter(p: XPath, q: XPath) -> XPath {
        XPath::Filter(Box::new(p), Box::new(Pred::Path(super::relativize(q))))
    }

    /// `p[q]` with a raw (non-relativized) predicate path.
    pub fn filter_raw(p: XPath, q: XPath) -> XPath {
        XPath::Filter(Box::new(p), Box::new(Pred::Path(q)))
    }

    /// `p[@a = d]`.
    pub fn filter_attr_const(p: XPath, a: AttrId, d: Value) -> XPath {
        XPath::Filter(Box::new(p), Box::new(Pred::AttrEqConst(a, d)))
    }

    /// `p[@a = @b]`.
    pub fn filter_attr_attr(p: XPath, a: AttrId, b: AttrId) -> XPath {
        XPath::Filter(Box::new(p), Box::new(Pred::AttrEqAttr(a, b)))
    }

    /// `a | b`.
    pub fn union(a: XPath, b: XPath) -> XPath {
        XPath::Union(Box::new(a), Box::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::xb::*;
    use super::*;

    #[test]
    fn size_counts_nodes() {
        let mut v = Vocab::new();
        let a = v.sym("a");
        let b = v.sym("b");
        let p = child(name(a), filter(name(b), wild()));
        // filter() relativizes: the implicit child step adds one node.
        assert_eq!(p.size(), 6);
    }

    #[test]
    fn display_round_readable() {
        let mut v = Vocab::new();
        let a = v.sym("a");
        let b = v.sym("b");
        let at = v.attr("k");
        let d = v.val_int(3);
        let p = union(
            from_root(child(name(a), name(b))),
            filter_attr_const(wild(), at, d),
        );
        assert_eq!(p.display(&v), "/a/b | *[@k=3]");
    }
}
