//! # twq-xpath — the paper's XPath fragment
//!
//! Section 2.3 of Neven (PODS 2002) abstracts the XPath pattern language of
//! XSLT by binary `FO(∃*)` formulas. This crate provides the concrete side
//! of that abstraction:
//!
//! * [`ast`] — union / root / child / descendant / filter / element test /
//!   wildcard, plus attribute-comparison filters;
//! * [`parse`] — a concrete syntax (`a/b[c//d] | //e[@k=3]`);
//! * [`eval`] — the standard binary-relation reference semantics;
//! * [`compile()`](compile::compile) — the translation to binary `FO(∃*)` formulas, verified
//!   equivalent to the reference semantics by property tests;
//! * [`generate`] — random expression workloads;
//! * [`to_program`] — the XSLT loop closed: XPath queries compiled into
//!   `tw^{r,l}` acceptors whose `atp` uses the compiled selector;
//! * [`cost`] — a symbolic estimate of the reference evaluator's work,
//!   consumed by the `twq-index` walk-vs-index planner.

pub mod ast;
pub mod compile;
pub mod cost;
pub mod eval;
pub mod generate;
pub mod parse;
pub mod to_program;

pub use ast::{Pred, XPath};
pub use compile::{compile, compile_guarded};
pub use cost::{walk_cost, WalkEstimate, WalkParams};
pub use eval::{
    eval_from, eval_from_guarded, eval_from_with, eval_pairs, eval_pairs_guarded, eval_pairs_with,
    pred_holds, pred_holds_with, select_batch, select_batch_profiled, trace_eval_from,
};
pub use generate::{random_xpath, random_xpath_shaped, XPathGenConfig, XPathShape};
pub use parse::{parse_xpath, XPathParseError};
pub use to_program::{xpath_to_program, xpath_to_program_checked, SelectionTest};
