//! Random XPath workload generation for property tests and the E2
//! benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twq_tree::{AttrId, SymId, Value};

use crate::ast::{Pred, XPath};

/// Configuration for [`random_xpath`].
#[derive(Debug, Clone)]
pub struct XPathGenConfig {
    /// Element symbols for name tests.
    pub symbols: Vec<SymId>,
    /// Attributes for attribute filters (may be empty).
    pub attrs: Vec<AttrId>,
    /// Values for `@a = d` filters (may be empty).
    pub values: Vec<Value>,
    /// Maximum recursion depth.
    pub max_depth: usize,
}

/// Generate a random expression of the paper's fragment.
pub fn random_xpath(cfg: &XPathGenConfig, seed: u64) -> XPath {
    let mut rng = StdRng::seed_from_u64(seed);
    gen(cfg, &mut rng, cfg.max_depth)
}

fn gen(cfg: &XPathGenConfig, rng: &mut StdRng, depth: usize) -> XPath {
    let leaf = |rng: &mut StdRng| {
        if rng.gen_bool(0.3) || cfg.symbols.is_empty() {
            XPath::Wild
        } else {
            XPath::Name(cfg.symbols[rng.gen_range(0..cfg.symbols.len())])
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..10u8) {
        0 | 1 => leaf(rng),
        2 | 3 => XPath::Child(
            Box::new(gen(cfg, rng, depth - 1)),
            Box::new(gen(cfg, rng, depth - 1)),
        ),
        4 | 5 => XPath::Descendant(
            Box::new(gen(cfg, rng, depth - 1)),
            Box::new(gen(cfg, rng, depth - 1)),
        ),
        6 => XPath::FromRoot(Box::new(gen(cfg, rng, depth - 1))),
        7 => XPath::FromDesc(Box::new(gen(cfg, rng, depth - 1))),
        8 => {
            let base = gen(cfg, rng, depth - 1);
            let pred = if !cfg.attrs.is_empty() && rng.gen_bool(0.4) {
                let a = cfg.attrs[rng.gen_range(0..cfg.attrs.len())];
                if !cfg.values.is_empty() && rng.gen_bool(0.7) {
                    Pred::AttrEqConst(a, cfg.values[rng.gen_range(0..cfg.values.len())])
                } else {
                    let b = cfg.attrs[rng.gen_range(0..cfg.attrs.len())];
                    Pred::AttrEqAttr(a, b)
                }
            } else {
                Pred::Path(gen(cfg, rng, depth - 1))
            };
            XPath::Filter(Box::new(base), Box::new(pred))
        }
        _ => XPath::Union(
            Box::new(gen(cfg, rng, depth - 1)),
            Box::new(gen(cfg, rng, depth - 1)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_tree::Vocab;

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let mut v = Vocab::new();
        let cfg = XPathGenConfig {
            symbols: vec![v.sym("a"), v.sym("b")],
            attrs: vec![v.attr("k")],
            values: vec![v.val_int(1)],
            max_depth: 4,
        };
        for seed in 0..20 {
            let p1 = random_xpath(&cfg, seed);
            let p2 = random_xpath(&cfg, seed);
            assert_eq!(p1, p2);
            assert!(p1.size() <= 200, "size {} too large", p1.size());
        }
    }
}
