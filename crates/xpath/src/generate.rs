//! Random XPath workload generation for property tests and the E2
//! benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twq_tree::{AttrId, SymId, Value};

use crate::ast::{Pred, XPath};

/// Configuration for [`random_xpath`].
#[derive(Debug, Clone)]
pub struct XPathGenConfig {
    /// Element symbols for name tests.
    pub symbols: Vec<SymId>,
    /// Attributes for attribute filters (may be empty).
    pub attrs: Vec<AttrId>,
    /// Values for `@a = d` filters (may be empty).
    pub values: Vec<Value>,
    /// Maximum recursion depth.
    pub max_depth: usize,
}

/// Generate a random expression of the paper's fragment.
pub fn random_xpath(cfg: &XPathGenConfig, seed: u64) -> XPath {
    let mut rng = StdRng::seed_from_u64(seed);
    gen(cfg, &mut rng, cfg.max_depth)
}

/// Structural bias for [`random_xpath_shaped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XPathShape {
    /// The [`random_xpath`] distribution.
    Uniform,
    /// Union-dense expressions: stresses union canonicalization,
    /// subsumption-based pruning, and empty-branch deletion.
    UnionHeavy,
    /// Filter-dense expressions: stresses filter pushdown, filter-chain
    /// canonicalization, and tautology elimination.
    FilterHeavy,
}

/// Generate a random expression with a structural bias. `Uniform` is
/// exactly [`random_xpath`].
pub fn random_xpath_shaped(cfg: &XPathGenConfig, seed: u64, shape: XPathShape) -> XPath {
    let mut rng = StdRng::seed_from_u64(seed);
    match shape {
        XPathShape::Uniform => gen(cfg, &mut rng, cfg.max_depth),
        XPathShape::UnionHeavy | XPathShape::FilterHeavy => {
            gen_shaped(cfg, &mut rng, cfg.max_depth, shape)
        }
    }
}

fn gen_shaped(cfg: &XPathGenConfig, rng: &mut StdRng, depth: usize, shape: XPathShape) -> XPath {
    let leaf = |rng: &mut StdRng| {
        if rng.gen_bool(0.3) || cfg.symbols.is_empty() {
            XPath::Wild
        } else {
            XPath::Name(cfg.symbols[rng.gen_range(0..cfg.symbols.len())])
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..10u8) {
        0 | 1 => leaf(rng),
        2 => XPath::Child(
            Box::new(gen_shaped(cfg, rng, depth - 1, shape)),
            Box::new(gen_shaped(cfg, rng, depth - 1, shape)),
        ),
        3 => XPath::Descendant(
            Box::new(gen_shaped(cfg, rng, depth - 1, shape)),
            Box::new(gen_shaped(cfg, rng, depth - 1, shape)),
        ),
        4 => XPath::FromDesc(Box::new(gen_shaped(cfg, rng, depth - 1, shape))),
        _ if shape == XPathShape::UnionHeavy => XPath::Union(
            Box::new(gen_shaped(cfg, rng, depth - 1, shape)),
            Box::new(gen_shaped(cfg, rng, depth - 1, shape)),
        ),
        _ => {
            let base = gen_shaped(cfg, rng, depth - 1, shape);
            // A slice of tautological predicates keeps the
            // filter-true/filter-dedupe rules exercised.
            let pred = if rng.gen_bool(0.15) {
                Pred::Path(XPath::Wild)
            } else if !cfg.attrs.is_empty() && rng.gen_bool(0.4) {
                let a = cfg.attrs[rng.gen_range(0..cfg.attrs.len())];
                if !cfg.values.is_empty() && rng.gen_bool(0.7) {
                    Pred::AttrEqConst(a, cfg.values[rng.gen_range(0..cfg.values.len())])
                } else {
                    let b = cfg.attrs[rng.gen_range(0..cfg.attrs.len())];
                    Pred::AttrEqAttr(a, b)
                }
            } else {
                Pred::Path(gen_shaped(cfg, rng, depth - 1, shape))
            };
            XPath::Filter(Box::new(base), Box::new(pred))
        }
    }
}

fn gen(cfg: &XPathGenConfig, rng: &mut StdRng, depth: usize) -> XPath {
    let leaf = |rng: &mut StdRng| {
        if rng.gen_bool(0.3) || cfg.symbols.is_empty() {
            XPath::Wild
        } else {
            XPath::Name(cfg.symbols[rng.gen_range(0..cfg.symbols.len())])
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..10u8) {
        0 | 1 => leaf(rng),
        2 | 3 => XPath::Child(
            Box::new(gen(cfg, rng, depth - 1)),
            Box::new(gen(cfg, rng, depth - 1)),
        ),
        4 | 5 => XPath::Descendant(
            Box::new(gen(cfg, rng, depth - 1)),
            Box::new(gen(cfg, rng, depth - 1)),
        ),
        6 => XPath::FromRoot(Box::new(gen(cfg, rng, depth - 1))),
        7 => XPath::FromDesc(Box::new(gen(cfg, rng, depth - 1))),
        8 => {
            let base = gen(cfg, rng, depth - 1);
            let pred = if !cfg.attrs.is_empty() && rng.gen_bool(0.4) {
                let a = cfg.attrs[rng.gen_range(0..cfg.attrs.len())];
                if !cfg.values.is_empty() && rng.gen_bool(0.7) {
                    Pred::AttrEqConst(a, cfg.values[rng.gen_range(0..cfg.values.len())])
                } else {
                    let b = cfg.attrs[rng.gen_range(0..cfg.attrs.len())];
                    Pred::AttrEqAttr(a, b)
                }
            } else {
                Pred::Path(gen(cfg, rng, depth - 1))
            };
            XPath::Filter(Box::new(base), Box::new(pred))
        }
        _ => XPath::Union(
            Box::new(gen(cfg, rng, depth - 1)),
            Box::new(gen(cfg, rng, depth - 1)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twq_tree::Vocab;

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let mut v = Vocab::new();
        let cfg = XPathGenConfig {
            symbols: vec![v.sym("a"), v.sym("b")],
            attrs: vec![v.attr("k")],
            values: vec![v.val_int(1)],
            max_depth: 4,
        };
        for seed in 0..20 {
            let p1 = random_xpath(&cfg, seed);
            let p2 = random_xpath(&cfg, seed);
            assert_eq!(p1, p2);
            assert!(p1.size() <= 200, "size {} too large", p1.size());
        }
    }

    #[test]
    fn shaped_generator_is_deterministic_and_biased() {
        let mut v = Vocab::new();
        let cfg = XPathGenConfig {
            symbols: vec![v.sym("a"), v.sym("b")],
            attrs: vec![v.attr("k")],
            values: vec![v.val_int(1)],
            max_depth: 4,
        };
        fn count(p: &XPath, unions: &mut usize, filters: &mut usize) {
            match p {
                XPath::Union(a, b) => {
                    *unions += 1;
                    count(a, unions, filters);
                    count(b, unions, filters);
                }
                XPath::Filter(a, q) => {
                    *filters += 1;
                    count(a, unions, filters);
                    if let Pred::Path(inner) = &**q {
                        count(inner, unions, filters);
                    }
                }
                XPath::Child(a, b) | XPath::Descendant(a, b) => {
                    count(a, unions, filters);
                    count(b, unions, filters);
                }
                XPath::FromRoot(a) | XPath::FromDesc(a) | XPath::FromChild(a) => {
                    count(a, unions, filters)
                }
                XPath::Name(_) | XPath::Wild => {}
            }
        }
        let (mut u_tot, mut f_tot) = (0usize, 0usize);
        for seed in 0..40 {
            let u = random_xpath_shaped(&cfg, seed, XPathShape::UnionHeavy);
            assert_eq!(u, random_xpath_shaped(&cfg, seed, XPathShape::UnionHeavy));
            let f = random_xpath_shaped(&cfg, seed, XPathShape::FilterHeavy);
            let (mut us, mut fs) = (0, 0);
            count(&u, &mut us, &mut fs);
            u_tot += us;
            let (mut us2, mut fs2) = (0, 0);
            count(&f, &mut us2, &mut fs2);
            f_tot += fs2;
            assert_eq!(
                random_xpath_shaped(&cfg, seed, XPathShape::Uniform),
                random_xpath(&cfg, seed)
            );
        }
        assert!(u_tot > 40, "union-heavy shape produced {u_tot} unions");
        assert!(f_tot > 40, "filter-heavy shape produced {f_tot} filters");
    }
}
