//! XPath → tree-walking programs: the XSLT pipeline in one call.
//!
//! The paper's thesis is that XSLT ≈ tree-walking + registers + look-ahead
//! with XPath as the pattern language. This module closes the loop: an
//! XPath query becomes a `tw^{r,l}` program whose single `atp` uses the
//! compiled `FO(∃*)` selector (Section 2.3) and whose guard inspects the
//! returned register — the shape of an XSLT template match.

use twq_automata::{Action, Dir, TwProgram, TwProgramBuilder};
use twq_logic::store::sbuild::*;
use twq_logic::{SFormula, Var};
use twq_tree::{AttrId, Label, SymId, Value};

use crate::ast::XPath;
use crate::compile;

/// What the program should check about the selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionTest {
    /// Accept iff the query selects **at least one** node (from the
    /// original root).
    NonEmpty,
    /// Accept iff some selected node carries `attr = value`.
    SomeValue(AttrId, Value),
    /// Accept iff **every** selected node carries `attr = value`
    /// (vacuously true on empty selections).
    AllValue(AttrId, Value),
}

/// Compile an XPath query into a `tw^{r,l}` acceptor: walk to the original
/// root, `atp` with the compiled selector (each selected node returns its
/// witness into `X₁`), and accept iff the requested [`SelectionTest`]
/// holds on the collected register.
///
/// For [`SelectionTest::NonEmpty`] the witness is the node's unique-ID
/// attribute `id_attr` (so empty vs. non-empty is observable even when
/// attributes repeat); provide the attribute your trees use.
pub fn xpath_to_program(
    query: &XPath,
    alphabet: &[SymId],
    id_attr: AttrId,
    test: SelectionTest,
) -> TwProgram {
    let phi = compile::compile(query);
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let q2 = b.state("q2");
    let chk = b.state("chk");
    let q_sel = b.state("q_sel");
    let q_f = b.state("qF");
    b.initial(q0).final_state(q_f);
    let x1 = b.unary_register();

    // ▽ → ⊳ → original root.
    b.rule_true(Label::DelimRoot, q0, Action::Move(q1, Dir::Down));
    b.rule_true(Label::DelimOpen, q1, Action::Move(q2, Dir::Right));

    // The witness each selected node returns.
    let witness_attr = match test {
        SelectionTest::NonEmpty => id_attr,
        SelectionTest::SomeValue(a, _) | SelectionTest::AllValue(a, _) => a,
    };
    // The acceptance guard over the collected X₁.
    let guard: SFormula = match test {
        SelectionTest::NonEmpty => SFormula::Exists(Var(0), Box::new(rel(x1, [v(0)]))),
        SelectionTest::SomeValue(_, d) => rel(x1, [cst(d)]),
        SelectionTest::AllValue(_, d) => {
            SFormula::Forall(Var(0), Box::new(implies(rel(x1, [v(0)]), eq(v(0), cst(d)))))
        }
    };
    for &s in alphabet {
        b.rule_true(Label::Sym(s), q2, Action::Atp(chk, phi.clone(), q_sel, x1));
        b.rule_true(
            Label::Sym(s),
            q_sel,
            Action::Update(q_f, eq(v(0), attr(witness_attr)), x1),
        );
        b.rule(
            Label::Sym(s),
            chk,
            guard.clone(),
            Action::Move(q_f, Dir::Stay),
        );
    }
    b.build()
        .expect("xpath-to-program emits well-formed programs")
}

/// [`xpath_to_program`] through the static analyzer: certify the
/// compiled acceptor against the class the caller's evaluator is
/// prepared to pay for (rejecting with
/// [`TwqError::Invalid`](twq_guard::TwqError) before anything runs) and
/// prune dead control flow — e.g. the `q_sel`/`Update` leg when the
/// selector's `atp` already decides the test.
pub fn xpath_to_program_checked(
    query: &XPath,
    alphabet: &[SymId],
    id_attr: AttrId,
    test: SelectionTest,
    required: twq_automata::TwClass,
) -> Result<TwProgram, twq_guard::TwqError> {
    let prog = xpath_to_program(query, alphabet, id_attr, test);
    twq_analyze::certify(&prog, required)?;
    Ok(twq_analyze::prune(&prog).program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_from;
    use crate::parse::parse_xpath;
    use twq_automata::{run_on_tree, Limits};
    use twq_tree::generate::{random_tree, TreeGenConfig};
    use twq_tree::Vocab;

    fn setup(n: usize) -> (Vocab, TreeGenConfig, AttrId, AttrId) {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, n, &[1, 2]);
        let a = vocab.attr_opt("a").unwrap();
        let id = vocab.attr("id");
        (vocab, cfg, a, id)
    }

    #[test]
    fn checked_compile_rejects_weak_classes_and_preserves_semantics() {
        let (mut vocab, cfg, _a, id) = setup(20);
        let path = parse_xpath("//delta[sigma]", &mut vocab).unwrap();
        let plain = xpath_to_program(&path, &cfg.symbols, id, SelectionTest::NonEmpty);
        let class = plain.classify();
        // The acceptor uses look-ahead: plain TW cannot express it, and
        // the checked pipeline must say so before anything runs.
        let weak = xpath_to_program_checked(
            &path,
            &cfg.symbols,
            id,
            SelectionTest::NonEmpty,
            twq_automata::TwClass::Tw,
        );
        assert!(
            matches!(weak, Err(twq_guard::TwqError::Invalid { .. })),
            "{weak:?}"
        );
        // At its own class the pipeline succeeds, and the pruned program
        // accepts exactly the same trees.
        let pruned =
            xpath_to_program_checked(&path, &cfg.symbols, id, SelectionTest::NonEmpty, class)
                .unwrap();
        for seed in 0..6 {
            let mut t = random_tree(&cfg, seed);
            t.assign_unique_ids(id, &mut vocab);
            let a = run_on_tree(&plain, &t, Limits::default()).accepted();
            let b = run_on_tree(&pruned, &t, Limits::default()).accepted();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn nonempty_test_matches_reference_semantics() {
        let (mut vocab, cfg, _a, id) = setup(25);
        for (qi, q) in ["sigma/delta", "//delta[sigma]", "delta//delta"]
            .iter()
            .enumerate()
        {
            let path = parse_xpath(q, &mut vocab).unwrap();
            let prog = xpath_to_program(&path, &cfg.symbols, id, SelectionTest::NonEmpty);
            for seed in 0..8 {
                let mut t = random_tree(&cfg, seed);
                t.assign_unique_ids(id, &mut vocab);
                let expect = !eval_from(&t, &path, t.root()).is_empty();
                let got = run_on_tree(&prog, &t, Limits::default());
                assert_eq!(got.accepted(), expect, "query #{qi} seed {seed}");
            }
        }
    }

    #[test]
    fn some_value_test() {
        let (mut vocab, cfg, a, id) = setup(20);
        let one = vocab.val_int_opt(1).unwrap();
        let path = parse_xpath("//delta", &mut vocab).unwrap();
        let prog = xpath_to_program(&path, &cfg.symbols, id, SelectionTest::SomeValue(a, one));
        let (mut yes, mut no) = (0, 0);
        for seed in 0..12 {
            let t = random_tree(&cfg, seed);
            let expect = eval_from(&t, &path, t.root())
                .iter()
                .any(|u| t.attr(u, a) == one);
            let got = run_on_tree(&prog, &t, Limits::default());
            assert_eq!(got.accepted(), expect, "seed {seed}");
            if expect {
                yes += 1;
            } else {
                no += 1;
            }
        }
        assert!(yes > 0, "yes={yes} no={no}");
    }

    #[test]
    fn all_value_test_is_vacuous_on_empty_selections() {
        let (mut vocab, cfg, a, id) = setup(10);
        let one = vocab.val_int_opt(1).unwrap();
        // A query that never matches: a label that doesn't occur.
        let path = parse_xpath("//ghost", &mut vocab).unwrap();
        let prog = xpath_to_program(&path, &cfg.symbols, id, SelectionTest::AllValue(a, one));
        let t = random_tree(&cfg, 0);
        let got = run_on_tree(&prog, &t, Limits::default());
        assert!(got.accepted(), "∀ over ∅ is true");
    }

    #[test]
    fn all_value_test_detects_violations() {
        let (mut vocab, _cfg, a, id) = setup(5);
        let one = vocab.val_int_opt(1).unwrap();
        let path = parse_xpath("sigma/sigma", &mut vocab).unwrap();
        let syms: Vec<_> = vocab.syms().collect();
        let prog = xpath_to_program(&path, &syms, id, SelectionTest::AllValue(a, one));
        let good = twq_tree::parse_tree("sigma[a=9](sigma[a=1],sigma[a=1])", &mut vocab).unwrap();
        assert!(run_on_tree(&prog, &good, Limits::default()).accepted());
        let bad = twq_tree::parse_tree("sigma[a=9](sigma[a=1],sigma[a=2])", &mut vocab).unwrap();
        assert!(!run_on_tree(&prog, &bad, Limits::default()).accepted());
    }
}
