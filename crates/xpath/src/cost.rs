//! A coarse cost model of [`eval_from`](crate::eval_from)'s recursion.
//!
//! The relational evaluator's dominant expense is its descendant handling:
//! every `Descendant`/`FromDesc` step scans all `n` arena ids and performs
//! a parent-climbing ancestor test per id, i.e. ~`n · depth/2` link
//! follows *per context node*, before recursing into roughly one subtree's
//! worth of nodes. [`walk_cost`] mirrors that recursion symbolically over
//! a handful of tree statistics, returning an estimated node-visit count
//! and output cardinality. The `twq-index` planner multiplies the visit
//! count by a calibrated per-visit cost to weigh walking against an index
//! plan; the estimate only needs to be *rankable*, not tight.

use crate::ast::{Pred, XPath};

/// Tree statistics the estimate is computed against (the index layer
/// derives them from its build-time stats).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkParams {
    /// Node count `n`.
    pub nodes: f64,
    /// Mean node depth (root = 0).
    pub avg_depth: f64,
    /// Mean children per internal node.
    pub fanout: f64,
    /// Mean subtree size (`avg_depth + 1` by the depth-sum identity).
    pub avg_subtree: f64,
}

/// The symbolic mirror of one `eval_from` call from a single context node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkEstimate {
    /// Estimated node visits (subexpression evaluations + ancestor-test
    /// link follows), the quantity a per-visit cost multiplies.
    pub visits: f64,
    /// Estimated result cardinality, capped at `n`.
    pub out_card: f64,
}

/// Estimate the walking evaluator's cost for `path` from one context node.
pub fn walk_cost(path: &XPath, p: &WalkParams) -> WalkEstimate {
    let (visits, out_card) = rec(path, p);
    WalkEstimate { visits, out_card }
}

fn rec(path: &XPath, p: &WalkParams) -> (f64, f64) {
    let n = p.nodes;
    // Cost of one full-arena descendant scan: n ancestor tests, each a
    // parent climb of half the mean depth (at least one link follow).
    let desc_scan = n * (p.avg_depth * 0.5).max(1.0);
    match path {
        XPath::Name(_) | XPath::Wild => (1.0, 1.0),
        XPath::Child(p1, p2) => {
            let (c1, k1) = rec(p1, p);
            let (c2, k2) = rec(p2, p);
            (c1 + k1 * p.fanout * c2, (k1 * p.fanout * k2).min(n))
        }
        XPath::Descendant(p1, p2) => {
            let (c1, k1) = rec(p1, p);
            let (c2, k2) = rec(p2, p);
            (
                c1 + k1 * (desc_scan + p.avg_subtree * c2),
                (k1 * p.avg_subtree * k2).min(n),
            )
        }
        XPath::FromRoot(q) => rec(q, p),
        XPath::FromDesc(q) => {
            let (c, k) = rec(q, p);
            (desc_scan + p.avg_subtree * c, (p.avg_subtree * k).min(n))
        }
        XPath::FromChild(q) => {
            let (c, k) = rec(q, p);
            (p.fanout * c, (p.fanout * k).min(n))
        }
        XPath::Filter(q, pred) => {
            let (c, k) = rec(q, p);
            let per_test = match pred.as_ref() {
                Pred::Path(r) => rec(r, p).0,
                Pred::AttrEqConst(..) | Pred::AttrEqAttr(..) => 1.0,
            };
            // Selectivity guess: a filter keeps half its input.
            (c + k * per_test, (k * 0.5).min(n))
        }
        XPath::Union(p1, p2) => {
            let (c1, k1) = rec(p1, p);
            let (c2, k2) = rec(p2, p);
            (c1 + c2, (k1 + k2).min(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::xb;
    use twq_tree::Vocab;

    fn params() -> WalkParams {
        WalkParams {
            nodes: 1000.0,
            avg_depth: 6.0,
            fanout: 3.0,
            avg_subtree: 7.0,
        }
    }

    #[test]
    fn descendant_steps_dominate() {
        let mut v = Vocab::new();
        let s = v.sym("s");
        let p = params();
        let shallow = walk_cost(&xb::from_child(xb::name(s)), &p);
        let deep = walk_cost(&xb::from_desc(xb::name(s)), &p);
        // One descendant step costs at least one full-arena scan; a child
        // step touches only the fanout.
        assert!(deep.visits >= p.nodes);
        assert!(shallow.visits < 10.0);
        assert!(deep.visits > 50.0 * shallow.visits);
    }

    #[test]
    fn cards_are_capped_at_n() {
        let mut v = Vocab::new();
        v.sym("s");
        let p = params();
        // Stacked descendant steps inflate the cardinality product far
        // beyond n; the estimate must stay within the tree.
        let q = xb::from_desc(xb::from_desc(xb::from_desc(xb::wild())));
        let e = walk_cost(&q, &p);
        assert!(e.out_card <= p.nodes);
        assert!(e.visits.is_finite());
    }
}
