//! Direct (relational) evaluation of XPath expressions — the reference
//! semantics the `FO(∃*)` compilation is tested against.

use std::collections::BTreeSet;

use twq_exec::{BatchProfile, Pool};
use twq_guard::{DepthKind, Guard, GuardError, NullGuard, TwqError};
use twq_obs::{Collector, FoEval, NullCollector, Trace, TraceCollector, Verdict};
use twq_tree::{Label, NodeId, NodeSet, Tree};

use crate::ast::{Pred, XPath};

/// All nodes selected by `path` from context node `x`, as a [`NodeSet`]
/// (iteration in arena order — the same order the former `BTreeSet`
/// return carried).
pub fn eval_from(tree: &Tree, path: &XPath, x: NodeId) -> NodeSet {
    eval_from_with(tree, path, x, &mut NullCollector)
}

/// [`eval_from`] with instrumentation: one [`FoEval::Path`] per
/// subexpression evaluation (including recursive steps) and one
/// [`FoEval::Pred`] per filter-predicate test, exposing the relational
/// evaluator's cost profile.
pub fn eval_from_with<C: Collector>(tree: &Tree, path: &XPath, x: NodeId, c: &mut C) -> NodeSet {
    eval_from_inner(tree, path, x, c, &mut NullGuard).expect("NullGuard never trips")
}

/// [`eval_from`] under a resource [`Guard`]: one fuel unit per
/// subexpression evaluation, expression recursion (including filter
/// nesting) tracked as [`DepthKind::Query`].
pub fn eval_from_guarded<G: Guard>(
    tree: &Tree,
    path: &XPath,
    x: NodeId,
    guard: &mut G,
) -> Result<NodeSet, TwqError> {
    eval_from_inner(tree, path, x, &mut NullCollector, guard).map_err(TwqError::Guard)
}

/// The stable axis-step name a trace span carries for each [`XPath`]
/// variant.
fn axis_name(path: &XPath) -> &'static str {
    match path {
        XPath::Name(_) => "name",
        XPath::Wild => "wildcard",
        XPath::Child(..) => "child",
        XPath::Descendant(..) => "descendant",
        XPath::FromRoot(_) => "from-root",
        XPath::FromDesc(_) => "from-desc",
        XPath::FromChild(_) => "from-child",
        XPath::Filter(..) => "filter",
        XPath::Union(..) => "union",
    }
}

fn eval_from_inner<C: Collector, G: Guard>(
    tree: &Tree,
    path: &XPath,
    x: NodeId,
    c: &mut C,
    g: &mut G,
) -> Result<NodeSet, GuardError> {
    c.fo_eval(FoEval::Path);
    if G::ENABLED {
        g.tick()?;
        g.enter(DepthKind::Query)?;
    }
    if C::ENABLED {
        c.axis_enter(axis_name(path));
    }
    let out = eval_from_cases(tree, path, x, c, g);
    if C::ENABLED {
        // The axis span's frontier is the step's full result node set.
        let frontier: Vec<u64> = match &out {
            Ok(s) => s.iter().map(|n| u64::from(n.0)).collect(),
            Err(_) => Vec::new(),
        };
        c.axis_exit(&frontier);
    }
    if G::ENABLED {
        g.exit(DepthKind::Query);
    }
    out
}

fn eval_from_cases<C: Collector, G: Guard>(
    tree: &Tree,
    path: &XPath,
    x: NodeId,
    c: &mut C,
    g: &mut G,
) -> Result<NodeSet, GuardError> {
    Ok(match path {
        XPath::Name(s) => {
            if tree.label(x) == Label::Sym(*s) {
                NodeSet::from([x])
            } else {
                NodeSet::new()
            }
        }
        XPath::Wild => NodeSet::from([x]),
        XPath::Child(p1, p2) => {
            let mut out = NodeSet::with_capacity(tree.len());
            for y in &eval_from_inner(tree, p1, x, c, g)? {
                for ch in tree.children(y) {
                    out.union_with(&eval_from_inner(tree, p2, ch, c, g)?);
                }
            }
            out
        }
        XPath::Descendant(p1, p2) => {
            let mut out = NodeSet::with_capacity(tree.len());
            for y in &eval_from_inner(tree, p1, x, c, g)? {
                for d in tree.node_ids() {
                    if tree.is_strict_ancestor(y, d) {
                        out.union_with(&eval_from_inner(tree, p2, d, c, g)?);
                    }
                }
            }
            out
        }
        XPath::FromRoot(p) => eval_from_inner(tree, p, tree.root(), c, g)?,
        XPath::FromDesc(p) => {
            let mut out = NodeSet::with_capacity(tree.len());
            for d in tree.node_ids() {
                if tree.is_strict_ancestor(x, d) {
                    out.union_with(&eval_from_inner(tree, p, d, c, g)?);
                }
            }
            out
        }
        XPath::FromChild(p) => {
            let mut out = NodeSet::with_capacity(tree.len());
            for ch in tree.children(x) {
                out.union_with(&eval_from_inner(tree, p, ch, c, g)?);
            }
            out
        }
        XPath::Filter(p, q) => {
            let mut out = NodeSet::with_capacity(tree.len());
            for y in &eval_from_inner(tree, p, x, c, g)? {
                if pred_holds_inner(tree, q, y, c, g)? {
                    out.insert(y);
                }
            }
            out
        }
        XPath::Union(p1, p2) => {
            let mut out = eval_from_inner(tree, p1, x, c, g)?;
            out.union_with(&eval_from_inner(tree, p2, x, c, g)?);
            out
        }
    })
}

/// [`eval_from`] while recording a causal [`Trace`]: one nested `Axis`
/// span per subexpression evaluation, each carrying its node frontier.
/// The root verdict is whether anything was selected.
pub fn trace_eval_from(tree: &Tree, path: &XPath, x: NodeId) -> (NodeSet, Trace) {
    let mut c = TraceCollector::new();
    let out = eval_from_with(tree, path, x, &mut c);
    let mut t = c.finish("xpath");
    t.root.verdict = Some(Verdict::Bool(!out.is_empty()));
    (out, t)
}

/// Whether a filter predicate holds at node `y`.
pub fn pred_holds(tree: &Tree, pred: &Pred, y: NodeId) -> bool {
    pred_holds_with(tree, pred, y, &mut NullCollector)
}

/// [`pred_holds`] with instrumentation (one [`FoEval::Pred`] per test).
pub fn pred_holds_with<C: Collector>(tree: &Tree, pred: &Pred, y: NodeId, c: &mut C) -> bool {
    pred_holds_inner(tree, pred, y, c, &mut NullGuard).expect("NullGuard never trips")
}

fn pred_holds_inner<C: Collector, G: Guard>(
    tree: &Tree,
    pred: &Pred,
    y: NodeId,
    c: &mut C,
    g: &mut G,
) -> Result<bool, GuardError> {
    c.fo_eval(FoEval::Pred);
    Ok(match pred {
        Pred::Path(p) => !eval_from_inner(tree, p, y, c, g)?.is_empty(),
        Pred::AttrEqConst(a, d) => tree.attr(y, *a) == *d,
        Pred::AttrEqAttr(a, b) => tree.attr(y, *a) == tree.attr(y, *b),
    })
}

/// All (context, selected) pairs — the full binary relation.
pub fn eval_pairs(tree: &Tree, path: &XPath) -> BTreeSet<(NodeId, NodeId)> {
    eval_pairs_with(tree, path, &mut NullCollector)
}

/// [`eval_pairs`] with instrumentation.
pub fn eval_pairs_with<C: Collector>(
    tree: &Tree,
    path: &XPath,
    c: &mut C,
) -> BTreeSet<(NodeId, NodeId)> {
    let mut out = BTreeSet::new();
    for x in tree.node_ids() {
        for y in eval_from_with(tree, path, x, c) {
            out.insert((x, y));
        }
    }
    out
}

/// [`eval_pairs`] under a resource [`Guard`].
pub fn eval_pairs_guarded<G: Guard>(
    tree: &Tree,
    path: &XPath,
    guard: &mut G,
) -> Result<BTreeSet<(NodeId, NodeId)>, TwqError> {
    let mut out = BTreeSet::new();
    for x in tree.node_ids() {
        for y in eval_from_guarded(tree, path, x, guard)? {
            out.insert((x, y));
        }
    }
    Ok(out)
}

/// Batch [`eval_from`]: one selection per context node in `contexts`,
/// fanned across `pool`, results in `contexts` order. Equivalent to mapping
/// [`eval_from`] serially — and with a 1-worker pool it *is* that loop.
pub fn select_batch(tree: &Tree, path: &XPath, contexts: &[NodeId], pool: &Pool) -> Vec<NodeSet> {
    pool.scoped(contexts.len(), |i| eval_from(tree, path, contexts[i]))
}

/// [`select_batch`] plus a [`BatchProfile`]: per-context wall-clock
/// latencies in `contexts` order and the pool's per-worker telemetry. The
/// selections themselves are identical to [`select_batch`].
pub fn select_batch_profiled(
    tree: &Tree,
    path: &XPath,
    contexts: &[NodeId],
    pool: &Pool,
) -> (Vec<NodeSet>, BatchProfile) {
    let (runs, stats) = pool.scoped_with_stats(contexts.len(), |i| {
        let t0 = std::time::Instant::now();
        let sel = eval_from(tree, path, contexts[i]);
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        (sel, ns)
    });
    let mut latencies_ns = Vec::with_capacity(runs.len());
    let mut sels = Vec::with_capacity(runs.len());
    for (sel, ns) in runs {
        sels.push(sel);
        latencies_ns.push(ns);
    }
    (
        sels,
        BatchProfile {
            latencies_ns,
            stats,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xpath;
    use twq_tree::{parse_tree, Vocab};

    fn doc() -> (Vocab, Tree) {
        let mut v = Vocab::new();
        let t = parse_tree(
            "lib(book[y=1999](title,author,author),book[y=2001](title[y=2001],author))",
            &mut v,
        )
        .unwrap();
        (v, t)
    }

    #[test]
    fn child_steps() {
        let (mut v, t) = doc();
        let p = parse_xpath("lib/book/author", &mut v).unwrap();
        let sel = eval_from(&t, &p, t.root());
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn descendant_steps() {
        let (mut v, t) = doc();
        let p = parse_xpath("lib//author", &mut v).unwrap();
        assert_eq!(eval_from(&t, &p, t.root()).len(), 3);
        let q = parse_xpath("//title", &mut v).unwrap();
        assert_eq!(eval_from(&t, &q, t.root()).len(), 2);
    }

    #[test]
    fn filters() {
        let (mut v, t) = doc();
        // Books with at least two authors: none of the shape below — use a
        // simple existence filter instead.
        let p = parse_xpath("lib/book[title]", &mut v).unwrap();
        assert_eq!(eval_from(&t, &p, t.root()).len(), 2);
        let q = parse_xpath("lib/book[@y=1999]", &mut v).unwrap();
        assert_eq!(eval_from(&t, &q, t.root()).len(), 1);
    }

    #[test]
    fn attr_eq_attr_filter() {
        let (mut v, t) = doc();
        // title whose y equals the book's y would need an axis; here test
        // same-node comparison: book[@y=@y] is trivially all books with y.
        let p = parse_xpath("lib/book[@y=@y]", &mut v).unwrap();
        assert_eq!(eval_from(&t, &p, t.root()).len(), 2);
    }

    #[test]
    fn from_root_ignores_context() {
        let (mut v, t) = doc();
        let p = parse_xpath("/lib/book", &mut v).unwrap();
        // From a deep node, /lib/book still selects both books.
        let deep = t.node_at_path(&[1, 1]).unwrap();
        assert_eq!(eval_from(&t, &p, deep).len(), 2);
    }

    #[test]
    fn union_combines() {
        let (mut v, t) = doc();
        let p = parse_xpath("//title | //author", &mut v).unwrap();
        assert_eq!(eval_from(&t, &p, t.root()).len(), 5);
    }

    #[test]
    fn wildcard_is_identity() {
        let (mut v, t) = doc();
        let p = parse_xpath("*", &mut v).unwrap();
        for u in t.node_ids() {
            assert_eq!(eval_from(&t, &p, u), NodeSet::from([u]));
        }
    }

    #[test]
    fn select_batch_matches_serial_any_worker_count() {
        let (mut v, t) = doc();
        let p = parse_xpath("//author | lib/book[@y=1999]", &mut v).unwrap();
        let contexts: Vec<NodeId> = t.node_ids().collect();
        for workers in [1, 3] {
            let batch = select_batch(&t, &p, &contexts, &Pool::new(workers));
            assert_eq!(batch.len(), contexts.len());
            for (i, &x) in contexts.iter().enumerate() {
                assert_eq!(batch[i], eval_from(&t, &p, x), "workers={workers} x={x:?}");
            }
        }
    }

    #[test]
    fn pairs_cover_all_contexts() {
        let (mut v, t) = doc();
        let p = parse_xpath("*", &mut v).unwrap();
        assert_eq!(eval_pairs(&t, &p).len(), t.len());
    }
}
