//! Compilation of XPath into binary `FO(∃*)` formulas — the Section 2.3
//! simulation ("Clearly, XPath defined as such can be simulated by
//! FO(∃*)").
//!
//! The translation is compositional: every axis step introduces fresh
//! existential variables, and — because the fragment has no negation —
//! all quantifiers can be pulled to the front, yielding a prenex
//! existential formula `φ(x, y)` with `x` the context and `y` the selected
//! position, exactly as in the paper's worked example
//! (`a/b[↓c][d] ⇝ ∃y₂∃y₃ (x ≺ y ∧ y ≺ y₂ ∧ E(y, y₃) ∧ …)`).

use twq_guard::{DepthKind, Guard, GuardError, NullGuard, TwqError};
use twq_logic::fo::build as fb;
use twq_logic::{ExistsFormula, Formula, Var};
use twq_tree::Label;

use crate::ast::{Pred, XPath};

struct Ctx<'g, G: Guard> {
    next: u16,
    quantified: Vec<Var>,
    guard: &'g mut G,
}

impl<G: Guard> Ctx<'_, G> {
    fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        self.quantified.push(v);
        v
    }

    fn trans(&mut self, p: &XPath, x: Var, y: Var) -> Result<Formula, GuardError> {
        if G::ENABLED {
            self.guard.tick()?;
            self.guard.enter(DepthKind::Compile)?;
        }
        let out = self.trans_cases(p, x, y);
        if G::ENABLED {
            self.guard.exit(DepthKind::Compile);
        }
        out
    }

    fn trans_cases(&mut self, p: &XPath, x: Var, y: Var) -> Result<Formula, GuardError> {
        Ok(match p {
            XPath::Name(s) => fb::and([fb::eq(x, y), fb::lab(Label::Sym(*s), y)]),
            XPath::Wild => fb::eq(x, y),
            XPath::Child(p1, p2) => {
                let z = self.fresh();
                let w = self.fresh();
                fb::and([self.trans(p1, x, z)?, fb::edge(z, w), self.trans(p2, w, y)?])
            }
            XPath::Descendant(p1, p2) => {
                let z = self.fresh();
                let w = self.fresh();
                fb::and([self.trans(p1, x, z)?, fb::desc(z, w), self.trans(p2, w, y)?])
            }
            XPath::FromRoot(p) => {
                let r = self.fresh();
                fb::and([fb::root(r), self.trans(p, r, y)?])
            }
            XPath::FromDesc(p) => {
                let w = self.fresh();
                fb::and([fb::desc(x, w), self.trans(p, w, y)?])
            }
            XPath::FromChild(p) => {
                let c = self.fresh();
                fb::and([fb::edge(x, c), self.trans(p, c, y)?])
            }
            XPath::Filter(p, q) => {
                let base = self.trans(p, x, y)?;
                let pred = match &**q {
                    Pred::Path(inner) => {
                        let z = self.fresh();
                        self.trans(inner, y, z)?
                    }
                    Pred::AttrEqConst(a, d) => fb::val_const(*a, y, *d),
                    Pred::AttrEqAttr(a, b) => fb::val_eq(*a, y, *b, y),
                };
                fb::and([base, pred])
            }
            XPath::Union(p1, p2) => {
                let l = self.trans(p1, x, y)?;
                let r = self.trans(p2, x, y)?;
                fb::or([l, r])
            }
        })
    }
}

/// Compile an XPath expression to an equivalent binary `FO(∃*)` formula
/// `φ(x₀, x₁)` (context, selected).
pub fn compile(path: &XPath) -> ExistsFormula {
    compile_guarded(path, &mut NullGuard).expect("NullGuard never trips")
}

/// [`compile`] under a resource [`Guard`]: one fuel unit per AST node
/// translated, expression nesting tracked as [`DepthKind::Compile`] — the
/// backstop against adversarially deep expressions.
pub fn compile_guarded<G: Guard>(path: &XPath, guard: &mut G) -> Result<ExistsFormula, TwqError> {
    let x = Var(0);
    let y = Var(1);
    let mut ctx = Ctx {
        next: 2,
        quantified: Vec::new(),
        guard,
    };
    let matrix = ctx.trans(path, x, y).map_err(TwqError::Guard)?;
    ExistsFormula::new(x, y, ctx.quantified, matrix)
        .map_err(|e| TwqError::invalid("xpath::compile", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_from;
    use crate::parse::parse_xpath;
    use twq_tree::{parse_tree, Tree, Vocab};

    fn agree(src: &str, tree_src: &str) {
        let mut v = Vocab::new();
        let t: Tree = parse_tree(tree_src, &mut v).unwrap();
        let p = parse_xpath(src, &mut v).unwrap();
        let phi = compile(&p);
        for u in t.node_ids() {
            let direct = eval_from(&t, &p, u);
            let logical = phi.select(&t, u);
            assert_eq!(direct, logical, "{src} at {u} in {tree_src}");
        }
    }

    #[test]
    fn paper_example_shape() {
        // The paper's §2.3 worked example translates the expression to
        //   φ(x, y) = ∃y₂∃y₃ (x ≺ y ∧ y ≺ y₂ ∧ E(y, y₃)
        //              ∧ O_a(x) ∧ O_b(y) ∧ O_c(y₂) ∧ O_d(y₃)),
        // i.e. a descendant step a⇝b with filters "has a c-descendant" and
        // "has a d-child". In our concrete syntax: a//b[//c][d].
        agree("a//b[//c][d]", "a(b(c(q),d),b(d))");
        // The compiled formula mentions exactly the paper's atoms.
        let mut v = Vocab::new();
        let p = parse_xpath("a//b[//c][d]", &mut v).unwrap();
        let phi = compile(&p);
        let shown = phi.to_formula().display(&v);
        for piece in ["≺", "E(", "O_a", "O_b", "O_c", "O_d"] {
            assert!(shown.contains(piece), "{shown} missing {piece}");
        }
    }

    #[test]
    fn simple_paths_agree() {
        let tree = "a(b(c,d),b(d),c(b(c)))";
        for src in ["a", "*", "a/b", "a//c", "/a/b", "//c", "b | c", "a/b[c]"] {
            agree(src, tree);
        }
    }

    #[test]
    fn attribute_filters_agree() {
        let tree = "r[k=1](s[k=2,m=2](s[k=1]),s[k=2](s[m=3]))";
        for src in ["r/s[@k=2]", "//s[@k=1]", "r/s[@k=@m]", "*[@k=1]"] {
            agree(src, tree);
        }
    }

    #[test]
    fn nested_filters_agree() {
        let tree = "a(b(c(d),e),b(c),e(b(c(d))))";
        for src in ["a/b[c[d]]", "//b[c][e] | a/e", "a//*[c/d]"] {
            agree(src, tree);
        }
    }

    #[test]
    fn compiled_formula_is_well_formed() {
        let mut v = Vocab::new();
        let p = parse_xpath("a/b[c//d] | //e", &mut v).unwrap();
        let phi = compile(&p);
        // Prenex existential with quantifier-free matrix by construction.
        assert!(phi.matrix().is_quantifier_free());
        assert!(!phi.quantified().is_empty());
    }
}
