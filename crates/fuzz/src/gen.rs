//! Seeded case generation: random well-formed `TwProgram`s stratified by
//! the Definition 5.1 class, near-miss ill-formed builder specs, hostile
//! tree shapes, and resource-budget rolls.
//!
//! Everything here is a pure function of the `StdRng` handed in, which is
//! itself a pure function of the campaign seed and the case index — the
//! whole corpus is reproducible from one `u64`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use twq_automata::{Action, Dir, ProgramError, State, TwClass, TwProgram, TwProgramBuilder};
use twq_guard::FaultPlan;
use twq_logic::exists::selectors;
use twq_logic::store::sbuild;
use twq_logic::{ExistsFormula, RegId, Relation, SFormula, Var};
use twq_tree::generate::{
    chain_tree, comb_tree, perfect_tree, random_tree, star_tree, TreeGenConfig,
};
use twq_tree::{AttrId, Label, SymId, Tree, Value, Vocab};
use twq_xpath::{compile, random_xpath_shaped, SelectionTest, XPath, XPathGenConfig, XPathShape};

/// The shared generation universe: Example 3.2's `{σ, δ}` alphabet, the
/// attribute `a`, and a small integer datum pool. Every generated program,
/// formula, and tree of a campaign speaks this vocabulary, so any program
/// can run on any tree.
#[derive(Debug, Clone)]
pub struct Universe {
    /// The vocabulary all ids below were interned in.
    pub vocab: Vocab,
    /// `{σ, δ}`.
    pub symbols: Vec<SymId>,
    /// The attribute `a`.
    pub attr: AttrId,
    /// The datum pool (integers `0..=3`).
    pub values: Vec<Value>,
}

impl Universe {
    /// The standard campaign universe.
    pub fn standard() -> Universe {
        let mut vocab = Vocab::new();
        let cfg = TreeGenConfig::example32(&mut vocab, 1, &[0, 1, 2, 3]);
        let attr = vocab.attr("a");
        let values = cfg.attributes[0].1.clone();
        Universe {
            symbols: cfg.symbols,
            attr,
            values,
            vocab,
        }
    }

    /// All labels a rule can dispatch on: the four delimiters plus the
    /// element symbols.
    pub fn labels(&self) -> Vec<Label> {
        let mut out = vec![
            Label::DelimRoot,
            Label::DelimOpen,
            Label::DelimClose,
            Label::DelimLeaf,
        ];
        out.extend(self.symbols.iter().map(|&s| Label::Sym(s)));
        out
    }

    fn value(&self, rng: &mut StdRng) -> Value {
        self.values[rng.gen_range(0..self.values.len())]
    }
}

/// The resource constraints a differential case runs under; `None`
/// everywhere means unguarded. Deadlines are only ever generated as `0 ms`
/// (already expired), the single deterministic point of the wall clock.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BudgetSpec {
    /// Fuel budget, charged once per evaluator step.
    pub fuel: Option<u64>,
    /// Wall-clock deadline in milliseconds (generated only as `Some(0)`).
    pub deadline_ms: Option<u64>,
    /// Seeded chaos plan (fault injection).
    pub faults: Option<FaultPlan>,
}

impl BudgetSpec {
    /// Whether no constraint is configured.
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none() && self.deadline_ms.is_none() && self.faults.is_none()
    }

    /// Build a fresh guard enforcing this spec.
    pub fn guard(&self) -> twq_guard::ResourceGuard {
        let mut g = twq_guard::ResourceGuard::unlimited();
        if let Some(fuel) = self.fuel {
            g = g.with_budget(fuel);
        }
        if let Some(ms) = self.deadline_ms {
            g = g.with_deadline(std::time::Duration::from_millis(ms));
        }
        if let Some(plan) = &self.faults {
            g = g.with_faults(plan.clone());
        }
        g
    }
}

/// A differential program case: run `program` on `tree` under `budget`
/// through every applicable evaluator pair.
#[derive(Debug, Clone)]
pub struct ProgramCase {
    /// The generated (or minimized) program.
    pub program: TwProgram,
    /// The data tree (element labels only; the oracle delimits it).
    pub tree: Tree,
    /// Resource constraints for the guarded pairs.
    pub budget: BudgetSpec,
}

/// A differential formula case: evaluate the binary `FO(∃*)` formula on
/// `tree` through every FO evaluator pair, and — when the source XPath is
/// known — every rewritten-vs-direct XPath pair too.
#[derive(Debug, Clone)]
pub struct FormulaCase {
    /// The XPath-compiled binary formula.
    pub phi: ExistsFormula,
    /// The source XPath `phi` was compiled from (`None` only for the
    /// fallback selector); drives the `twq-rw` rewritten-vs-direct pairs.
    pub path: Option<XPath>,
    /// The element alphabet the tree was generated over (a sound
    /// [`twq_rw::RewriteCtx`] assumption for the planner pair).
    pub alphabet: Vec<SymId>,
    /// The witness attribute for the routed acceptor pair.
    pub id_attr: AttrId,
    /// The selection test for the routed acceptor pair.
    pub test: SelectionTest,
    /// The data tree.
    pub tree: Tree,
    /// Optional fuel for the guarded selection pair.
    pub fuel: Option<u64>,
}

/// Generate a random well-formed program of (at most) the given class.
///
/// The program is assembled through the validating [`TwProgramBuilder`] and
/// is correct by construction; the build is still checked and the class
/// verified via [`TwProgram::check_class`].
pub fn gen_program(
    rng: &mut StdRng,
    uni: &Universe,
    class: TwClass,
    max_states: usize,
) -> TwProgram {
    let mut b = TwProgramBuilder::new();
    let n = rng.gen_range(2..=max_states.max(2));
    let mut states: Vec<State> = (0..n - 1).map(|i| b.state(&format!("q{i}"))).collect();
    let qf = b.state("qF");
    b.initial(states[0]).final_state(qf);

    // Registers per class. Register X1 is always unary for the atp classes
    // (atp results land in a register arity-compatible with X1).
    let relational = matches!(class, TwClass::TwR | TwClass::TwRL);
    let mut arities: Vec<usize> = Vec::new();
    arities.push(if class == TwClass::TwR && rng.gen_bool(0.4) {
        2
    } else {
        1
    });
    if rng.gen_bool(0.6) {
        arities.push(if relational && rng.gen_bool(0.5) {
            2
        } else {
            1
        });
    }
    let regs: Vec<RegId> = arities
        .iter()
        .map(|&a| {
            // Initial content: usually empty; sometimes a singleton (in
            // range for every class — Definition 5.1 registers hold at
            // most one value).
            let init = if a == 1 && rng.gen_bool(0.2) {
                Relation::singleton(uni.value(rng))
            } else {
                Relation::empty(a)
            };
            b.register(a, init)
        })
        .collect();

    states.push(qf); // rule targets may be any state, including final
    let labels = uni.labels();
    for &q in &states[..states.len() - 1] {
        for &label in &labels {
            if !rng.gen_bool(0.75) {
                continue;
            }
            let guard = gen_guard(rng, uni, &arities, 2);
            let action = gen_action(rng, uni, class, &states, &arities, &regs);
            b.rule(label, q, guard, action);
            // A small rate of duplicate (label, state) rules exercises the
            // Nondeterministic halt across every evaluator.
            if rng.gen_bool(0.04) {
                let action = gen_action(rng, uni, class, &states, &arities, &regs);
                b.rule_true(label, q, action);
            }
        }
    }
    let prog = b
        .build()
        .expect("generated spec is well-formed by construction");
    debug_assert!(
        prog.check_class(class).is_ok(),
        "generator broke class {class}"
    );
    prog
}

/// A random closed store formula (guard) mentioning only declared registers.
fn gen_guard(rng: &mut StdRng, uni: &Universe, arities: &[usize], depth: usize) -> SFormula {
    use sbuild::*;
    let d = uni.value(rng);
    let top = rng.gen_range(0..10u32);
    match top {
        // Unguarded rules dominate: walks must make progress to be
        // interesting.
        0..=3 => SFormula::True,
        4 => eq(attr(uni.attr), cst(d)),
        5 if !arities.is_empty() => {
            // "register i is non-empty"
            let i = rng.gen_range(0..arities.len());
            let terms: Vec<_> = (0..arities[i]).map(|k| v(k as u16)).collect();
            let mut f = rel(RegId(i as u8), terms);
            for k in (0..arities[i]).rev() {
                f = exists(Var(k as u16), f);
            }
            f
        }
        6 if !arities.is_empty() && arities.contains(&1) => {
            // "the current attribute value is stored in a unary register"
            let i = arities.iter().position(|&a| a == 1).expect("checked");
            exists(
                Var(0),
                and([rel(RegId(i as u8), [v(0)]), eq(v(0), attr(uni.attr))]),
            )
        }
        7 if depth > 0 => not(gen_guard(rng, uni, arities, depth - 1)),
        8 if depth > 0 => and([
            gen_guard(rng, uni, arities, depth - 1),
            gen_guard(rng, uni, arities, depth - 1),
        ]),
        _ if depth > 0 => or([
            gen_guard(rng, uni, arities, depth - 1),
            gen_guard(rng, uni, arities, depth - 1),
        ]),
        _ => SFormula::True,
    }
}

/// A random update formula with exactly `arity` free variables, in
/// single-value form when `single` demands it.
fn gen_update(
    rng: &mut StdRng,
    uni: &Universe,
    arities: &[usize],
    target: usize,
    single: bool,
) -> SFormula {
    use sbuild::*;
    let arity = arities[target];
    let d = uni.value(rng);
    if arity == 1 {
        let unary_regs: Vec<usize> = (0..arities.len()).filter(|&i| arities[i] == 1).collect();
        let choice = rng.gen_range(0..if single { 4 } else { 6 });
        match choice {
            0 => eq(v(0), attr(uni.attr)),
            1 => eq(v(0), cst(d)),
            2 => not(eq(v(0), v(0))), // the canonical clear
            3 => {
                // copy a unary register (possibly the target itself)
                let i = unary_regs[rng.gen_range(0..unary_regs.len())];
                rel(RegId(i as u8), [v(0)])
            }
            4 => or([eq(v(0), cst(d)), eq(v(0), attr(uni.attr))]),
            _ => match arities.iter().position(|&a| a == 2) {
                // project a binary register (free vars: just x0)
                Some(i) => exists(Var(1), rel(RegId(i as u8), [v(0), v(1)])),
                None => and([rel(RegId(target as u8), [v(0)]), not(eq(v(0), cst(d)))]),
            },
        }
    } else {
        debug_assert!(!single, "single-value classes declare only unary registers");
        let d2 = uni.value(rng);
        match rng.gen_range(0..4u32) {
            0 => and([eq(v(0), attr(uni.attr)), eq(v(1), cst(d))]),
            1 => and([eq(v(0), v(1)), eq(v(0), cst(d2))]), // a diagonal point
            2 => match arities.iter().position(|&a| a == 2) {
                Some(i) => rel(RegId(i as u8), [v(1), v(0)]), // transpose copy
                None => and([eq(v(0), cst(d)), eq(v(1), cst(d2))]),
            },
            _ => and([eq(v(0), cst(d)), eq(v(1), attr(uni.attr))]),
        }
    }
}

/// A random `atp` look-ahead formula legal for the class.
fn gen_selector(rng: &mut StdRng, uni: &Universe, class: TwClass) -> ExistsFormula {
    let single_only = class == TwClass::TwL;
    let n = if single_only { 4 } else { 8 };
    match rng.gen_range(0..n) {
        0 => selectors::self_node(),
        1 => selectors::parent(),
        2 => selectors::first_child(),
        3 => selectors::root_node(),
        4 => selectors::children(),
        5 => selectors::descendants(),
        6 => selectors::delim_leaf_descendants(),
        _ => {
            let s = uni.symbols[rng.gen_range(0..uni.symbols.len())];
            selectors::descendants_labeled(Label::Sym(s))
        }
    }
}

fn gen_action(
    rng: &mut StdRng,
    uni: &Universe,
    class: TwClass,
    states: &[State],
    arities: &[usize],
    regs: &[RegId],
) -> Action {
    let next = states[rng.gen_range(0..states.len())];
    let lookahead = matches!(class, TwClass::TwL | TwClass::TwRL);
    let single = matches!(class, TwClass::Tw | TwClass::TwL);
    let roll = rng.gen_range(0..10u32);
    if roll < 6 || regs.is_empty() {
        let dir = match rng.gen_range(0..5u32) {
            0 => Dir::Stay,
            1 => Dir::Left,
            2 => Dir::Right,
            3 => Dir::Up,
            _ => Dir::Down,
        };
        Action::Move(next, dir)
    } else if roll < 9 || !lookahead {
        let target = rng.gen_range(0..regs.len());
        Action::Update(
            next,
            gen_update(rng, uni, arities, target, single),
            regs[target],
        )
    } else {
        // atp result must be arity-compatible with register X1 (unary in
        // the look-ahead classes by construction).
        let unary: Vec<usize> = (0..arities.len())
            .filter(|&i| arities[i] == arities[0])
            .collect();
        let target = unary[rng.gen_range(0..unary.len())];
        let p = states[rng.gen_range(0..states.len())];
        Action::Atp(next, gen_selector(rng, uni, class), p, regs[target])
    }
}

/// Draw a class for a program case, covering all four Definition 5.1 rows.
pub fn gen_class(rng: &mut StdRng) -> TwClass {
    match rng.gen_range(0..4u32) {
        0 => TwClass::Tw,
        1 => TwClass::TwL,
        2 => TwClass::TwR,
        _ => TwClass::TwRL,
    }
}

/// The hostile tree corpus: random bushy trees, collision-heavy trees,
/// deep chains, wide fans, combs, perfect trees, and tiny trees — every
/// shape deterministic in the rng.
pub fn gen_tree(rng: &mut StdRng, uni: &Universe) -> Tree {
    let sym = uni.symbols[rng.gen_range(0..uni.symbols.len())];
    let shaped = match rng.gen_range(0..8u32) {
        0 | 1 => {
            // Uniform random tree over the full pool.
            let cfg = TreeGenConfig {
                nodes: rng.gen_range(1..=48),
                max_children: rng.gen_range(1..=4),
                symbols: uni.symbols.clone(),
                attributes: vec![(uni.attr, uni.values.clone())],
                collision_pool: None,
            };
            return random_tree(&cfg, rng.next_u64());
        }
        2 => {
            // Value-collision-heavy: many nodes, k distinct data values.
            let cfg = TreeGenConfig {
                nodes: rng.gen_range(8..=96),
                max_children: rng.gen_range(2..=5),
                symbols: uni.symbols.clone(),
                attributes: vec![(uni.attr, uni.values.clone())],
                collision_pool: Some(rng.gen_range(1..=2)),
            };
            return random_tree(&cfg, rng.next_u64());
        }
        3 => chain_tree(sym, rng.gen_range(16..=96)),
        4 => star_tree(sym, rng.gen_range(8..=96)),
        5 => comb_tree(sym, rng.gen_range(4..=32)),
        6 => perfect_tree(sym, 2, rng.gen_range(1..=5)),
        _ => {
            let cfg = TreeGenConfig {
                nodes: rng.gen_range(1..=4),
                max_children: 4,
                symbols: uni.symbols.clone(),
                attributes: vec![(uni.attr, uni.values.clone())],
                collision_pool: None,
            };
            return random_tree(&cfg, rng.next_u64());
        }
    };
    // The shaped generators carry no attributes; paint them from a small
    // pool so value joins actually collide.
    assign_attrs(rng, uni, shaped)
}

fn assign_attrs(rng: &mut StdRng, uni: &Universe, mut tree: Tree) -> Tree {
    let k = rng.gen_range(1..=3.min(uni.values.len()));
    let start = rng.gen_range(0..uni.values.len());
    for u in tree.node_ids() {
        if rng.gen_bool(0.85) {
            let v = uni.values[(start + rng.gen_range(0..k)) % uni.values.len()];
            tree.set_attr(u, uni.attr, v);
        }
    }
    tree
}

/// Roll a budget: mostly unguarded, then tight fuel, an expired deadline,
/// or a seeded chaos plan (rates boosted well above the `FaultPlan`
/// defaults so short runs actually trip).
pub fn gen_budget(rng: &mut StdRng) -> BudgetSpec {
    let roll = rng.gen_range(0..100u32);
    let mut spec = BudgetSpec::default();
    if roll < 50 {
        return spec;
    }
    if roll < 75 {
        spec.fuel = Some(rng.gen_range(0..=400));
    } else if roll < 85 {
        spec.deadline_ms = Some(0);
    } else {
        spec.faults = Some(
            FaultPlan::seeded(rng.next_u64())
                .fuel_rate(10_000)
                .deadline_rate(5_000)
                .drop_rate(25_000)
                .corrupt_rate(25_000),
        );
        if roll >= 95 {
            // Chaos and a fuel budget at once.
            spec.fuel = Some(rng.gen_range(0..=400));
        }
    }
    spec
}

/// Generate a full program case.
pub fn gen_program_case(rng: &mut StdRng, uni: &Universe) -> ProgramCase {
    let class = gen_class(rng);
    let program = gen_program(rng, uni, class, 6);
    let tree = gen_tree(rng, uni);
    let budget = gen_budget(rng);
    ProgramCase {
        program,
        tree,
        budget,
    }
}

/// Generate a formula case: an XPath-compiled binary `FO(∃*)` formula
/// small enough for the naive `O(|t|^q)` evaluator, on a small tree.
///
/// Half the corpus is drawn union-heavy or filter-heavy (see
/// [`XPathShape`]) so the `twq-rw` rule set — union canonicalization,
/// subsumption pruning, filter pushdown, tautology elimination — actually
/// fires on fuzz inputs instead of idling on step-only paths.
pub fn gen_formula_case(rng: &mut StdRng, uni: &Universe) -> FormulaCase {
    let xcfg = XPathGenConfig {
        symbols: uni.symbols.clone(),
        attrs: vec![uni.attr],
        values: vec![uni.values[0]],
        max_depth: 2,
    };
    let shape = match rng.gen_range(0..4u32) {
        0 | 1 => XPathShape::Uniform,
        2 => XPathShape::UnionHeavy,
        _ => XPathShape::FilterHeavy,
    };
    let mut picked = None;
    for _ in 0..32 {
        let path = random_xpath_shaped(&xcfg, rng.next_u64(), shape);
        let cand = compile(&path);
        if cand.quantified().len() <= 4 {
            picked = Some((cand, path));
            break;
        }
    }
    let (phi, path) = match picked {
        Some((phi, path)) => (phi, Some(path)),
        None => (selectors::descendants(), None),
    };
    let test = match rng.gen_range(0..4u32) {
        0 | 1 => SelectionTest::NonEmpty,
        2 => SelectionTest::SomeValue(uni.attr, uni.value(rng)),
        _ => SelectionTest::AllValue(uni.attr, uni.value(rng)),
    };
    // Naive selection is O(n^{q+2}); keep the tree tiny.
    let cfg = TreeGenConfig {
        nodes: rng.gen_range(1..=9),
        max_children: rng.gen_range(1..=4),
        symbols: uni.symbols.clone(),
        attributes: vec![(uni.attr, uni.values.clone())],
        collision_pool: rng.gen_bool(0.5).then(|| rng.gen_range(1..=2)),
    };
    let tree = random_tree(&cfg, rng.next_u64());
    let fuel = rng.gen_bool(0.4).then(|| rng.gen_range(0..=300));
    FormulaCase {
        phi,
        path,
        alphabet: uni.symbols.clone(),
        id_attr: uni.attr,
        test,
        tree,
        fuel,
    }
}

/// The stable name of a [`ProgramError`] variant, used to assert that a
/// near-miss spec is rejected for the *intended* reason.
pub fn program_error_kind(e: &ProgramError) -> &'static str {
    match e {
        ProgramError::UnknownState(_) => "unknown-state",
        ProgramError::UnknownRegister(_) => "unknown-register",
        ProgramError::UpdateArityMismatch(_) => "update-arity-mismatch",
        ProgramError::RelationArityMismatch(_) => "relation-arity-mismatch",
        ProgramError::GuardNotSentence(_) => "guard-not-sentence",
        ProgramError::RuleFromFinalState(_) => "rule-from-final-state",
        ProgramError::AtpResultArity(_) => "atp-result-arity",
        ProgramError::LookAheadForbidden(_) => "look-ahead-forbidden",
        ProgramError::NonUnaryRegister(_) => "non-unary-register",
        ProgramError::UpdateNotSingleValue(_) => "update-not-single-value",
        ProgramError::InitArityMismatch(_) => "init-arity-mismatch",
    }
}

/// Build a near-miss ill-formed spec: a well-formed skeleton with exactly
/// one sabotage applied. Returns the error kind the builder *must* report
/// and the build result.
pub fn gen_near_miss(
    rng: &mut StdRng,
    uni: &Universe,
) -> (&'static str, Result<TwProgram, ProgramError>) {
    use sbuild::*;
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let qf = b.state("qF");
    b.initial(q0).final_state(qf);
    let r1 = b.unary_register();
    let r2 = b.register(2, Relation::empty(2));
    let sigma = Label::Sym(uni.symbols[0]);
    // A valid backbone rule, so the sabotage is the *only* defect.
    b.rule_true(sigma, q1, Action::Move(qf, Dir::Stay));
    let expected = match rng.gen_range(0..6u32) {
        0 => {
            b.rule_true(sigma, qf, Action::Move(q0, Dir::Stay));
            "rule-from-final-state"
        }
        1 => {
            // Guard with a free variable.
            b.rule(sigma, q0, rel(r1, [v(0)]), Action::Move(qf, Dir::Stay));
            "guard-not-sentence"
        }
        2 => {
            // ψ has one free variable, target register is binary.
            b.rule_true(sigma, q0, Action::Update(qf, eq(v(0), attr(uni.attr)), r2));
            "update-arity-mismatch"
        }
        3 => {
            // Guard over an undeclared register.
            let ghost = RegId(9);
            b.rule(
                sigma,
                q0,
                exists(Var(0), rel(ghost, [v(0)])),
                Action::Move(qf, Dir::Stay),
            );
            "unknown-register"
        }
        4 => {
            // atp result register arity ≠ register X1 arity.
            b.rule_true(sigma, q0, Action::Atp(q1, selectors::parent(), q1, r2));
            "atp-result-arity"
        }
        _ => {
            // Action targeting an un-interned state.
            b.rule_true(sigma, q0, Action::Move(State(99), Dir::Down));
            "unknown-state"
        }
    };
    (expected, b.build())
}

/// Inject analyzer-visible smells into a freshly generated program spec:
/// an orphan state with rules of its own, and/or a statically false guard.
/// The result is still builder-valid; the oracle asserts the static
/// analyzer reports a diagnostic or the pruner removes something.
pub fn gen_smelly_program(rng: &mut StdRng, uni: &Universe) -> TwProgram {
    use sbuild::*;
    let mut b = TwProgramBuilder::new();
    let q0 = b.state("q0");
    let q1 = b.state("q1");
    let qf = b.state("qF");
    b.initial(q0).final_state(qf);
    let sigma = Label::Sym(uni.symbols[0]);
    let delta = Label::Sym(uni.symbols[1 % uni.symbols.len()]);
    b.rule_true(Label::DelimRoot, q0, Action::Move(qf, Dir::Down));
    b.rule_true(sigma, q0, Action::Move(q0, Dir::Right));
    // At least one smell is always present; extras ride on coin flips.
    let forced = rng.gen_range(0..2u32);
    if forced == 0 || rng.gen_bool(0.4) {
        // q_dead is unreachable from q0: a dead-state diagnostic, and the
        // pruner removes its rule.
        let dead = b.state("q_dead");
        b.rule_true(delta, dead, Action::Move(qf, Dir::Stay));
    }
    if forced == 1 || rng.gen_bool(0.4) {
        // A statically unsatisfiable guard: d ≠ d.
        let d = uni.values[rng.gen_range(0..uni.values.len())];
        b.rule(
            delta,
            q0,
            not(eq(cst(d), cst(d))),
            Action::Move(qf, Dir::Up),
        );
    }
    if rng.gen_bool(0.5) {
        // Duplicate unguarded rules: an overlap diagnostic.
        b.rule_true(sigma, q1, Action::Move(qf, Dir::Stay));
        b.rule_true(sigma, q1, Action::Move(q0, Dir::Stay));
        b.rule_true(delta, q0, Action::Move(q1, Dir::Down));
    }
    b.build().expect("smelly specs are still well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_match_their_class() {
        let uni = Universe::standard();
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let class = gen_class(&mut rng);
            let prog = gen_program(&mut rng, &uni, class, 6);
            assert!(
                prog.check_class(class).is_ok(),
                "seed {seed}: {} not in {class}",
                prog.classify()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let uni_a = Universe::standard();
        let uni_b = Universe::standard();
        for seed in 0..32 {
            let mut ra = StdRng::seed_from_u64(seed);
            let mut rb = StdRng::seed_from_u64(seed);
            let a = gen_program_case(&mut ra, &uni_a);
            let b = gen_program_case(&mut rb, &uni_b);
            assert_eq!(a.program.rules(), b.program.rules(), "seed {seed}");
            assert_eq!(a.tree.len(), b.tree.len(), "seed {seed}");
            assert_eq!(a.budget, b.budget, "seed {seed}");
        }
    }

    #[test]
    fn hostile_corpus_covers_every_shape() {
        let uni = Universe::standard();
        let mut sizes = std::collections::HashSet::new();
        let mut depths = std::collections::HashSet::new();
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = gen_tree(&mut rng, &uni);
            sizes.insert(t.len());
            depths.insert(
                t.node_ids()
                    .filter(|&u| t.is_leaf(u))
                    .map(|u| {
                        let mut d = 0;
                        let mut cur = u;
                        while let Some(p) = t.parent(cur) {
                            d += 1;
                            cur = p;
                        }
                        d
                    })
                    .max()
                    .unwrap_or(0),
            );
        }
        assert!(sizes.iter().any(|&n| n == 1), "tiny trees present");
        assert!(sizes.iter().any(|&n| n >= 64), "large trees present");
        assert!(depths.iter().any(|&d| d >= 32), "deep chains present");
        assert!(depths.iter().any(|&d| d <= 1), "flat fans present");
    }

    #[test]
    fn near_misses_are_rejected_for_the_expected_reason() {
        let uni = Universe::standard();
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (expected, result) = gen_near_miss(&mut rng, &uni);
            let err = result.expect_err("near-miss must not build");
            assert_eq!(program_error_kind(&err), expected, "seed {seed}: {err}");
            kinds.insert(expected);
        }
        assert!(kinds.len() >= 5, "sabotage coverage: {kinds:?}");
    }

    #[test]
    fn smelly_programs_build() {
        let uni = Universe::standard();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let _ = gen_smelly_program(&mut rng, &uni);
        }
    }
}
