//! # twq-fuzz — differential fuzzing for the walking-automata stack
//!
//! The paper gives one semantics per query class; this repo grew several
//! evaluators for each (direct engine, guarded engine, batch engine,
//! routed graph evaluator, naive/memoized/parallel FO evaluation,
//! backtracking `FO(∃*)` selection). This crate generates seeded random
//! well-formed programs (stratified by the Definition 5.1 classes), a
//! hostile tree corpus, and adversarial budgets, then requires every
//! applicable evaluator pair to agree — on answers *and* on failure modes.
//! Disagreements are shrunk by delta debugging and written as replayable
//! JSONL repros.
//!
//! Entry points: [`run_campaign`] (fan a seeded campaign over a
//! [`Pool`]), [`run_case`] (one case), [`minimize()`] (shrink a failing
//! triple), [`Repro`] (the JSONL codec).
//!
//! Campaign results are a pure function of `(seed, cases, mix)`: each case
//! derives its own RNG from `case_seed`, and the oracle always uses a
//! private two-worker pool, so `--jobs` only changes wall-clock time.

pub mod explain;
pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod repro;

pub use explain::{explain_repro, explain_with_names};
pub use gen::{
    gen_budget, gen_class, gen_formula_case, gen_near_miss, gen_program, gen_program_case,
    gen_smelly_program, gen_tree, program_error_kind, BudgetSpec, FormulaCase, ProgramCase,
    Universe,
};
pub use minimize::{copy_subtree, delete_subtree, minimize, with_rules};
pub use oracle::{
    check_formula_case, check_program_case, check_smelly_program, Discrepancy, InjectedBug,
    FUZZ_LIMITS,
};
pub use repro::{parse_jsonl, render_jsonl, Repro};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twq_exec::Pool;

use crate::gen::program_error_kind as error_kind;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; every case derives its RNG from this and its index.
    pub seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Per-mille of cases that are FO formula cases instead of programs.
    pub formula_per_mille: u32,
    /// Per-mille of cases that are near-miss ill-formed builder specs.
    pub near_miss_per_mille: u32,
    /// Per-mille of cases that are well-formed but analyzer-smelly.
    pub smelly_per_mille: u32,
    /// Shrink failing program cases with [`minimize()`].
    pub minimize: bool,
    /// Plant a bug for self-testing the oracle and minimizer.
    pub inject: Option<InjectedBug>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 1000,
            formula_per_mille: 250,
            near_miss_per_mille: 100,
            smelly_per_mille: 100,
            minimize: true,
            inject: None,
        }
    }
}

/// What a case turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// A well-formed program run through the engine-pair oracle.
    Program,
    /// An FO formula run through the logic-pair oracle.
    Formula,
    /// An ill-formed builder spec checked for the intended rejection.
    NearMiss,
    /// A well-formed program the static analyzer must flag.
    Smelly,
}

impl CaseKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CaseKind::Program => "program",
            CaseKind::Formula => "formula",
            CaseKind::NearMiss => "near-miss",
            CaseKind::Smelly => "smelly",
        }
    }
}

/// The outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case index within the campaign.
    pub index: u64,
    /// The per-case seed (replays the case via the generators alone).
    pub seed: u64,
    /// What was generated.
    pub kind: CaseKind,
    /// The disagreement, if any.
    pub discrepancy: Option<Discrepancy>,
    /// The failing triple, for program-shaped cases (minimizable).
    pub case: Option<ProgramCase>,
}

/// Derive a per-case seed: splitmix64 over `(campaign seed, index)`, so
/// case streams are independent and the campaign can fan out in any order.
pub fn case_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one case. `oracle_pool` is the pool handed to the differential
/// oracle; campaign runs pass a fixed-size private pool so outcomes don't
/// depend on `--jobs`.
pub fn run_case(cfg: &FuzzConfig, uni: &Universe, index: u64, oracle_pool: &Pool) -> CaseOutcome {
    let seed = case_seed(cfg.seed, index);
    let mut rng = StdRng::seed_from_u64(seed);
    let roll = rng.gen_range(0..1000u32);
    let formula_cut = cfg.formula_per_mille;
    let near_cut = formula_cut + cfg.near_miss_per_mille;
    let smelly_cut = near_cut + cfg.smelly_per_mille;

    let (kind, discrepancy, case) = if roll < formula_cut {
        let case = gen_formula_case(&mut rng, uni);
        (
            CaseKind::Formula,
            check_formula_case(&case, oracle_pool),
            None,
        )
    } else if roll < near_cut {
        let (expected, result) = gen_near_miss(&mut rng, uni);
        let d = match result {
            Ok(_) => Some(Discrepancy {
                pair: "builder near-miss".to_owned(),
                detail: format!("expected rejection {expected:?}, but the program built"),
                divergence: None,
            }),
            Err(e) if error_kind(&e) == expected => None,
            Err(e) => Some(Discrepancy {
                pair: "builder near-miss".to_owned(),
                detail: format!("expected {expected:?}, got {:?}: {e}", error_kind(&e)),
                divergence: None,
            }),
        };
        (CaseKind::NearMiss, d, None)
    } else if roll < smelly_cut {
        let prog = gen_smelly_program(&mut rng, uni);
        let d = check_smelly_program(&prog);
        // Smelly programs are still well-formed: run the full engine
        // oracle on them too (they stress dead-rule and unsat-guard paths
        // in `prune`/`run_routed`).
        let case = ProgramCase {
            program: prog,
            tree: gen::gen_tree(&mut rng, uni),
            budget: BudgetSpec::default(),
        };
        let d = d.or_else(|| check_program_case(&case, oracle_pool, cfg.inject));
        (CaseKind::Smelly, d, Some(case))
    } else {
        let case = gen_program_case(&mut rng, uni);
        let d = check_program_case(&case, oracle_pool, cfg.inject);
        (CaseKind::Program, d, Some(case))
    };

    CaseOutcome {
        index,
        seed,
        kind,
        case: if discrepancy.is_some() { case } else { None },
        discrepancy,
    }
}

/// A campaign failure, optionally minimized, as a writable repro.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Case index within the campaign.
    pub index: u64,
    /// The per-case seed.
    pub seed: u64,
    /// What was generated.
    pub kind: CaseKind,
    /// The disagreement.
    pub discrepancy: Discrepancy,
    /// A replayable repro (program-shaped failures only).
    pub repro: Option<Repro>,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Cases run per kind: `(program, formula, near-miss, smelly)`.
    pub counts: [u64; 4],
    /// All failures, in case order.
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    /// Total cases run.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the campaign was clean.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cases ({} program, {} formula, {} near-miss, {} smelly): {} failure(s)",
            self.total(),
            self.counts[0],
            self.counts[1],
            self.counts[2],
            self.counts[3],
            self.failures.len()
        )
    }
}

fn kind_slot(k: CaseKind) -> usize {
    match k {
        CaseKind::Program => 0,
        CaseKind::Formula => 1,
        CaseKind::NearMiss => 2,
        CaseKind::Smelly => 3,
    }
}

/// Run a seeded campaign, fanning cases across `outer`. Each case's oracle
/// runs on a private two-worker pool, so the report is identical for any
/// `outer` size. Failing program cases are minimized (when
/// `cfg.minimize`) and packaged as repros carrying the universe's
/// vocabulary.
pub fn run_campaign(cfg: &FuzzConfig, uni: &Universe, outer: &Pool) -> CampaignReport {
    let n = usize::try_from(cfg.cases).expect("case count fits usize");
    let outcomes = outer.scoped(n, |i| {
        let inner = Pool::new(2);
        run_case(cfg, uni, i as u64, &inner)
    });

    let mut report = CampaignReport::default();
    for out in outcomes {
        report.counts[kind_slot(out.kind)] += 1;
        let Some(discrepancy) = out.discrepancy else {
            continue;
        };
        let repro = out.case.map(|case| {
            let inner = Pool::new(2);
            // Re-check the (possibly minimized) case so the embedded
            // divergence report describes the stored triple, not the
            // pre-shrink original.
            let (case, rechecked) = if cfg.minimize {
                let min = minimize(&case, &inner, cfg.inject);
                let d = check_program_case(&min, &inner, cfg.inject);
                (min, d)
            } else {
                (case, None)
            };
            let disc = rechecked.as_ref().unwrap_or(&discrepancy);
            Repro {
                vocab: uni.vocab.clone(),
                case,
                inject: cfg.inject,
                pair: disc.pair.clone(),
                detail: disc.detail.clone(),
                divergence: disc.divergence.clone(),
            }
        });
        report.failures.push(Failure {
            index: out.index,
            seed: out.seed,
            kind: out.kind,
            discrepancy,
            repro,
        });
    }
    report
}

/// Re-check stored repros: returns the indices (0-based line numbers in
/// the parsed batch) that still fail.
pub fn replay(repros: &[Repro], pool: &Pool) -> Vec<usize> {
    repros
        .iter()
        .enumerate()
        .filter(|(_, r)| check_program_case(&r.case, pool, r.inject).is_some())
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_spread() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let uni = Universe::standard();
        let cfg = FuzzConfig {
            seed: 42,
            cases: 120,
            ..FuzzConfig::default()
        };
        let serial = run_campaign(&cfg, &uni, &Pool::serial());
        assert!(serial.clean(), "{:#?}", serial.failures);
        assert_eq!(serial.total(), 120);
        // Every kind should appear in 120 cases at the default mix.
        assert!(serial.counts.iter().all(|&c| c > 0), "{:?}", serial.counts);
        let wide = run_campaign(&cfg, &uni, &Pool::new(4));
        assert_eq!(serial.counts, wide.counts);
        assert_eq!(wide.failures.len(), 0);
    }

    #[test]
    fn self_test_catches_and_minimizes_the_planted_bug() {
        let uni = Universe::standard();
        let cfg = FuzzConfig {
            seed: 7,
            cases: 60,
            inject: Some(InjectedBug::RoutedFlip),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&cfg, &uni, &Pool::new(2));
        assert!(!report.clean(), "planted bug not caught in 60 cases");
        let with_repro = report
            .failures
            .iter()
            .find_map(|f| f.repro.as_ref())
            .expect("program-shaped failure with repro");
        assert!(with_repro.case.program.state_count() <= 8);
        assert!(with_repro.case.tree.len() <= 16);
        // The written repro must replay as still-failing.
        let line = with_repro.to_json_line();
        let back = Repro::from_json_line(&line).unwrap();
        assert_eq!(replay(&[back], &Pool::new(2)), vec![0]);
    }
}
