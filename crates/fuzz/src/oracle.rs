//! The differential oracle: run one case through every applicable
//! evaluator pair and report the first disagreement.
//!
//! | pair | compared |
//! |------|----------|
//! | `run` vs `run_guarded(unlimited)` | full `RunReport` |
//! | `run` vs `run_batch` | full `RunReport`, every batch slot |
//! | `run` vs `run_routed` | acceptance (skipped on limit halts) |
//! | `run` vs `run(prune(P))` | acceptance (skipped on limit halts) |
//! | serial guarded vs `run_batch_guarded` | `Ok` report / trip reason + injected kind, per budget axis |
//! | `eval_sentence` vs `_memo` vs `_par` | boolean verdict |
//! | `select` vs `select_memo` vs `select_batch` vs `ExistsFormula::select` | node sets, every context node |
//! | `select_guarded` vs `select_batch_guarded` | `Ok` set / trip reason, per node |
//! | `eval_sentence` vs `eval_sentence_rewritten` | boolean verdict |
//! | `select` vs `fo_select_rewritten` vs `normalize_exists(φ).select` | node sets, every context node |
//! | `eval_from` vs `eval_from_rewritten` | node sets, every context node |
//! | `eval_pairs` vs `eval_pairs_rewritten` | the full binary relation |
//! | `eval_from` vs `run_query_planned` | root node set, certificate-chosen evaluator |
//! | `select` vs `fo_select_routed` | node sets, every context node, fragment-routed |
//! | `eval_from` vs `select_indexed` | node sets, every context node, bitset algebra |
//! | `eval_from` vs `run_query_indexed` | root node set, forced walk / forced index / cost-based |
//! | `run_routed(compile(p))` vs `run_query_routed(p)` | acceptance, certificate-aware routing |
//! | near-miss builder spec | rejected with the intended `ProgramError` |
//! | smelly program | analyzer diagnostics non-empty or pruner fired |
//!
//! All comparisons are exact: evaluators disagreeing on *how* they fail
//! (trip reason, injected fault kind) count as discrepancies just like
//! wrong answers.

use twq_analyze::{analyze, prune, run_routed};
use twq_automata::{
    run, run_batch, run_batch_guarded, run_guarded, trace_batch, trace_run, trace_run_guarded,
    Limits, TwProgram,
};
use twq_exec::Pool;
use twq_guard::{GuardError, ResourceGuard, TwqError};
use twq_index::{fo_select_routed, select_indexed, CostModel, Force, TreeIndex};
use twq_logic::fo::build::exists;
use twq_logic::{
    eval_sentence, eval_sentence_memo, eval_sentence_par, select, select_batch,
    select_batch_guarded, select_guarded, select_memo,
};
use twq_obs::{diff as trace_diff, Divergence, Trace, Verdict};
use twq_rw::{
    eval_from_rewritten, eval_pairs_rewritten, eval_sentence_rewritten, fo_select_rewritten,
    normalize_exists, run_query_indexed, run_query_planned, run_query_routed, RewriteCtx,
};
use twq_tree::{DelimTree, NodeId};
use twq_xpath::{eval_from, eval_pairs, xpath_to_program};

use crate::gen::{BudgetSpec, FormulaCase, ProgramCase};

/// Engine limits for fuzz runs: tight enough that cyclic or exploding
/// programs stop fast, loose enough that ordinary walks finish.
pub const FUZZ_LIMITS: Limits = Limits {
    max_steps: 20_000,
    max_atp_depth: 12,
    cycle_check_interval: 1,
};

/// A deliberately planted bug, used by `fuzz --self-test` to prove the
/// oracle catches discrepancies and the minimizer shrinks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// Flip the routed evaluator's acceptance on every tree with at least
    /// two nodes. Monotone in the tree, so delta debugging shrinks repros
    /// to a two-node witness.
    RoutedFlip,
}

impl InjectedBug {
    /// Stable CLI / repro-file name.
    pub fn name(self) -> &'static str {
        match self {
            InjectedBug::RoutedFlip => "routed-flip",
        }
    }

    /// Parse the stable name.
    pub fn from_name(s: &str) -> Option<InjectedBug> {
        match s {
            "routed-flip" => Some(InjectedBug::RoutedFlip),
            _ => None,
        }
    }
}

/// One observed disagreement between two evaluators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discrepancy {
    /// Which evaluator pair disagreed (e.g. `"run vs run_routed"`).
    pub pair: String,
    /// What each side produced.
    pub detail: String,
    /// Causal first-divergence report, when both sides could be traced.
    /// Evaluators without a collector seam (routed graph evaluation,
    /// batch machinery) contribute verdict-only traces, so the divergence
    /// lands at the root span `r`.
    pub divergence: Option<Divergence>,
}

impl Discrepancy {
    fn new(pair: &str, detail: String) -> Self {
        Discrepancy {
            pair: pair.to_owned(),
            detail,
            divergence: None,
        }
    }

    fn diverging(pair: &str, detail: String, left: &Trace, right: &Trace) -> Self {
        let mut d = Discrepancy::new(pair, detail);
        d.divergence = Some(trace_diff(left, right).unwrap_or_else(|| Divergence {
            at: "r".to_owned(),
            left_label: left.label.clone(),
            right_label: right.label.clone(),
            left: left.root.head(),
            right: right.root.head(),
            left_accepted: left.verdict().and_then(|v| v.accepted()),
            right_accepted: right.verdict().and_then(|v| v.accepted()),
            note: "traces agree on re-run; divergence outside the traced surface".to_owned(),
        }));
        d
    }
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.pair, self.detail)?;
        if let Some(d) = &self.divergence {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

fn trip(e: &TwqError) -> &GuardError {
    e.guard()
        .expect("evaluators surface guard trips as TwqError::Guard")
}

/// Compare two guarded verdicts: `Ok` reports must be identical, `Err`
/// trips must agree on reason *and* injected fault kind.
fn verdicts_agree<T: PartialEq>(a: &Result<T, TwqError>, b: &Result<T, TwqError>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x == y,
        (Err(x), Err(y)) => {
            let (x, y) = (trip(x), trip(y));
            x.reason == y.reason && x.injected == y.injected
        }
        _ => false,
    }
}

fn verdict_str<T: std::fmt::Debug>(v: &Result<T, TwqError>) -> String {
    match v {
        Ok(x) => format!("Ok({x:?})"),
        Err(e) => {
            let g = trip(e);
            format!("Err(reason={:?}, injected={:?})", g.reason, g.injected)
        }
    }
}

/// Run every evaluator pair applicable to a program case.
pub fn check_program_case(
    case: &ProgramCase,
    pool: &Pool,
    inject: Option<InjectedBug>,
) -> Option<Discrepancy> {
    let prog = &case.program;
    let delim = DelimTree::build(&case.tree);
    let base = run(prog, &delim, FUZZ_LIMITS);

    // 1. An unlimited guard must be invisible.
    let guarded = run_guarded(prog, &delim, FUZZ_LIMITS, &mut ResourceGuard::unlimited());
    match guarded {
        Ok(ref r) if *r == base => {}
        other => {
            let (_, lt) = trace_run(prog, &delim, FUZZ_LIMITS);
            let (_, rt) =
                trace_run_guarded(prog, &delim, FUZZ_LIMITS, &mut ResourceGuard::unlimited());
            return Some(Discrepancy::diverging(
                "run vs run_guarded(unlimited)",
                format!("base={base:?} guarded={}", verdict_str(&other)),
                &lt,
                &rt,
            ));
        }
    }

    // 2. Batch slots must reproduce the serial report exactly.
    let trees = vec![case.tree.clone(), case.tree.clone(), case.tree.clone()];
    for (i, r) in run_batch(prog, &trees, FUZZ_LIMITS, pool)
        .iter()
        .enumerate()
    {
        if *r != base {
            let (_, serial) = trace_run(prog, &delim, FUZZ_LIMITS);
            let lt = Trace::merge_batch("run x3", vec![serial.clone(), serial.clone(), serial]);
            let (_, rt) = trace_batch(prog, &trees, FUZZ_LIMITS, pool);
            return Some(Discrepancy::diverging(
                "run vs run_batch",
                format!("slot {i}: base={base:?} batch={r:?}"),
                &lt,
                &rt,
            ));
        }
    }

    // 3. The routing layer (prune + class-routed evaluator choice) must
    // agree on acceptance whenever the direct run is definite. (On limit
    // halts the graph evaluator may legitimately finish where the direct
    // engine ran out, and vice versa.)
    if !base.halt.is_limit() {
        let routed = run_routed(prog, &delim, FUZZ_LIMITS);
        let mut routed_accepted = routed.accepted;
        if inject == Some(InjectedBug::RoutedFlip) && case.tree.len() >= 2 {
            routed_accepted = !routed_accepted;
        }
        if routed_accepted != base.accepted() {
            // The routed graph evaluator has no collector seam: its side is
            // a verdict-only trace, so the divergence pinpoints the root
            // acceptance flip (left/right_accepted carry the evidence).
            let (_, lt) = trace_run(prog, &delim, FUZZ_LIMITS);
            let rt = Trace::verdict_only(
                "run_routed",
                Verdict::Bool(routed_accepted),
                &format!("evaluator={:?}", routed.evaluator),
            );
            return Some(Discrepancy::diverging(
                "run vs run_routed",
                format!(
                    "base halt={:?} accepted={} routed({:?}) accepted={}",
                    base.halt,
                    base.accepted(),
                    routed.evaluator,
                    routed_accepted
                ),
                &lt,
                &rt,
            ));
        }
    }

    // 4. Pruning preserves acceptance — but not halt reasons: removing
    // rules of non-co-accessible states turns a doomed wander (Cycle,
    // step-limit) into an immediate Stuck. Compare acceptance only, on
    // definite base runs.
    if !base.halt.is_limit() {
        let pruned = prune(prog);
        let pruned_run = run(&pruned.program, &delim, FUZZ_LIMITS);
        if pruned_run.accepted() != base.accepted() {
            let (_, lt) = trace_run(prog, &delim, FUZZ_LIMITS);
            let (_, mut rt) = trace_run(&pruned.program, &delim, FUZZ_LIMITS);
            rt.label = "run(prune)".to_owned();
            return Some(Discrepancy::diverging(
                "run vs run(prune)",
                format!(
                    "base halt={:?} accepted={} pruned halt={:?} accepted={}",
                    base.halt,
                    base.accepted(),
                    pruned_run.halt,
                    pruned_run.accepted()
                ),
                &lt,
                &rt,
            ));
        }
    }

    // 5. Guarded serial vs guarded batch, one axis at a time plus the
    // combined spec — identical verdicts including trip reasons and
    // injected fault kinds.
    for spec in budget_axes(&case.budget) {
        let serial: Vec<_> = trees
            .iter()
            .map(|t| {
                let mut g = spec.guard();
                run_guarded(prog, &DelimTree::build(t), FUZZ_LIMITS, &mut g)
            })
            .collect();
        let batch = run_batch_guarded(prog, &trees, FUZZ_LIMITS, pool, || spec.guard());
        for (i, (s, b)) in serial.iter().zip(&batch).enumerate() {
            if !verdicts_agree(s, b) {
                let mut g = spec.guard();
                let (_, lt) = trace_run_guarded(prog, &delim, FUZZ_LIMITS, &mut g);
                let rv = match b {
                    Ok(r) => Verdict::Halt(r.halt.kind()),
                    Err(_) => Verdict::Trip,
                };
                let rt =
                    Trace::verdict_only("run_batch_guarded", rv, &format!("slot {i}, {spec:?}"));
                return Some(Discrepancy::diverging(
                    "run_guarded vs run_batch_guarded",
                    format!(
                        "spec={spec:?} slot {i}: serial={} batch={}",
                        verdict_str(s),
                        verdict_str(b)
                    ),
                    &lt,
                    &rt,
                ));
            }
        }
        // A pure fuel/deadline guard only ever *stops* a run; a verdict it
        // lets through must equal the unguarded report.
        if spec.faults.is_none() {
            if let Ok(r) = &serial[0] {
                if *r != base {
                    let (_, lt) = trace_run(prog, &delim, FUZZ_LIMITS);
                    let mut g = spec.guard();
                    let (_, rt) = trace_run_guarded(prog, &delim, FUZZ_LIMITS, &mut g);
                    return Some(Discrepancy::diverging(
                        "run vs run_guarded(limited)",
                        format!("spec={spec:?}: base={base:?} guarded={r:?}"),
                        &lt,
                        &rt,
                    ));
                }
            }
        }
    }

    None
}

/// The budget axes to exercise: each configured constraint in isolation,
/// then the full combination when it mixes axes.
fn budget_axes(budget: &BudgetSpec) -> Vec<BudgetSpec> {
    let mut specs = Vec::new();
    if let Some(fuel) = budget.fuel {
        specs.push(BudgetSpec {
            fuel: Some(fuel),
            ..BudgetSpec::default()
        });
    }
    if let Some(ms) = budget.deadline_ms {
        specs.push(BudgetSpec {
            deadline_ms: Some(ms),
            ..BudgetSpec::default()
        });
    }
    if let Some(plan) = &budget.faults {
        specs.push(BudgetSpec {
            faults: Some(plan.clone()),
            ..BudgetSpec::default()
        });
    }
    if specs.len() > 1 {
        specs.push(budget.clone());
    }
    specs
}

/// Run every evaluator pair applicable to a formula case.
pub fn check_formula_case(case: &FormulaCase, pool: &Pool) -> Option<Discrepancy> {
    let phi = &case.phi;
    let tree = &case.tree;
    let formula = phi.to_formula();
    let sentence = exists(phi.x(), exists(phi.y(), formula.clone()));

    // 1. Sentence verdict: naive vs memoized vs parallel.
    let naive = match eval_sentence(tree, &sentence) {
        Ok(b) => b,
        Err(e) => {
            return Some(Discrepancy::new(
                "eval_sentence",
                format!("rejected a closed sentence: {e}"),
            ))
        }
    };
    match eval_sentence_memo(tree, &sentence) {
        Ok(b) if b == naive => {}
        other => {
            return Some(Discrepancy::new(
                "eval_sentence vs eval_sentence_memo",
                format!("naive={naive} memo={other:?}"),
            ))
        }
    }
    match eval_sentence_par(tree, &sentence, pool) {
        Ok(b) if b == naive => {}
        other => {
            return Some(Discrepancy::new(
                "eval_sentence vs eval_sentence_par",
                format!("naive={naive} par={other:?}"),
            ))
        }
    }

    // 2. Node selection from every context node: naive recursion vs
    // memoized vs pooled batch vs the FO(∃*) backtracking selector.
    let us: Vec<NodeId> = tree.node_ids().collect();
    let serial: Vec<_> = us
        .iter()
        .map(|&u| select(tree, &formula, phi.x(), u, phi.y()))
        .collect::<Result<_, _>>()
        .ok()?;
    for (i, &u) in us.iter().enumerate() {
        match select_memo(tree, &formula, phi.x(), u, phi.y()) {
            Ok(s) if s == serial[i] => {}
            other => {
                return Some(Discrepancy::new(
                    "select vs select_memo",
                    format!("node {u}: naive={:?} memo={other:?}", serial[i]),
                ))
            }
        }
        let direct = phi.select(tree, u);
        if direct != serial[i] {
            return Some(Discrepancy::new(
                "select vs ExistsFormula::select",
                format!("node {u}: naive={:?} backtracking={direct:?}", serial[i]),
            ));
        }
    }
    match select_batch(tree, &formula, phi.x(), &us, phi.y(), pool) {
        Ok(batch) if batch == serial => {}
        other => {
            return Some(Discrepancy::new(
                "select vs select_batch",
                format!("serial={serial:?} batch={other:?}"),
            ))
        }
    }

    // 3. The rewritten FO twins: normalization must change nothing
    // observable, for the closed sentence, the raw matrix from every
    // context node, and the prenex FO(∃*) backtracking selector.
    match eval_sentence_rewritten(tree, &sentence) {
        Ok(b) if b == naive => {}
        other => {
            return Some(Discrepancy::new(
                "eval_sentence vs eval_sentence_rewritten",
                format!("naive={naive} rewritten={other:?}"),
            ))
        }
    }
    let phi_norm = normalize_exists(phi);
    let idx = TreeIndex::build(tree);
    for (i, &u) in us.iter().enumerate() {
        match fo_select_rewritten(tree, &formula, phi.x(), u, phi.y()) {
            Ok(s) if s == serial[i] => {}
            other => {
                return Some(Discrepancy::new(
                    "select vs fo_select_rewritten",
                    format!("node {u}: naive={:?} rewritten={other:?}", serial[i]),
                ))
            }
        }
        let norm_sel = phi_norm.select(tree, u);
        if norm_sel != serial[i] {
            return Some(Discrepancy::new(
                "select vs normalize_exists(phi).select",
                format!("node {u}: naive={:?} normalized={norm_sel:?}", serial[i]),
            ));
        }
        // The index router: in-fragment formulas go through the bitset
        // algebra, the rest fall back — either way the sets must match.
        let (routed_sel, indexed) = fo_select_routed(tree, &idx, phi, u);
        if routed_sel != serial[i] {
            return Some(Discrepancy::new(
                "select vs fo_select_routed",
                format!(
                    "node {u} (indexed={indexed}): naive={:?} routed={routed_sel:?}",
                    serial[i]
                ),
            ));
        }
    }

    // 4. The rewritten XPath twins, when the source query is known: the
    // rewrite engine, the certificate-driven planner, and the
    // certificate-aware routed acceptor must all reproduce the naive
    // relational answers exactly.
    if let Some(path) = &case.path {
        let direct_pairs = eval_pairs(tree, path);
        let rewritten_pairs = eval_pairs_rewritten(tree, path);
        if rewritten_pairs != direct_pairs {
            return Some(Discrepancy::new(
                "eval_pairs vs eval_pairs_rewritten",
                format!("direct={direct_pairs:?} rewritten={rewritten_pairs:?}"),
            ));
        }
        for &u in &us {
            let direct = eval_from(tree, path, u);
            let rewritten = eval_from_rewritten(tree, path, u);
            if rewritten != direct {
                return Some(Discrepancy::new(
                    "eval_from vs eval_from_rewritten",
                    format!("node {u}: direct={direct:?} rewritten={rewritten:?}"),
                ));
            }
            let via_index = select_indexed(tree, &idx, path, u);
            if via_index != direct {
                return Some(Discrepancy::new(
                    "eval_from vs select_indexed",
                    format!("node {u}: direct={direct:?} indexed={via_index:?}"),
                ));
            }
        }
        // The planner may route to the streaming evaluator or short-circuit
        // on an Empty certificate; either way the root answer is fixed.
        let ctx = RewriteCtx::unconstrained().with_alphabet(case.alphabet.iter().copied());
        let root_direct = eval_from(tree, path, tree.root());
        let (planned, plan) = run_query_planned(tree, path, &ctx);
        if planned != root_direct {
            return Some(Discrepancy::new(
                "eval_from vs run_query_planned",
                format!(
                    "evaluator={:?}: direct={root_direct:?} planned={planned:?}",
                    plan.evaluator
                ),
            ));
        }
        // The cost-based index planner, under every override: forced walk,
        // forced index, and the cost model's own pick must all reproduce
        // the naive root answer.
        let model = CostModel::default();
        for force in [Force::Auto, Force::Index, Force::Walk] {
            let (ix_out, ix_plan) = run_query_indexed(tree, &idx, path, &ctx, &model, force);
            if ix_out != root_direct {
                return Some(Discrepancy::new(
                    "eval_from vs run_query_indexed",
                    format!(
                        "force={force:?} evaluator={:?}: direct={root_direct:?} indexed={ix_out:?}",
                        ix_plan.evaluator
                    ),
                ));
            }
        }
        // Routed acceptance: compile the *unrewritten* query and route it
        // naively; the certificate-aware router must agree even when it
        // decides without walking (provably-empty short-circuit).
        let delim = DelimTree::build(tree);
        let naive_prog = xpath_to_program(path, &case.alphabet, case.id_attr, case.test);
        let naive_routed = run_routed(&naive_prog, &delim, FUZZ_LIMITS);
        let certified = run_query_routed(
            path,
            &delim,
            &case.alphabet,
            case.id_attr,
            case.test,
            FUZZ_LIMITS,
        );
        if certified.accepted != naive_routed.accepted {
            return Some(Discrepancy::new(
                "run_routed vs run_query_routed",
                format!(
                    "test={:?}: naive accepted={} certified accepted={} (walked={}, {:?})",
                    case.test,
                    naive_routed.accepted,
                    certified.accepted,
                    certified.routed.is_some(),
                    certified.rewritten.certificate
                ),
            ));
        }
    }

    // 5. Guarded selection: serial fresh-guard loop vs batch factory.
    if let Some(fuel) = case.fuel {
        let make = || ResourceGuard::unlimited().with_budget(fuel);
        let serial: Vec<_> = us
            .iter()
            .map(|&u| {
                let mut g = make();
                select_guarded(tree, &formula, phi.x(), u, phi.y(), &mut g)
            })
            .collect();
        let batch = select_batch_guarded(tree, &formula, phi.x(), &us, phi.y(), pool, make);
        for (i, (s, b)) in serial.iter().zip(&batch).enumerate() {
            if !verdicts_agree(s, b) {
                return Some(Discrepancy::new(
                    "select_guarded vs select_batch_guarded",
                    format!(
                        "fuel={fuel} node {}: serial={} batch={}",
                        us[i],
                        verdict_str(s),
                        verdict_str(b)
                    ),
                ));
            }
        }
    }

    None
}

/// Check that the analyzer sees something wrong with a deliberately smelly
/// (but well-formed) program: at least one diagnostic, or a pruner hit.
pub fn check_smelly_program(prog: &TwProgram) -> Option<Discrepancy> {
    let analysis = analyze(prog);
    let pruned = prune(prog);
    if analysis.diagnostics.is_empty() && !pruned.changed() {
        return Some(Discrepancy::new(
            "analyze on smelly program",
            format!(
                "no diagnostics and nothing pruned for:\n{}",
                prog.display(&twq_tree::Vocab::new())
            ),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_formula_case, gen_program_case, gen_smelly_program, Universe};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_program_cases_pass_the_oracle() {
        let uni = Universe::standard();
        let pool = Pool::new(2);
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let case = gen_program_case(&mut rng, &uni);
            let d = check_program_case(&case, &pool, None);
            assert!(d.is_none(), "seed {seed}: {}", d.unwrap());
        }
    }

    #[test]
    fn clean_formula_cases_pass_the_oracle() {
        let uni = Universe::standard();
        let pool = Pool::new(2);
        for seed in 100..130 {
            let mut rng = StdRng::seed_from_u64(seed);
            let case = gen_formula_case(&mut rng, &uni);
            let d = check_formula_case(&case, &pool);
            assert!(d.is_none(), "seed {seed}: {}", d.unwrap());
        }
    }

    #[test]
    fn injected_routed_flip_is_caught() {
        let uni = Universe::standard();
        let pool = Pool::new(2);
        let mut caught = 0;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let case = gen_program_case(&mut rng, &uni);
            if let Some(d) = check_program_case(&case, &pool, Some(InjectedBug::RoutedFlip)) {
                assert_eq!(d.pair, "run vs run_routed", "{d}");
                caught += 1;
            }
        }
        assert!(caught > 0, "flip never observable in 40 cases");
    }

    #[test]
    fn smelly_programs_trip_the_analyzer_check() {
        let uni = Universe::standard();
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = gen_smelly_program(&mut rng, &uni);
            assert!(check_smelly_program(&prog).is_none(), "seed {seed}");
        }
    }
}
