//! Delta-debugging minimizer: shrink a failing `(program, tree, budget)`
//! triple to a locally minimal repro.
//!
//! Greedy descent: propose candidate simplifications in order of expected
//! payoff (drop budget axes, hoist/delete tree subtrees, remove rules,
//! blank guards, flatten actions), keep any candidate that still fails the
//! oracle, and restart. Every accepted candidate strictly decreases the
//! lexicographic measure `(tree nodes, rules, states, non-true guards,
//! non-move actions, budget axes)`, so the loop terminates; the result is
//! locally minimal in the sense that no single proposed simplification
//! preserves the failure.

use std::collections::{BTreeSet, HashMap};

use twq_automata::{Action, Dir, Rule, State, TwProgram, TwProgramBuilder};
use twq_exec::Pool;
use twq_logic::{RegId, SFormula};
use twq_tree::{NodeId, Tree, Value};

use crate::gen::{BudgetSpec, ProgramCase};
use crate::oracle::{check_program_case, InjectedBug};

/// Copy the subtree rooted at `root` into a fresh tree (labels and
/// attribute values included).
pub fn copy_subtree(tree: &Tree, root: NodeId) -> Tree {
    let mut out = Tree::new(tree.label(root));
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    map.insert(root, out.root());
    // Parent ids precede child ids in the arena, and `nodes()` is a
    // pre-order walk, so every copied node finds its parent already mapped.
    let mut stack = vec![root];
    while let Some(u) = stack.pop() {
        if u != root {
            let p = map[&tree.parent(u).expect("non-root has parent")];
            map.insert(u, out.add_child(p, tree.label(u)));
        }
        let kids: Vec<NodeId> = tree.children(u).collect();
        for k in kids.into_iter().rev() {
            stack.push(k);
        }
    }
    for a in 0..tree.attr_columns() {
        let a = twq_tree::AttrId(a as u16);
        for (&old, &new) in &map {
            let v = tree.attr(old, a);
            if v != Value::BOT {
                out.set_attr(new, a, v);
            }
        }
    }
    out
}

/// Rebuild `tree` without the subtree rooted at `victim`. `None` when
/// `victim` is the root (trees are never empty).
pub fn delete_subtree(tree: &Tree, victim: NodeId) -> Option<Tree> {
    if victim == tree.root() {
        return None;
    }
    let mut out = Tree::new(tree.label(tree.root()));
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    map.insert(tree.root(), out.root());
    let mut stack: Vec<NodeId> = tree.children(tree.root()).collect::<Vec<_>>();
    stack.reverse();
    while let Some(u) = stack.pop() {
        if u == victim {
            continue;
        }
        let p = map[&tree.parent(u).expect("non-root has parent")];
        map.insert(u, out.add_child(p, tree.label(u)));
        let kids: Vec<NodeId> = tree.children(u).collect();
        for k in kids.into_iter().rev() {
            stack.push(k);
        }
    }
    for a in 0..tree.attr_columns() {
        let a = twq_tree::AttrId(a as u16);
        for (&old, &new) in &map {
            let v = tree.attr(old, a);
            if v != Value::BOT {
                out.set_attr(new, a, v);
            }
        }
    }
    Some(out)
}

/// Rebuild a program with the given rule set, garbage-collecting every
/// state not reachable from `{initial, final}` ∪ rule references. Register
/// declarations are kept verbatim. `None` if validation fails (it should
/// not, since the rules came from a valid program).
pub fn with_rules(prog: &TwProgram, rules: &[Rule]) -> Option<TwProgram> {
    let mut keep: BTreeSet<State> = BTreeSet::new();
    keep.insert(prog.initial());
    keep.insert(prog.final_state());
    for r in rules {
        keep.insert(r.state);
        keep.insert(r.action.next_state());
        if let Action::Atp(_, _, p, _) = &r.action {
            keep.insert(*p);
        }
    }
    let mut b = TwProgramBuilder::new();
    let mut map: HashMap<State, State> = HashMap::new();
    for q in 0..prog.state_count() {
        let q = State(q as u16);
        if keep.contains(&q) {
            map.insert(q, b.state(prog.state_name(q)));
        }
    }
    b.initial(map[&prog.initial()]);
    b.final_state(map[&prog.final_state()]);
    let store = prog.initial_store();
    for (i, &a) in prog.reg_arities().iter().enumerate() {
        b.register(a, store.get(RegId(i as u8)).clone());
    }
    let remap = |a: &Action| -> Action {
        match a {
            Action::Move(q, d) => Action::Move(map[q], *d),
            Action::Update(q, psi, i) => Action::Update(map[q], psi.clone(), *i),
            Action::Atp(q, phi, p, i) => Action::Atp(map[q], phi.clone(), map[p], *i),
        }
    };
    for r in rules {
        b.rule(r.label, map[&r.state], r.guard.clone(), remap(&r.action));
    }
    b.build().ok()
}

fn budget_candidates(case: &ProgramCase) -> Vec<ProgramCase> {
    let mut out = Vec::new();
    let b = &case.budget;
    if b.faults.is_some() {
        out.push(ProgramCase {
            budget: BudgetSpec {
                faults: None,
                ..b.clone()
            },
            ..case.clone()
        });
    }
    if b.deadline_ms.is_some() {
        out.push(ProgramCase {
            budget: BudgetSpec {
                deadline_ms: None,
                ..b.clone()
            },
            ..case.clone()
        });
    }
    if b.fuel.is_some() {
        out.push(ProgramCase {
            budget: BudgetSpec {
                fuel: None,
                ..b.clone()
            },
            ..case.clone()
        });
    }
    out
}

fn tree_candidates(case: &ProgramCase) -> Vec<ProgramCase> {
    let mut out = Vec::new();
    // Hoist: each child of the root becomes the whole tree — the biggest
    // single cut available.
    for c in case.tree.children(case.tree.root()) {
        out.push(ProgramCase {
            tree: copy_subtree(&case.tree, c),
            ..case.clone()
        });
    }
    // Delete: drop one subtree, deepest arena ids first (leaves before
    // their ancestors, so small cuts are tried after big ones above).
    let ids: Vec<NodeId> = case.tree.node_ids().collect();
    for &u in ids.iter().rev() {
        if let Some(t) = delete_subtree(&case.tree, u) {
            out.push(ProgramCase {
                tree: t,
                ..case.clone()
            });
        }
    }
    out
}

fn program_candidates(case: &ProgramCase) -> Vec<ProgramCase> {
    let mut out = Vec::new();
    let rules = case.program.rules();
    // Remove one rule at a time.
    for skip in 0..rules.len() {
        let subset: Vec<Rule> = rules
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, r)| r.clone())
            .collect();
        if let Some(p) = with_rules(&case.program, &subset) {
            out.push(ProgramCase {
                program: p,
                ..case.clone()
            });
        }
    }
    // Blank one non-trivial guard.
    for (i, r) in rules.iter().enumerate() {
        if r.guard != SFormula::True {
            let mut subset: Vec<Rule> = rules.to_vec();
            subset[i].guard = SFormula::True;
            if let Some(p) = with_rules(&case.program, &subset) {
                out.push(ProgramCase {
                    program: p,
                    ..case.clone()
                });
            }
        }
    }
    // Flatten one Update/Atp action to a plain stay-move.
    for (i, r) in rules.iter().enumerate() {
        if !matches!(r.action, Action::Move(_, _)) {
            let mut subset: Vec<Rule> = rules.to_vec();
            subset[i].action = Action::Move(r.action.next_state(), Dir::Stay);
            if let Some(p) = with_rules(&case.program, &subset) {
                out.push(ProgramCase {
                    program: p,
                    ..case.clone()
                });
            }
        }
    }
    out
}

/// Shrink a failing case to a locally minimal one. Returns the input
/// unchanged when it does not fail the oracle.
pub fn minimize(case: &ProgramCase, pool: &Pool, inject: Option<InjectedBug>) -> ProgramCase {
    let mut cur = case.clone();
    if check_program_case(&cur, pool, inject).is_none() {
        return cur;
    }
    'restart: loop {
        let candidates = budget_candidates(&cur)
            .into_iter()
            .chain(tree_candidates(&cur))
            .chain(program_candidates(&cur));
        for cand in candidates {
            if check_program_case(&cand, pool, inject).is_some() {
                cur = cand;
                continue 'restart;
            }
        }
        return cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_program_case, Universe};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn subtree_copy_and_delete_are_consistent() {
        let uni = Universe::standard();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let tree = crate::gen::gen_tree(&mut rng, &uni);
            for u in tree.node_ids() {
                let sub = copy_subtree(&tree, u);
                sub.check_consistency().unwrap();
                if let Some(rest) = delete_subtree(&tree, u) {
                    rest.check_consistency().unwrap();
                    assert_eq!(rest.len() + sub.len(), tree.len(), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn with_rules_garbage_collects_states() {
        let uni = Universe::standard();
        let mut rng = StdRng::seed_from_u64(7);
        let case = gen_program_case(&mut rng, &uni);
        let p = with_rules(&case.program, &[]).unwrap();
        assert_eq!(p.state_count(), 2, "only initial and final survive");
        assert!(p.rules().is_empty());
    }

    #[test]
    fn minimizer_shrinks_injected_routed_flip() {
        let uni = Universe::standard();
        let pool = Pool::new(2);
        let mut shrunk = 0;
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let case = gen_program_case(&mut rng, &uni);
            if check_program_case(&case, &pool, Some(InjectedBug::RoutedFlip)).is_none() {
                continue;
            }
            let min = minimize(&case, &pool, Some(InjectedBug::RoutedFlip));
            assert!(
                check_program_case(&min, &pool, Some(InjectedBug::RoutedFlip)).is_some(),
                "seed {seed}: minimized case no longer fails"
            );
            assert!(
                min.program.state_count() <= 8,
                "seed {seed}: {} states after shrinking",
                min.program.state_count()
            );
            assert!(
                min.tree.len() <= 16,
                "seed {seed}: {} tree nodes after shrinking",
                min.tree.len()
            );
            shrunk += 1;
            if shrunk >= 3 {
                break;
            }
        }
        assert!(shrunk > 0, "flip never triggered in 30 seeds");
    }
}
