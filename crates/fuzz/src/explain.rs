//! Turn repros and traces into human-readable explanations.
//!
//! The fuzz oracle embeds a machine-readable [`Divergence`](twq_obs::Divergence) in every
//! mismatch repro; this module re-runs the repro's base engine under a
//! trace collector and renders the result as an indented walk transcript
//! with the repro's own vocabulary — program state names, tree labels —
//! so "why did these evaluators disagree" is answerable from the repro
//! file alone (`fuzz --replay … --explain`, `explain --replay …`).

use std::fmt::Write as _;

use twq_automata::{trace_run, State, TwProgram};
use twq_obs::{explain_verdict, Namer, Trace};
use twq_tree::{DelimTree, NodeId, Vocab};

use crate::oracle::FUZZ_LIMITS;
use crate::repro::Repro;

/// Explain one repro: header (pair, detail, injected bug), the embedded
/// first-divergence report, then the base engine's traced walk transcript
/// with witness-backed verdict evidence.
pub fn explain_repro(repro: &Repro) -> String {
    let delim = DelimTree::build(&repro.case.tree);
    let (_, trace) = trace_run(&repro.case.program, &delim, FUZZ_LIMITS);
    let mut out = String::new();
    let _ = writeln!(out, "pair: {}", repro.pair);
    let _ = writeln!(out, "detail: {}", repro.detail);
    if let Some(b) = repro.inject {
        let _ = writeln!(out, "injected bug: {}", b.name());
    }
    match &repro.divergence {
        Some(d) => {
            let _ = writeln!(out, "{d}");
        }
        None => {
            let _ = writeln!(out, "no divergence report embedded (pre-trace repro)");
        }
    }
    out.push('\n');
    out.push_str(&explain_with_names(
        &trace,
        &repro.case.program,
        &delim,
        &repro.vocab,
    ));
    out
}

/// Verdict evidence plus the full transcript, with program state names
/// and delimited-tree labels in place of raw ids.
pub fn explain_with_names(
    trace: &Trace,
    prog: &TwProgram,
    delim: &DelimTree,
    vocab: &Vocab,
) -> String {
    let state = |q: u32| prog.state_name(State(q as u16)).to_owned();
    let tree = delim.tree();
    let node = |n: u64| {
        if (n as usize) < tree.len() {
            format!("n{n}:{}", tree.label(NodeId(n as u32)).display(vocab))
        } else {
            format!("n{n}")
        }
    };
    let namer = Namer {
        state: &state,
        node: &node,
    };
    let mut out = explain_verdict(trace, &namer);
    out.push('\n');
    out.push_str(&trace.render_with(&namer));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_program_case, Universe};
    use crate::oracle::{check_program_case, InjectedBug};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use twq_exec::Pool;

    #[test]
    fn explanations_carry_names_and_divergence() {
        let uni = Universe::standard();
        let pool = Pool::new(2);
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let case = gen_program_case(&mut rng, &uni);
            let Some(d) = check_program_case(&case, &pool, Some(InjectedBug::RoutedFlip)) else {
                continue;
            };
            let repro = Repro {
                vocab: uni.vocab.clone(),
                case,
                inject: Some(InjectedBug::RoutedFlip),
                pair: d.pair.clone(),
                detail: d.detail.clone(),
                divergence: d.divergence.clone(),
            };
            let text = explain_repro(&repro);
            assert!(text.contains("pair: run vs run_routed"), "{text}");
            assert!(text.contains("first divergence at r:"), "{text}");
            // Named transcript: state names come from the program, node
            // names carry their delimited-tree label.
            assert!(text.contains("trace run"), "{text}");
            assert!(text.contains("n0:"), "{text}");
            return;
        }
        panic!("flip never observable in 60 cases");
    }
}
